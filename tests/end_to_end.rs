//! End-to-end integration tests: the full train → persist → localize →
//! score pipeline across every workspace crate.

use icfl::core::{CampaignRun, CausalModel, EvalSuite, ProductionRun, RunConfig};
use icfl::telemetry::MetricCatalog;

#[test]
fn causalbench_perfect_localization_at_matched_load() {
    let app = icfl::apps::causalbench();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(101)).unwrap();
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(202)).unwrap();
    let summary = suite.evaluate(&model).unwrap();
    assert!(
        summary.accuracy >= 0.99,
        "paper Table I reports 1.00 at 1x; got {summary}"
    );
    assert!(summary.informativeness >= 0.8, "{summary}");
}

#[test]
fn model_survives_json_roundtrip_and_still_localizes() {
    let app = icfl::apps::pattern2();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(303)).unwrap();
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();

    let json = model.to_json().unwrap();
    let restored = CausalModel::from_json(&json).unwrap();
    assert_eq!(model, restored);

    // The restored model localizes a fresh fault identically.
    let target = campaign.targets()[0];
    let run = ProductionRun::execute(&app, target, &RunConfig::quick(404)).unwrap();
    let ds = run.dataset(model.catalog()).unwrap();
    let a = model.localize(&ds).unwrap();
    let b = restored.localize(&ds).unwrap();
    assert_eq!(a.candidates, b.candidates);
    assert!(a.implicates(target));
}

#[test]
fn derived_metrics_beat_raw_metrics_under_load_shift() {
    let app = icfl::apps::causalbench();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(505)).unwrap();
    let derived = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    let raw = campaign
        .learn(&MetricCatalog::raw_all(), RunConfig::default_detector())
        .unwrap();
    let suite = EvalSuite::execute(
        &app,
        campaign.targets(),
        &RunConfig::quick(606).with_replicas(4),
    )
    .unwrap();
    let d = suite.evaluate(&derived).unwrap();
    let r = suite.evaluate(&raw).unwrap();
    assert!(
        d.accuracy > r.accuracy,
        "Table II's core claim: derived {d} must beat raw {r} at 4x"
    );
}

#[test]
fn training_is_deterministic_per_seed() {
    let app = icfl::apps::pattern2();
    let run = |seed: u64| {
        let campaign = CampaignRun::execute(&app, &RunConfig::quick(seed)).unwrap();
        campaign
            .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .unwrap()
    };
    assert_eq!(run(77), run(77), "same seed must yield an identical model");
    // Different seeds may legitimately coincide on such a small app, but
    // the baseline datasets must differ.
    let a = CampaignRun::execute(&app, &RunConfig::quick(1)).unwrap();
    let b = CampaignRun::execute(&app, &RunConfig::quick(2)).unwrap();
    assert_ne!(
        a.baseline(&MetricCatalog::derived_all()).unwrap(),
        b.baseline(&MetricCatalog::derived_all()).unwrap(),
        "different seeds should produce different traffic"
    );
}

#[test]
fn cross_fault_generalization_error_rate_fault_localized_by_unavailability_model() {
    // The paper claims the methodology is not specific to one fault type,
    // "just that faults propagate". Train on service-unavailable, then
    // localize an error-rate fault the model has never seen.
    use icfl::micro::FaultKind;

    let app = icfl::apps::pattern1();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(707)).unwrap();
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    let b = campaign.targets()[1];
    let run = ProductionRun::execute(
        &app,
        b,
        &RunConfig::quick(808).with_fault(FaultKind::ErrorRate(0.5)),
    )
    .unwrap();
    let loc = model
        .localize(&run.dataset(model.catalog()).unwrap())
        .unwrap();
    assert!(
        loc.implicates(b),
        "an unseen error-rate fault on B should still match B's signature: {loc:?}"
    );
}

#[test]
fn latency_faults_are_invisible_to_derived_metrics_but_visible_to_raw() {
    // A documented trade-off of the §V-A deconfounding heuristic: per-request
    // ratios are invariant to a pure slowdown (CPU per request, logs per
    // request and packets per request all stay put), so a latency fault
    // needs the raw rate metrics the ratios deliberately discard.
    use icfl::micro::FaultKind;
    use icfl::sim::{DurationDist, SimDuration};

    let app = icfl::apps::pattern1();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(909)).unwrap();
    let derived = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    let raw = campaign
        .learn(&MetricCatalog::raw_all(), RunConfig::default_detector())
        .unwrap();
    let latency = FaultKind::ExtraLatency(DurationDist::constant(SimDuration::from_millis(200)));
    let b = campaign.targets()[1];
    let run = ProductionRun::execute(&app, b, &RunConfig::quick(1010).with_fault(latency)).unwrap();
    let d = derived
        .localize(&run.dataset(derived.catalog()).unwrap())
        .unwrap();
    let r = raw.localize(&run.dataset(raw.catalog()).unwrap()).unwrap();
    assert!(
        d.candidates.is_empty(),
        "ratio metrics are slowdown-blind by design: {d:?}"
    );
    assert!(
        !r.candidates.is_empty(),
        "raw throughput rates must see the slowdown (closed-loop throughput drops)"
    );
}
