//! Determinism of the parallel campaign/evaluation executor: thread count
//! is a performance knob, never a semantics knob. For both benchmark
//! applications, the learned causal model (as persisted JSON) and the
//! evaluation summary must be byte-identical whether the runs execute on
//! one worker, two, or all available cores.

use icfl::core::{CampaignRun, EvalSuite, RunConfig};
use icfl::telemetry::MetricCatalog;

/// Model JSON + summary JSON for one app at one thread count.
fn learn_and_evaluate(app: &icfl::apps::App, threads: usize) -> (String, String) {
    let train = RunConfig::quick(42).with_threads(threads);
    let campaign = CampaignRun::execute(app, &train).expect("campaign");
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .expect("learn");
    let eval = RunConfig::quick(42).with_threads(threads);
    let suite = EvalSuite::execute(app, campaign.targets(), &eval).expect("eval suite");
    let summary = suite.evaluate(&model).expect("evaluate");
    (
        serde_json::to_string(&model).expect("model json"),
        serde_json::to_string(&summary).expect("summary json"),
    )
}

fn assert_thread_invariant(app: icfl::apps::App) {
    let serial = learn_and_evaluate(&app, 1);
    let two = learn_and_evaluate(&app, 2);
    assert_eq!(serial, two, "{}: threads=2 diverged from serial", app.name);
    let max = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(2);
    let wide = learn_and_evaluate(&app, max);
    assert_eq!(
        serial, wide,
        "{}: threads={max} diverged from serial",
        app.name
    );
}

#[test]
fn causalbench_results_are_thread_count_invariant() {
    assert_thread_invariant(icfl::apps::causalbench());
}

#[test]
fn robot_shop_results_are_thread_count_invariant() {
    assert_thread_invariant(icfl::apps::robot_shop());
}
