//! Cross-crate consistency checks: campaign plans vs runtime traces,
//! telemetry vs cluster counters, and the §VI-B metric-world example.

use icfl::core::{CampaignRun, RunConfig};
use icfl::faults::{Campaign, CampaignConfig, InterventionTrace, PhaseLabel};
use icfl::micro::Cluster;
use icfl::scenario::{RecorderTap, Scenario};
use icfl::sim::Sim;
use icfl::telemetry::{MetricCatalog, MetricSpec, RawMetric, WindowConfig};

#[test]
fn executed_campaign_trace_matches_plan_exactly() {
    let app = icfl::apps::causalbench();
    let cfg = RunConfig::quick(11);
    let campaign = CampaignRun::execute(&app, &cfg).unwrap();
    // One trace entry per fault target, in order.
    let entries = campaign.trace.entries();
    assert_eq!(entries.len(), app.fault_targets.len());
    for (entry, target) in entries.iter().zip(campaign.targets()) {
        assert_eq!(entry.service, *target);
        assert_eq!(entry.fault, "service-unavailable");
        assert_eq!(
            entry.end.saturating_since(entry.start),
            cfg.campaign.fault_duration
        );
    }
}

#[test]
fn recorder_counters_match_cluster_counters_at_scrape_instants() {
    let app = icfl::apps::pattern1();
    let end = icfl::sim::SimTime::from_secs(30);
    let (mut scenario, recorder) = Scenario::builder(&app, 5)
        .build_with(RecorderTap::new(
            (icfl::sim::SimTime::ZERO, end),
            WindowConfig::from_secs(10, 5),
        ))
        .unwrap();
    scenario.run_until(end);
    // Window boundary rows retained by the engine must exist at every
    // finalized boundary; the final one coincides with the horizon.
    for at_secs in [10u64, 15, 20, 25, 30] {
        let at = icfl::sim::SimTime::from_secs(at_secs);
        for id in scenario.cluster.service_ids() {
            let scraped = recorder.boundary_counters(id, at);
            assert!(
                scraped.is_some(),
                "boundary row exists at t={at_secs} for {id}"
            );
        }
    }
}

#[test]
fn campaign_plan_covers_all_phases_contiguously() {
    let cfg = CampaignConfig::quick(30);
    let targets: Vec<icfl::micro::ServiceId> =
        (0..5).map(icfl::micro::ServiceId::from_index).collect();
    let campaign = Campaign::service_unavailable_sweep(&targets, cfg);
    let plan = campaign.plan(icfl::sim::SimTime::ZERO);
    // warmup, baseline, then (cooldown, fault) per target.
    assert_eq!(plan.len(), 2 + 2 * targets.len());
    assert_eq!(plan[0].label, PhaseLabel::Warmup);
    assert_eq!(plan[1].label, PhaseLabel::Baseline);
    for pair in plan.windows(2) {
        assert_eq!(pair[0].end, pair[1].start);
    }
    // Arm on a real sim and verify the trace matches the plan.
    let spec = icfl::micro::ClusterSpec::new("t");
    let spec = (0..5).fold(spec, |s, i| {
        s.service(icfl::micro::ServiceSpec::web(format!("s{i}")))
    });
    let mut cluster = Cluster::build(&spec, 1).unwrap();
    let mut sim = Sim::new(1);
    Cluster::start(&mut sim, &mut cluster);
    let trace = InterventionTrace::new();
    let plan = campaign.arm(&mut sim, icfl::sim::SimTime::ZERO, &trace);
    sim.run_until(plan.last().unwrap().end, &mut cluster);
    assert_eq!(trace.len(), 5);
}

#[test]
fn section_6b_causal_worlds_reproduce() {
    // The paper's concrete example: on CausalBench, intervening on B gives
    //   C(B, msg rate) = {B, A, E}  and  C(B, cpu) = {B, C, E}.
    let app = icfl::apps::causalbench();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(42)).unwrap();
    let catalog = MetricCatalog::new(
        "worlds",
        vec![
            MetricSpec::Raw(RawMetric::MsgCount),
            MetricSpec::Raw(RawMetric::CpuSeconds),
        ],
    );
    let model = campaign
        .learn(&catalog, RunConfig::default_detector())
        .unwrap();
    let name_of = |id: &icfl::micro::ServiceId| campaign.service_names()[id.index()].clone();
    let b = campaign.targets()[1];
    assert_eq!(name_of(&b), "B");

    let msg_world: Vec<String> = model
        .causal_set(0, b)
        .unwrap()
        .iter()
        .map(&name_of)
        .collect();
    let cpu_world: Vec<String> = model
        .causal_set(1, b)
        .unwrap()
        .iter()
        .map(name_of)
        .collect();
    assert_eq!(msg_world, vec!["A", "B", "E"], "paper §VI-B(a)");
    assert_eq!(cpu_world, vec!["B", "C", "E"], "paper §VI-B(b)");
}

#[test]
fn window_config_and_recorder_agree_on_window_counts() {
    let app = icfl::apps::pattern1();
    let end = icfl::sim::SimTime::from_secs(600);
    let wc = WindowConfig::default();
    let (mut scenario, recorder) = Scenario::builder(&app, 3)
        .build_with(RecorderTap::new((icfl::sim::SimTime::ZERO, end), wc))
        .unwrap();
    scenario.run_until(end);
    let ds = recorder.dataset(&MetricCatalog::raw_all()).unwrap();
    // The paper's setup: a 10-minute phase yields 19 overlapping windows.
    assert_eq!(ds.num_windows(), 19);
    assert_eq!(
        ds.num_windows(),
        wc.count_in(icfl::sim::SimDuration::from_secs(600))
    );
}
