//! The self-observability split, enforced: the deterministic event
//! journal (counters, high-water gauges, run manifests) must be
//! byte-identical no matter how many worker threads execute the campaign
//! — thread count is a performance knob, never a semantics knob — while
//! the wall-clock profile stays out of byte-compared output entirely and
//! only has to be *structurally* sound (a valid, well-nested Chrome
//! trace covering every pipeline phase).

use icfl::core::{CampaignRun, EvalSuite, RunConfig};
use icfl::micro::FaultKind;
use icfl::online::{Episode, IncidentSchedule, OnlineConfig, OnlineSession};
use icfl::sim::{SimDuration, SimTime};
use icfl::telemetry::MetricCatalog;
use std::sync::Mutex;

/// Serializes tests in this file: they all reset the process-global
/// `icfl-obs` collector.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs the representative workload — offline campaign + evaluation plus
/// one online incident session — on the small 3-service chain.
fn run_workload(threads: usize) {
    let app = icfl::apps::pattern1();
    let cfg = RunConfig::quick(42).with_threads(threads);
    let campaign = CampaignRun::execute(&app, &cfg).expect("campaign");
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .expect("learn");
    let suite = EvalSuite::execute(&app, campaign.targets(), &cfg).expect("eval suite");
    suite.evaluate(&model).expect("evaluate");

    let (_, targets) = app.build(42).expect("build");
    let schedule = IncidentSchedule::new(vec![Episode::single(
        SimTime::from_secs(100),
        targets[0],
        FaultKind::ServiceUnavailable,
        SimDuration::from_secs(50),
    )]);
    OnlineSession::run(&app, &model, &schedule, &OnlineConfig::quick(), 42).expect("session");
}

/// The journal rendered every way it is exported: Prometheus exposition,
/// JSONL samples, and the manifest log.
fn journal_after_workload(threads: usize) -> (String, String, String) {
    icfl::obs::reset();
    run_workload(threads);
    let obs = icfl::obs::global();
    let snap = obs.metrics.snapshot();
    (
        snap.to_prometheus(),
        snap.to_jsonl(),
        icfl::obs::manifest::manifests_jsonl(&obs.manifests()),
    )
}

#[test]
fn journal_is_byte_identical_across_thread_counts() {
    let _guard = OBS_LOCK.lock().unwrap();
    let serial = journal_after_workload(1);
    assert!(
        !serial.0.is_empty(),
        "workload produced an empty journal — instrumentation is dead"
    );
    let two = journal_after_workload(2);
    assert_eq!(serial, two, "threads=2 journal diverged from serial");
    let max = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(2);
    let wide = journal_after_workload(max);
    assert_eq!(serial, wide, "threads={max} journal diverged from serial");
    icfl::obs::reset();
}

#[test]
fn journal_covers_executor_windowing_and_online_metrics() {
    let _guard = OBS_LOCK.lock().unwrap();
    let (prom, jsonl, manifests) = journal_after_workload(2);
    for metric in [
        // Parallel campaign/evaluation executor.
        "icfl_executor_pools_total",
        "icfl_executor_jobs_total",
        // WindowEngine internals.
        "icfl_window_engines_total",
        "icfl_windows_finalized_total",
        "icfl_window_cache_misses_total",
        // Scenario assembly.
        "icfl_scenarios_built_total",
        // Online session: detector transitions and tick volume.
        "icfl_detector_events_total",
        "icfl_online_ticks_total",
    ] {
        assert!(prom.contains(metric), "missing {metric} in:\n{prom}");
        assert!(jsonl.contains(metric), "missing {metric} in JSONL");
    }
    // The detector walked a full incident lifecycle.
    for event in ["suspected", "confirmed", "resolved"] {
        assert!(
            prom.contains(&format!("event=\"{event}\"")),
            "missing detector event {event} in:\n{prom}"
        );
    }
    // One manifest per assembled run, all for the workload app.
    assert!(!manifests.is_empty());
    assert!(manifests
        .lines()
        .all(|l| l.contains("\"app\":\"pattern1\"")));
    icfl::obs::reset();
}

#[test]
fn profile_trace_is_valid_and_covers_every_phase() {
    let _guard = OBS_LOCK.lock().unwrap();
    icfl::obs::reset();
    run_workload(2);
    let obs = icfl::obs::global();

    let json = icfl::obs::trace::chrome_trace_json(&obs.profiler.trace_events());
    let events = icfl::obs::trace::validate_chrome_trace(&json).expect("chrome trace invalid");
    assert!(events > 0, "no spans were recorded");

    let phases: Vec<String> = obs
        .profiler
        .aggregate()
        .into_iter()
        .map(|r| r.name)
        .collect();
    for phase in [
        "scenario-build",
        "sim-run",
        "windowing",
        "learn",
        "localize",
        "executor.pool",
        "executor.worker",
        "online.session",
        "online.scrape",
    ] {
        assert!(
            phases.iter().any(|p| p == phase),
            "missing span/stat {phase} in {phases:?}"
        );
    }
    icfl::obs::reset();
}
