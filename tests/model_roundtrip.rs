//! Registry round-trip fidelity: a model trained on CausalBench, saved
//! through the model registry, and reloaded must localize *byte-identically*
//! to the in-memory original — including after an incremental
//! `update_target` refresh is persisted as a second version.

use icfl::core::{CampaignRun, ProductionRun, RunConfig};
use icfl::online::{ModelMeta, ModelRegistry};
use icfl::telemetry::MetricCatalog;

#[test]
fn reloaded_model_localizes_byte_identically() {
    let app = icfl::apps::causalbench();
    let cfg = RunConfig::quick(11);
    let campaign = CampaignRun::execute(&app, &cfg).expect("campaign");
    let catalog = MetricCatalog::derived_all();
    let mut model = campaign
        .learn(&catalog, RunConfig::default_detector())
        .expect("learn");

    let root = std::env::temp_dir().join(format!("icfl-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = ModelRegistry::open(&root).expect("open registry");
    let meta = ModelMeta {
        app: app.name.clone(),
        seed: 11,
        catalog: catalog.name().to_owned(),
        detector: "ks".into(),
        num_services: model.num_services(),
        targets: campaign
            .targets()
            .iter()
            .map(|&t| campaign.service_names()[t.index()].clone())
            .collect(),
        note: "roundtrip test".into(),
    };

    let v1 = registry
        .save(&app.name, meta.clone(), &model)
        .expect("save v1");
    assert_eq!(v1, 1);
    let reloaded = registry.load_latest(&app.name).expect("reload").model;

    // A fresh production fault, localized by both copies.
    let target = campaign.targets()[3];
    let production = ProductionRun::execute(&app, target, &RunConfig::quick(99)).expect("prod");
    let dataset = production.dataset(&catalog).expect("dataset");
    let original_verdict = model.localize(&dataset).expect("localize original");
    let reloaded_verdict = reloaded.localize(&dataset).expect("localize reloaded");
    assert_eq!(
        serde_json::to_string(&original_verdict).expect("json"),
        serde_json::to_string(&reloaded_verdict).expect("json"),
        "reloaded model must localize byte-identically"
    );
    assert_eq!(
        model.to_json().expect("json"),
        reloaded.to_json().expect("json"),
        "registry round-trip must preserve the model bytes"
    );

    // Incremental refresh: re-learn one target's causal sets from a fresh
    // intervention dataset, persist as v2, and round-trip again.
    let refresh = CampaignRun::execute(&app, &RunConfig::quick(123)).expect("refresh campaign");
    let fault_data = refresh
        .fault_datasets(&catalog)
        .expect("fault datasets")
        .into_iter()
        .find(|(svc, _)| *svc == target)
        .expect("refreshed campaign covers the target")
        .1;
    model
        .update_target(target, &fault_data)
        .expect("update_target");
    let v2 = registry.save(&app.name, meta, &model).expect("save v2");
    assert_eq!(v2, 2);
    let reloaded2 = registry.load_latest(&app.name).expect("reload v2").model;
    assert_eq!(
        serde_json::to_string(&model.localize(&dataset).expect("localize")).expect("json"),
        serde_json::to_string(&reloaded2.localize(&dataset).expect("localize")).expect("json"),
        "updated model must round-trip byte-identically too"
    );
    assert_eq!(registry.versions(&app.name).expect("versions"), vec![1, 2]);

    let _ = std::fs::remove_dir_all(&root);
}
