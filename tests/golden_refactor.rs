//! Golden equivalence gate for the scenario/window-engine refactor.
//!
//! The JSON files under `tests/goldens/` were captured from the
//! pre-refactor pipeline (hand-rolled assembly sites + the full-dataset
//! `Recorder`). Every output here — the Table I quick-mode learned model,
//! its evaluation summaries, and the production session report — must stay
//! byte-identical as the internals move onto `icfl-scenario` and the
//! unified `WindowEngine`.
//!
//! Regenerate (only when an intentional semantic change is made) with
//! `ICFL_UPDATE_GOLDENS=1 cargo test --test golden_refactor`.

use icfl::core::{CampaignRun, EvalSuite, RunConfig};
use icfl::experiments::{production, Mode, ProductionOptions};
use icfl::telemetry::MetricCatalog;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compares `actual` against the committed golden, or rewrites the golden
/// when `ICFL_UPDATE_GOLDENS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("ICFL_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create goldens dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "{name}: output diverged from the pre-refactor golden"
    );
}

#[test]
fn table1_quick_model_and_summaries_match_goldens() {
    for app in [icfl::apps::causalbench(), icfl::apps::robot_shop()] {
        let campaign = CampaignRun::execute(&app, &Mode::Quick.train_cfg(42)).expect("campaign");
        let model = campaign
            .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .expect("learn");
        assert_golden(
            &format!("table1_{}_model.json", app.name),
            &serde_json::to_string_pretty(&model).expect("model json"),
        );
        for load in [1usize, 4] {
            let suite = EvalSuite::execute(
                &app,
                campaign.targets(),
                &Mode::Quick.eval_cfg(42).with_replicas(load),
            )
            .expect("eval suite");
            let summary = suite.evaluate(&model).expect("evaluate");
            assert_golden(
                &format!("table1_{}_eval_{}x.json", app.name, load),
                &serde_json::to_string_pretty(&summary).expect("summary json"),
            );
        }
    }
}

#[test]
fn production_quick_report_matches_golden() {
    let root = std::env::temp_dir().join(format!("icfl-golden-production-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let opts = ProductionOptions::new(Mode::Quick, 42).with_registry_root(&root);
    let report = production(&opts).expect("production run");
    let _ = std::fs::remove_dir_all(&root);
    assert_golden(
        "production_quick_report.json",
        &serde_json::to_string_pretty(&report).expect("report json"),
    );
}
