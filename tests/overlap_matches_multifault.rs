//! Cross-checks the online handling of *overlapping* incidents against the
//! offline multi-fault machinery: when two services fail at once, the
//! online localizer's verdict must be consistent with what
//! [`MultiFaultRun`](icfl::core::MultiFaultRun) concludes for the same
//! simultaneous pair offline.

use icfl::core::{CampaignRun, MultiFaultRun, RunConfig};
use icfl::micro::FaultKind;
use icfl::online::{Episode, EpisodeFault, IncidentSchedule, OnlineConfig, OnlineSession};
use icfl::sim::{SimDuration, SimTime};
use icfl::telemetry::MetricCatalog;

#[test]
fn online_overlap_verdict_is_consistent_with_offline_multifault() {
    let app = icfl::apps::causalbench();
    let cfg = RunConfig::quick(42);
    let campaign = CampaignRun::execute(&app, &cfg).expect("campaign");
    let catalog = MetricCatalog::derived_all();
    let model = campaign
        .learn(&catalog, RunConfig::default_detector())
        .expect("learn");

    let targets = campaign.targets();
    let (a, b) = (targets[2], targets[5]);

    // Offline: both faults active over one whole phase.
    let offline = MultiFaultRun::execute(
        &app,
        &[
            (a, FaultKind::ServiceUnavailable),
            (b, FaultKind::ServiceUnavailable),
        ],
        &RunConfig::quick(42 ^ 0x00e1_7ab1_e5ee_d5ee),
    )
    .expect("multi-fault run");
    let offline_loc = model
        .localize(&offline.dataset(&catalog).expect("dataset"))
        .expect("offline localization");
    let offline_top2 = offline_loc.top_k(2);

    // Online: the same pair overlapping in one incident episode.
    let schedule = IncidentSchedule::new(vec![Episode {
        start: SimTime::from_secs(100),
        faults: vec![
            EpisodeFault {
                service: a,
                fault: FaultKind::ServiceUnavailable,
                offset: SimDuration::from_secs(0),
                duration: SimDuration::from_secs(50),
            },
            EpisodeFault {
                service: b,
                fault: FaultKind::ServiceUnavailable,
                offset: SimDuration::from_secs(15),
                duration: SimDuration::from_secs(50),
            },
        ],
    }]);
    let report = OnlineSession::run(&app, &model, &schedule, &OnlineConfig::quick(), 42)
        .expect("online session");

    let incident = &report.incidents[0];
    assert!(incident.detected, "overlapping incident was not detected");
    assert!(
        incident.time_to_detect_secs.is_some() && incident.time_to_localize_secs.is_some(),
        "detected incident must carry latency measurements"
    );
    // Both layers reason about the same double outage and must agree on
    // the strongest candidate. (Multi-fault attribution itself is the
    // paper's open work: a simultaneous pair can legitimately vote for a
    // shared upstream rather than either injected service, but online and
    // offline must do so *consistently*.)
    let (cluster, _) = app.build(42).expect("build");
    let online_top1 = incident.top1.clone().expect("localized");
    let offline_top2_names: Vec<String> = offline_top2
        .iter()
        .map(|&svc| cluster.service_name(svc).to_string())
        .collect();
    assert_eq!(
        Some(online_top1.as_str()),
        offline_top2_names.first().map(String::as_str),
        "online top-1 disagrees with the offline multi-fault verdict"
    );
    assert!(
        !incident.ranked.is_empty(),
        "localized incident must expose its ranked candidates"
    );
}
