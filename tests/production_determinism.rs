//! The production experiment's acceptance gates: thread-count invariance
//! (byte-identical reports at 1, 2, and max worker threads), incident
//! coverage (≥ 20 injected outages across both benchmark apps), and
//! online top-1 accuracy within 0.05 of the offline 1× reference.

use icfl::experiments::{production, Mode, ProductionOptions, ProductionReport};

fn run_at(threads: usize, tag: &str) -> ProductionReport {
    let root =
        std::env::temp_dir().join(format!("icfl-production-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut opts = ProductionOptions::new(Mode::Quick, 42).with_registry_root(&root);
    opts.threads = threads;
    let report = production(&opts).expect("production run failed");
    let _ = std::fs::remove_dir_all(&root);
    report
}

#[test]
fn production_is_thread_invariant_and_meets_the_offline_bar() {
    let max = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(3);
    let serial = run_at(1, "t1");
    let two = run_at(2, "t2");
    let wide = run_at(max, "tmax");

    let as_json = |r: &ProductionReport| serde_json::to_string(r).expect("serialize report");
    assert_eq!(
        as_json(&serial),
        as_json(&two),
        "1 vs 2 worker threads changed the report"
    );
    assert_eq!(
        as_json(&serial),
        as_json(&wide),
        "1 vs {max} worker threads changed the report"
    );

    assert!(
        serial.total_episodes() >= 20,
        "need at least 20 injected incidents, got {}",
        serial.total_episodes()
    );
    assert_eq!(serial.apps.len(), 2, "both benchmark apps must run");
    for app in &serial.apps {
        for session in &app.sessions {
            for incident in &session.incidents {
                if incident.detected {
                    assert!(
                        incident.time_to_detect_secs.is_some(),
                        "{}: detected incident without a time-to-detect",
                        app.app
                    );
                    assert!(
                        incident.time_to_localize_secs.is_some(),
                        "{}: detected incident without a time-to-localize",
                        app.app
                    );
                }
            }
        }
        assert!(
            app.online_top1_accuracy() >= app.offline_accuracy - 0.05,
            "{}: online top-1 {:.3} fell more than 0.05 below offline {:.3}",
            app.app,
            app.online_top1_accuracy(),
            app.offline_accuracy
        );
    }
}
