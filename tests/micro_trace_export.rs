//! The `icfl-micro` request span store exports through the same
//! Chrome-trace writer as the pipeline profiler: one lane per request
//! inside one process per service, on the *simulated* clock. For a known
//! seed the call tree is fully determined, so the exported span tree
//! shape is asserted exactly.

use icfl::experiments::micro_spans_to_trace;
use icfl::micro::{steps, Cluster, ClusterSpec, ServiceSpec, Span};
use icfl::obs::trace::{chrome_trace_json, validate_chrome_trace};
use icfl::sim::{Sim, SimTime};

/// a → b → c chain, one root request, seed 81 (the known-good seed from
/// the micro crate's own tracing tests).
fn traced_chain_spans() -> Vec<Span> {
    let spec = ClusterSpec::new("chain")
        .service(
            ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1), steps::call("b", "/")]),
        )
        .service(
            ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(1), steps::call("c", "/")]),
        )
        .service(ServiceSpec::web("c").endpoint("/", vec![steps::compute_ms(1)]));
    let mut cluster = Cluster::build(&spec, 81).expect("build");
    let traces = cluster.enable_tracing();
    let mut sim = Sim::new(81);
    Cluster::start(&mut sim, &mut cluster);
    let a = cluster.service_id("a").expect("service a");
    Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, _| {});
    sim.run_until(SimTime::from_secs(2), &mut cluster);
    traces.spans()
}

#[test]
fn chain_trace_exports_with_known_tree_shape() {
    let spans = traced_chain_spans();
    assert_eq!(spans.len(), 3, "a → b → c must produce exactly 3 spans");

    let names: Vec<String> = ["a", "b", "c"].iter().map(|s| (*s).to_string()).collect();
    let events = micro_spans_to_trace(&spans, &names);
    assert_eq!(events.len(), 3);

    // The writer's output is structurally valid Chrome trace JSON.
    let json = chrome_trace_json(&events);
    assert_eq!(validate_chrome_trace(&json), Ok(3));

    // Every service appears once, each in its own process lane.
    let mut seen: Vec<(&str, u64)> = events.iter().map(|e| (e.name.as_str(), e.pid)).collect();
    seen.sort();
    assert_eq!(seen, vec![("a", 1), ("b", 2), ("c", 3)]);

    // Tree shape: exactly one root, and each child's parent arg points at
    // another exported request.
    let arg = |e: &icfl::obs::TraceEvent, k: &str| {
        e.args
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
    };
    let roots: Vec<&icfl::obs::TraceEvent> = events
        .iter()
        .filter(|e| arg(e, "parent").is_none())
        .collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].name, "a");
    for e in &events {
        if let Some(parent) = arg(e, "parent") {
            assert!(
                events
                    .iter()
                    .any(|o| arg(o, "request").as_deref() == Some(parent.as_str())),
                "{}: parent {parent} not among exported requests",
                e.name
            );
        }
    }

    // Simulated-clock containment: each callee's interval nests inside
    // its caller's (a contains b contains c).
    let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
    let (a, b, c) = (by_name("a"), by_name("b"), by_name("c"));
    for (outer, inner) in [(a, b), (b, c)] {
        assert!(
            outer.ts <= inner.ts,
            "{} starts before {}",
            outer.name,
            inner.name
        );
        assert!(
            outer.ts + outer.dur >= inner.ts + inner.dur,
            "{} ends after {}",
            outer.name,
            inner.name
        );
    }
}

#[test]
fn export_is_deterministic_for_a_fixed_seed() {
    let first = micro_spans_to_trace(&traced_chain_spans(), &[]);
    let second = micro_spans_to_trace(&traced_chain_spans(), &[]);
    assert_eq!(
        chrome_trace_json(&first),
        chrome_trace_json(&second),
        "same seed must export byte-identical traces"
    );
}
