//! Multi-fault localization — the scenario the paper leaves as open work.
//! Algorithm 2's per-metric vote extends to simultaneous faults because
//! different metrics can vote for different culprits; the top-k ranking
//! surfaces both.

use icfl::core::{CampaignRun, MultiFaultRun, RunConfig};
use icfl::micro::FaultKind;
use icfl::telemetry::MetricCatalog;

#[test]
fn two_simultaneous_faults_appear_in_the_top_ranks() {
    let app = icfl::apps::causalbench();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(1212)).unwrap();
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();

    // Break two structurally independent services at once: C (on the
    // B-chain) and I (on the D counter path).
    let targets = campaign.targets();
    let c = targets[2];
    let i = targets[7];
    assert_eq!(campaign.service_names()[c.index()], "C");
    assert_eq!(campaign.service_names()[i.index()], "I");

    let run = MultiFaultRun::execute(
        &app,
        &[
            (c, FaultKind::ServiceUnavailable),
            (i, FaultKind::ServiceUnavailable),
        ],
        &RunConfig::quick(3434),
    )
    .unwrap();
    assert_eq!(run.injected, vec![c, i]);

    let loc = model
        .localize(&run.dataset(model.catalog()).unwrap())
        .unwrap();
    let ranked = loc.ranked();
    assert!(
        ranked.len() >= 2,
        "two faults should spread votes over several services: {ranked:?}"
    );
    let top3 = loc.top_k(3);
    let hits = [c, i].iter().filter(|s| top3.contains(s)).count();
    assert!(
        hits >= 1,
        "at least one of the two injected faults must rank in the top 3; top3={top3:?}"
    );
    // Both culprits accumulate non-zero votes.
    assert!(loc.votes[c.index()] > 0.0 || loc.votes[i.index()] > 0.0);
}

#[test]
fn single_fault_multi_run_degenerates_to_production_run() {
    let app = icfl::apps::pattern1();
    let campaign = CampaignRun::execute(&app, &RunConfig::quick(5656)).unwrap();
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    let b = campaign.targets()[1];
    let run = MultiFaultRun::execute(
        &app,
        &[(b, FaultKind::ServiceUnavailable)],
        &RunConfig::quick(7878),
    )
    .unwrap();
    let loc = model
        .localize(&run.dataset(model.catalog()).unwrap())
        .unwrap();
    assert!(
        loc.implicates(b),
        "single-fault multi-run must localize normally"
    );
}

#[test]
#[should_panic(expected = "at least one fault")]
fn empty_fault_list_panics() {
    let app = icfl::apps::pattern1();
    let _ = MultiFaultRun::execute(&app, &[], &RunConfig::quick(1));
}
