//! Operating the causal model over its lifecycle: persist it to JSON,
//! analyze which faults it could confuse, incrementally re-learn a single
//! service after a redeployment, and mine the raw log stream into
//! templates.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example model_ops
//! ```

use icfl::core::{CampaignRun, CausalModel, ProductionRun, RunConfig};
use icfl::scenario::Scenario;
use icfl::sim::SimTime;
use icfl::telemetry::{MetricCatalog, TemplateMiner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = icfl::apps::causalbench();
    let cfg = RunConfig::quick(33);
    println!("training on CausalBench...");
    let campaign = CampaignRun::execute(&app, &cfg)?;
    let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
    let name = |s: &icfl::micro::ServiceId| campaign.service_names()[s.index()].clone();

    // ---------------------------------------------------------------
    // 1. Persistence: the model is plain JSON.
    // ---------------------------------------------------------------
    let json = model.to_json()?;
    let restored = CausalModel::from_json(&json)?;
    assert_eq!(model, restored);
    println!(
        "model persisted and restored: {} bytes of JSON\n",
        json.len()
    );

    // ---------------------------------------------------------------
    // 2. Confusability: which faults would this model mix up?
    //    (§III-B — signatures, not detectors, bound localization.)
    // ---------------------------------------------------------------
    println!("most confusable fault pairs (mean Jaccard of causal signatures):");
    for (a, b, sim) in model.confusable_pairs(0.3).into_iter().take(5) {
        println!("  {} ~ {}   similarity {:.2}", name(&a), name(&b), sim);
    }

    // ---------------------------------------------------------------
    // 3. Incremental update: service C is "redeployed"; re-run only its
    //    intervention instead of the whole campaign.
    // ---------------------------------------------------------------
    let c = campaign.targets()[2];
    println!("\nre-running only the {} intervention...", name(&c));
    let rerun = ProductionRun::execute(&app, c, &RunConfig::quick(333))?;
    let mut updated = model.clone();
    updated.update_target(c, &rerun.dataset(model.catalog())?)?;
    let set_before: Vec<String> = model.causal_set(1, c).unwrap().iter().map(&name).collect();
    let set_after: Vec<String> = updated
        .causal_set(1, c)
        .unwrap()
        .iter()
        .map(&name)
        .collect();
    println!(
        "  C({}, cpu/rx) before: {{{}}}",
        name(&c),
        set_before.join(", ")
    );
    println!(
        "  C({}, cpu/rx) after:  {{{}}}",
        name(&c),
        set_after.join(", ")
    );

    // ---------------------------------------------------------------
    // 4. Template mining over the raw log stream (what `kubectl logs`
    //    would return for node F).
    // ---------------------------------------------------------------
    println!("\nmining log templates from a fresh 2-minute run...");
    let mut scenario = Scenario::builder(&app, 99).build()?;
    scenario.run_until(SimTime::from_secs(120));
    let cluster = &scenario.cluster;
    let mut miner = TemplateMiner::new(0.6);
    for id in cluster.service_ids() {
        let logs = cluster.recent_logs(id, 256);
        if logs.is_empty() {
            continue;
        }
        miner.observe_records(&logs);
        println!(
            "  {}: {} recent messages",
            cluster.service_name(id),
            logs.len()
        );
    }
    println!("\nmined templates:");
    for t in miner.templates() {
        println!("  [{:4}x] {}", t.count, t.pattern());
    }
    Ok(())
}
