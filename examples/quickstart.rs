//! Quickstart: train an interventional causal model on CausalBench and
//! localize a fault it has never seen.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use icfl::core::{CampaignRun, EvalSuite, ProductionRun, RunConfig};
use icfl::telemetry::MetricCatalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 9-service micro-benchmark (Fig. 4).
    let app = icfl::apps::causalbench();
    println!(
        "application: {} ({} services)",
        app.name,
        app.num_services()
    );

    // ---------------------------------------------------------------
    // Algorithm 1 — fault-injection-driven causal learning.
    //
    // The campaign observes a no-fault baseline, then injects an
    // http-service-unavailable fault into each HTTP-reachable service in
    // turn, recording which services' metric distributions shift.
    // `RunConfig::quick` uses 2-minute phases; use `RunConfig::paper` for
    // the paper's 10-minute protocol.
    // ---------------------------------------------------------------
    let cfg = RunConfig::quick(42);
    println!(
        "running training campaign ({} fault targets)...",
        app.fault_targets.len()
    );
    let campaign = CampaignRun::execute(&app, &cfg)?;
    let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;

    println!("\nlearned causal sets C(s, M):");
    for (m, target, set) in model.iter_sets() {
        let names: Vec<&str> = set
            .iter()
            .map(|s| campaign.service_names()[s.index()].as_str())
            .collect();
        println!(
            "  C({}, {:18}) = {{{}}}",
            campaign.service_names()[target.index()],
            model.catalog().metric_names()[m],
            names.join(", ")
        );
    }

    // Models serialize to JSON for reuse across sessions.
    let json = model.to_json()?;
    println!("\nserialized model: {} bytes of JSON", json.len());

    // ---------------------------------------------------------------
    // Algorithm 2 — localize a single fresh fault.
    // ---------------------------------------------------------------
    let victim = campaign.targets()[2]; // service "C"
    println!(
        "\ninjecting a fresh fault into {} and localizing...",
        campaign.service_names()[victim.index()]
    );
    let run = ProductionRun::execute(&app, victim, &RunConfig::quick(4242))?;
    let loc = model.localize(&run.dataset(model.catalog())?)?;
    let candidates: Vec<&str> = loc
        .candidates
        .iter()
        .map(|s| campaign.service_names()[s.index()].as_str())
        .collect();
    println!("candidate root causes: {{{}}}", candidates.join(", "));
    for mv in &loc.per_metric {
        let anomalous: Vec<&str> = mv
            .anomalies
            .iter()
            .map(|s| campaign.service_names()[s.index()].as_str())
            .collect();
        println!(
            "  metric {:18} saw anomalies at {{{}}}",
            mv.metric,
            anomalous.join(", ")
        );
    }

    // ---------------------------------------------------------------
    // Full evaluation sweep: one fault per service, scored with the
    // paper's accuracy and informativeness measures.
    // ---------------------------------------------------------------
    println!("\nrunning the full evaluation sweep...");
    let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(777))?;
    let summary = suite.evaluate(&model)?;
    println!("result: {summary}");
    Ok(())
}
