//! CausalBench deep dive: reproduce the §VI-B "causal worlds differ per
//! metric" example, then show how the majority vote combines the worlds to
//! localize faults that any single metric would misattribute.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example causalbench_localize
//! ```

use icfl::core::{CampaignRun, ProductionRun, RunConfig};
use icfl::telemetry::{MetricCatalog, MetricSpec, RawMetric};

fn names<'a>(
    set: impl IntoIterator<Item = &'a icfl::micro::ServiceId>,
    campaign: &CampaignRun,
) -> String {
    set.into_iter()
        .map(|s| campaign.service_names()[s.index()].as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = icfl::apps::causalbench();
    let cfg = RunConfig::quick(7);
    println!("training on CausalBench...");
    let campaign = CampaignRun::execute(&app, &cfg)?;

    // --- §VI-B: the msg-rate world vs the CPU world of a fault on B. ---
    let worlds = MetricCatalog::new(
        "worlds",
        vec![
            MetricSpec::Raw(RawMetric::MsgCount),
            MetricSpec::Raw(RawMetric::CpuSeconds),
        ],
    );
    let world_model = campaign.learn(&worlds, RunConfig::default_detector())?;
    let b = campaign.targets()[1];
    println!("\n§VI-B — two causal worlds for the same intervention on B:");
    println!(
        "  msg rate world: {{{}}}   (paper: B, A, E — A logs errors, E stops logging)",
        names(world_model.causal_set(0, b).unwrap(), &campaign)
    );
    println!(
        "  cpu world:      {{{}}}   (paper: B, C, E — traffic to C and E stops)",
        names(world_model.causal_set(1, b).unwrap(), &campaign)
    );

    // --- The multi-metric vote in action on an omission fault. ---
    // A fault on H starves G through the D→F pipeline: G never logs an
    // error, so log-based methods cannot see it; request/CPU metrics can.
    let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
    let h = campaign.targets()[6]; // "H"
    println!("\ninjecting an omission-inducing fault into H...");
    let run = ProductionRun::execute(&app, h, &RunConfig::quick(99))?;
    let loc = model.localize(&run.dataset(model.catalog())?)?;
    println!("votes per service:");
    for (i, v) in loc.votes.iter().enumerate() {
        if *v > 0.0 {
            println!("  {:3}  {:.2}", campaign.service_names()[i], v);
        }
    }
    println!("candidates: {{{}}}", names(&loc.candidates, &campaign));
    assert!(
        loc.implicates(h),
        "the omission fault on H should be localized"
    );
    println!("\nH correctly localized despite producing zero error logs at the victim G.");
    Ok(())
}
