//! Robot-shop walkthrough: train at 1× load, then show what happens when
//! production load quadruples — the paper's Table I degradation — and how
//! derived metrics keep the model usable while raw metrics collapse.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example robotshop_localize
//! ```

use icfl::core::{CampaignRun, EvalSuite, RunConfig};
use icfl::telemetry::MetricCatalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = icfl::apps::robot_shop();
    println!(
        "application: {} ({} services, {} userflows)",
        app.name,
        app.num_services(),
        app.flows.len()
    );

    let cfg = RunConfig::quick(21);
    println!("training campaign at 1x load...");
    let campaign = CampaignRun::execute(&app, &cfg)?;

    let derived = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
    let raw = campaign.learn(&MetricCatalog::raw_all(), RunConfig::default_detector())?;

    for load in [1usize, 4] {
        println!("\nevaluating at {load}x load...");
        let suite = EvalSuite::execute(
            &app,
            campaign.targets(),
            &RunConfig::quick(2121).with_replicas(load),
        )?;
        let d = suite.evaluate(&derived)?;
        let r = suite.evaluate(&raw)?;
        println!("  derived metrics: {d}");
        println!("  raw metrics:     {r}");
        if load == 4 {
            assert!(
                d.accuracy > r.accuracy,
                "derived metrics must out-localize raw metrics under load shift"
            );
            println!(
                "\n  → at 4x, raw rates all shift with the load (everything looks\n    \
                 anomalous vs the 1x baseline) while per-request derived metrics\n    \
                 stay calibrated — the §V-A deconfounding heuristic at work."
            );
        }
    }
    Ok(())
}
