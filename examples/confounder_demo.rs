//! The Fig. 2 confounder, live: fixing the external load and breaking one
//! service *raises* the request rate at an unrelated service — but only
//! under closed-loop (Locust-style) load.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example confounder_demo
//! ```

use icfl::loadgen::ArrivalModel;
use icfl::micro::FaultKind;
use icfl::scenario::Scenario;
use icfl::sim::{DurationDist, SimDuration, SimTime};

/// Returns the request rate (req/s) observed at `observe` over a minute of
/// steady state, with an optional fault on `fault_on`.
fn observed_rate(
    fault_on: Option<&str>,
    observe: &str,
    arrival: ArrivalModel,
    seed: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let app = icfl::apps::fig2_topology();
    let mut builder = Scenario::builder(&app, seed).arrival(arrival);
    if let Some(name) = fault_on {
        builder = builder.preset_fault(name, FaultKind::ServiceUnavailable);
    }
    let mut scenario = builder.build()?;
    // Warm up, then measure one minute.
    scenario.run_until(SimTime::from_secs(30));
    let id = scenario
        .cluster
        .service_id(observe)
        .expect("service exists");
    let before = scenario.cluster.counters(id).requests_received;
    scenario.run_until(SimTime::from_secs(90));
    let after = scenario.cluster.counters(id).requests_received;
    Ok((after - before) as f64 / 60.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let closed = ArrivalModel::ClosedLoop {
        users_per_replica: 10,
        think_time: DurationDist::exponential(SimDuration::from_millis(100)),
    };
    let open = ArrivalModel::Open {
        rps_per_replica: 60.0,
    };

    println!("Fig. 2 topology: user → A → {{B → (C|E), I}};  C → E\n");

    println!("closed-loop load (Locust-style users — the realistic case):");
    let normal = observed_rate(None, "I", closed, 1)?;
    let faulted = observed_rate(Some("C"), "I", closed, 1)?;
    println!("  request rate at I, no fault:    {normal:6.1} req/s");
    println!("  request rate at I, C is DOWN:   {faulted:6.1} req/s");
    println!(
        "  → +{:.0}%: C's users fail fast, re-draw sooner, and spill onto I.\n    \
         A naive learner concludes \"C causally influences I\".\n",
        (faulted / normal - 1.0) * 100.0
    );
    assert!(
        faulted > normal,
        "the confounder should appear under closed loop"
    );

    // And the reverse direction — the confounder is intervention-dependent.
    let c_normal = observed_rate(None, "C", closed, 2)?;
    let c_faulted = observed_rate(Some("I"), "C", closed, 2)?;
    println!("  request rate at C, no fault:    {c_normal:6.1} req/s");
    println!("  request rate at C, I is DOWN:   {c_faulted:6.1} req/s");
    println!("  → the spurious edge flips direction with the intervention.\n");

    println!("open-loop load (Poisson arrivals — no queueing feedback):");
    let o_normal = observed_rate(None, "I", open, 3)?;
    let o_faulted = observed_rate(Some("C"), "I", open, 3)?;
    println!("  request rate at I, no fault:    {o_normal:6.1} req/s");
    println!("  request rate at I, C is DOWN:   {o_faulted:6.1} req/s");
    println!("  → invariant: the confounder was the closed loop, not the app.");
    Ok(())
}
