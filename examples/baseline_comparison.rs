//! Head-to-head on CausalBench: the proposed multi-metric interventional
//! method vs the error-log-only learner [23], RCD causal discovery [24],
//! the pooled single-causal-world learner, and a purely observational
//! anomaly ranker.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use icfl::baselines::{
    evaluate_localizer, AnomalyRanker, ErrorLogLocalizer, FaultLocalizer, PooledGraphLocalizer,
    RcdConfig, RcdLocalizer,
};
use icfl::core::{CampaignRun, EvalSuite, RunConfig};
use icfl::experiments::TextTable;
use icfl::telemetry::MetricCatalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = icfl::apps::causalbench();
    let cfg = RunConfig::quick(11);
    println!("training all methods on one CausalBench campaign...");
    let campaign = CampaignRun::execute(&app, &cfg)?;
    let detector = RunConfig::default_detector();

    let proposed = campaign.learn(&MetricCatalog::derived_all(), detector)?;
    let error_log = ErrorLogLocalizer::train(&campaign, detector)?;
    let rcd =
        RcdLocalizer::from_campaign(&campaign, &MetricCatalog::raw_all(), RcdConfig::default())?;
    let pooled = PooledGraphLocalizer::train(&campaign, &MetricCatalog::derived_all(), detector)?;
    let ranker = AnomalyRanker::new(
        MetricCatalog::derived_all(),
        campaign.baseline(&MetricCatalog::derived_all())?,
    );

    println!("evaluating on a fresh fault sweep...\n");
    let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(1111))?;

    let mut table = TextTable::new(vec!["Method", "Accuracy", "Informativeness"]);
    let ours = suite.evaluate(&proposed)?;
    table.row(vec![
        "proposed (multi-metric interventional)".into(),
        format!("{:.2}", ours.accuracy),
        format!("{:.2}", ours.informativeness),
    ]);
    let baselines: [&dyn FaultLocalizer; 4] = [&error_log, &rcd, &pooled, &ranker];
    for method in baselines {
        let s = evaluate_localizer(method, &suite)?;
        table.row(vec![
            method.name().into(),
            format!("{:.2}", s.accuracy),
            format!("{:.2}", s.informativeness),
        ]);
    }
    println!("{}", table.render());

    println!(
        "why [23] struggles here: CausalBench's D→F→G pipeline turns upstream\n\
         faults into *omission* faults at G — no error log is ever written on\n\
         that path, so a method that only watches error logs cannot tell the\n\
         cases apart. The multi-metric vote sees the missing requests instead."
    );
    Ok(())
}
