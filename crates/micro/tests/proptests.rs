//! Property-based tests of the cluster engine's conservation laws: every
//! accepted request is answered exactly once, faults never break counter
//! monotonicity, and unavailable services stay untouched.

use icfl_micro::{
    steps, Cluster, ClusterSpec, Counters, ErrorPolicy, FaultKind, ServiceSpec, Status, TargetId,
};
use icfl_sim::{Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Builds a linear chain `s0 → s1 → ... → s{depth-1}`.
fn chain(depth: usize, policy: ErrorPolicy) -> ClusterSpec {
    let mut spec = ClusterSpec::new("chain");
    for i in 0..depth {
        let mut svc = ServiceSpec::web(format!("s{i}")).with_concurrency(4);
        let steps = if i + 1 < depth {
            vec![
                steps::compute_ms(1),
                steps::call_with_policy(&format!("s{}", i + 1), "/", policy),
            ]
        } else {
            vec![steps::compute_ms(1)]
        };
        svc = svc.endpoint("/", steps);
        spec = spec.service(svc);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted request gets exactly one response, and per-service
    /// request accounting balances: received = ok + err once quiescent.
    #[test]
    fn request_conservation(
        depth in 1usize..5,
        requests in 1usize..30,
        seed in any::<u64>(),
        fault_pos in proptest::option::of(0usize..5),
    ) {
        let spec = chain(depth, ErrorPolicy::LogAndPropagate);
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        if let Some(pos) = fault_pos {
            if pos < depth {
                let id = cluster.service_id(&format!("s{pos}")).unwrap();
                cluster.set_fault(id, Some(FaultKind::ServiceUnavailable));
            }
        }
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let responses = Rc::new(RefCell::new(0usize));
        let entry = cluster.service_id("s0").unwrap();
        for i in 0..requests {
            let responses2 = Rc::clone(&responses);
            let at = SimTime::ZERO + SimDuration::from_millis(5 * i as u64);
            sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                let r3 = Rc::clone(&responses2);
                Cluster::submit(sim, cl, entry, "/", move |_, _, _| {
                    *r3.borrow_mut() += 1;
                });
            });
        }
        sim.run_until(SimTime::from_secs(30), &mut cluster);

        // Exactly one response per submission.
        prop_assert_eq!(*responses.borrow(), requests);
        // Per-service balance at quiescence.
        for id in cluster.service_ids() {
            let c = cluster.counters(id);
            prop_assert_eq!(
                c.requests_received,
                c.responses_ok + c.responses_err,
                "service {} unbalanced: {:?}", cluster.service_name(id), c
            );
            prop_assert_eq!(cluster.queue_len(id), 0);
            prop_assert_eq!(cluster.busy_workers(id), 0);
        }
    }

    /// An unavailable service never receives or processes anything, and
    /// everything upstream of it errors while downstream starves.
    #[test]
    fn unavailability_partitions_the_chain(
        depth in 2usize..5,
        seed in any::<u64>(),
    ) {
        let fault_pos = depth / 2;
        let spec = chain(depth, ErrorPolicy::LogAndPropagate);
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let faulty = cluster.service_id(&format!("s{fault_pos}")).unwrap();
        cluster.set_fault(faulty, Some(FaultKind::ServiceUnavailable));
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let entry = cluster.service_id("s0").unwrap();
        let status = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10u64 {
            let status2 = Rc::clone(&status);
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_millis(10 * i),
                move |sim, cl: &mut Cluster| {
                    let s3 = Rc::clone(&status2);
                    Cluster::submit(sim, cl, entry, "/", move |_, _, resp| {
                        s3.borrow_mut().push(resp.status);
                    });
                },
            );
        }
        sim.run_until(SimTime::from_secs(20), &mut cluster);

        prop_assert_eq!(status.borrow().len(), 10);
        if fault_pos == 0 {
            prop_assert!(status.borrow().iter().all(|&s| s == Status::ServiceUnavailable));
        } else {
            prop_assert!(status.borrow().iter().all(|&s| s == Status::InternalError));
        }
        // The faulty service and everything after it is untouched.
        for i in fault_pos..depth {
            let id = cluster.service_id(&format!("s{i}")).unwrap();
            prop_assert_eq!(cluster.counters(id).requests_received, 0, "s{} touched", i);
        }
        // The caller directly before the fault logged one error per request
        // (LogAndPropagate).
        if fault_pos > 0 {
            let id = cluster.service_id(&format!("s{}", fault_pos - 1)).unwrap();
            prop_assert_eq!(cluster.counters(id).logs_error, 10);
        }
    }

    /// Service-level counters are exactly the field-wise sum of their
    /// replica rows, however scrapes and replica-scoped fault flips
    /// interleave with the load — the invariant that makes the
    /// service-granularity pipeline a pure aggregation of the
    /// instance-granularity one.
    #[test]
    fn service_counters_equal_replica_row_sums(
        replicas in 1u32..4,
        requests in 1usize..40,
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u64..8_000, 0usize..4, 0u32..4), 0..8),
    ) {
        let spec = ClusterSpec::new("chain")
            .service(ServiceSpec::web("s0").with_concurrency(4).endpoint(
                "/",
                vec![steps::compute_ms(1), steps::call("s1", "/")],
            ))
            .service(
                ServiceSpec::web("s1")
                    .with_concurrency(4)
                    .with_replicas(replicas as usize)
                    .endpoint("/", vec![steps::compute_ms(1), steps::call("s2", "/")]),
            )
            .service(
                ServiceSpec::web("s2")
                    .with_concurrency(4)
                    .endpoint("/", vec![steps::compute_ms(1)]),
            );
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let entry = cluster.service_id("s0").unwrap();
        let mid = cluster.service_id("s1").unwrap();
        for i in 0..requests {
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_millis(7 * i as u64),
                move |sim, cl: &mut Cluster| {
                    Cluster::submit(sim, cl, entry, "/", |_, _, _| {});
                },
            );
        }
        // Arbitrary interleaving of whole-service and single-replica fault
        // flips (including gray degradations) while the load drains.
        for (at_ms, op, replica) in ops {
            let replica = replica.min(replicas - 1);
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_millis(at_ms),
                move |_, cl: &mut Cluster| match op {
                    0 => cl.set_fault_target(
                        TargetId::Instance(mid, replica),
                        Some(FaultKind::DegradedReplica {
                            latency_factor: 4.0,
                            error_prob: 0.5,
                        }),
                    ),
                    1 => cl.set_fault_target(
                        TargetId::Instance(mid, replica),
                        Some(FaultKind::ErrorRate(0.5)),
                    ),
                    2 => cl.set_fault_target(
                        TargetId::Service(mid),
                        Some(FaultKind::PacketLoss(0.3)),
                    ),
                    _ => cl.set_fault_target(TargetId::Service(mid), None),
                },
            );
        }
        for step in 1..=8u64 {
            sim.run_until(SimTime::from_secs(step), &mut cluster);
            let per_service = cluster.scrape_rows(cluster.num_services());
            let per_row = cluster.scrape_rows(cluster.num_rows());
            let mut row = 0usize;
            for (i, id) in cluster.service_ids().into_iter().enumerate() {
                let agg = cluster.counters(id);
                // The batched service-shape scrape agrees with the
                // point accessor...
                prop_assert_eq!(per_service[i], agg);
                // ...and both equal the sum of the replica rows, whether
                // read from the batched row scrape or per replica.
                let mut sum = Counters::default();
                for r in 0..cluster.num_replicas(id) {
                    prop_assert_eq!(per_row[row], cluster.replica_counters(id, r));
                    sum = sum.saturating_add_fields(&per_row[row]);
                    row += 1;
                }
                prop_assert_eq!(sum, agg, "service {} rows do not sum", i);
            }
            prop_assert_eq!(row, cluster.num_rows());
        }
    }

    /// Counters are monotonic over time regardless of faults.
    #[test]
    fn counters_are_monotonic(
        seed in any::<u64>(),
        fault in 0usize..4,
    ) {
        let spec = chain(3, ErrorPolicy::LogAndContinue);
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let kind = match fault {
            0 => None,
            1 => Some(FaultKind::ErrorRate(0.3)),
            2 => Some(FaultKind::PacketLoss(0.2)),
            _ => Some(FaultKind::CpuStress(2.0)),
        };
        let target = cluster.service_id("s1").unwrap();
        cluster.set_fault(target, kind);
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let entry = cluster.service_id("s0").unwrap();
        for i in 0..20u64 {
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_millis(20 * i),
                move |sim, cl: &mut Cluster| {
                    Cluster::submit(sim, cl, entry, "/", |_, _, _| {});
                },
            );
        }
        let mut prev = vec![icfl_micro::Counters::default(); 3];
        for step in 1..=10u64 {
            sim.run_until(SimTime::from_secs(step), &mut cluster);
            for (i, id) in cluster.service_ids().into_iter().enumerate() {
                let now = cluster.counters(id);
                // delta_since debug-asserts monotonicity fieldwise.
                let _ = now.delta_since(&prev[i]);
                prev[i] = now;
            }
        }
    }
}
