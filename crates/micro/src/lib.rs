//! # icfl-micro — a discrete-event microservice cluster simulator
//!
//! The substrate standing in for the paper's Kubernetes testbed (see
//! `DESIGN.md`): services with worker pools and FIFO queues, endpoint
//! handlers expressed as small step programs, a Redis-like KV store,
//! background poll-loop daemons, synchronous call trees with timeouts, and
//! per-service telemetry counters matching the cAdvisor metrics the paper
//! scrapes (`cpu_user_seconds`, `rx/tx packets`, console logs).
//!
//! Fault semantics (service-unavailable, latency, error-rate, packet-loss,
//! CPU-stress) are interpreted here; *campaigns* over faults live in
//! `icfl-faults`.
//!
//! # Examples
//!
//! ```
//! use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps, Status};
//! use icfl_sim::{Sim, SimTime};
//!
//! // A → B chain with one compute step each.
//! let spec = ClusterSpec::new("chain")
//!     .service(ServiceSpec::web("a").endpoint("/", vec![
//!         steps::compute_ms(1),
//!         steps::call("b", "/"),
//!     ]))
//!     .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(2)]));
//!
//! let mut cluster = Cluster::build(&spec, 1)?;
//! let mut sim = Sim::new(1);
//! Cluster::start(&mut sim, &mut cluster);
//!
//! let a = cluster.service_id("a").unwrap();
//! Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, resp| {
//!     assert_eq!(resp.status, Status::Ok);
//! });
//! sim.run_until(SimTime::from_secs(1), &mut cluster);
//!
//! let b = cluster.service_id("b").unwrap();
//! assert_eq!(cluster.counters(b).requests_received, 1);
//! # Ok::<(), icfl_micro::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoscaler;
mod cluster;
mod counters;
mod daemon;
mod error;
mod fault;
mod ids;
mod logs;
mod spec;
mod tracing;

pub use autoscaler::AutoscalerSpec;
pub use cluster::{Cluster, Completion, ExternalCallback, ReqToken, Response};
pub use counters::Counters;
pub use error::BuildError;
pub use fault::FaultKind;
pub use ids::{LogLevel, ReplicaIdx, RequestId, ServiceId, Status, TargetId};
pub use logs::{LogBuffer, LogRecord};
pub use spec::{
    steps, ClusterSpec, DaemonSpec, EndpointSpec, ErrorPolicy, KvAction, ServiceKind, ServiceSpec,
    Step,
};
pub use tracing::{Span, TraceHandle};

#[cfg(test)]
mod engine_tests {
    use super::*;
    use icfl_sim::{DurationDist, Sim, SimDuration, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A → B → C chain, CausalBench pattern-1 style.
    fn chain_spec() -> ClusterSpec {
        ClusterSpec::new("chain")
            .service(
                ServiceSpec::web("a")
                    .endpoint("/", vec![steps::compute_ms(1), steps::call("b", "/")]),
            )
            .service(
                ServiceSpec::web("b")
                    .endpoint("/", vec![steps::compute_ms(1), steps::call("c", "/")]),
            )
            .service(ServiceSpec::web("c").endpoint("/", vec![steps::compute_ms(1)]))
    }

    fn run_one(
        spec: &ClusterSpec,
        entry: &str,
        endpoint: &str,
        horizon_s: u64,
        configure: impl FnOnce(&mut Cluster),
    ) -> (Cluster, Status) {
        let mut cluster = Cluster::build(spec, 11).unwrap();
        configure(&mut cluster);
        let mut sim = Sim::new(11);
        Cluster::start(&mut sim, &mut cluster);
        let id = cluster.service_id(entry).unwrap();
        let status = Rc::new(RefCell::new(None));
        let status2 = Rc::clone(&status);
        Cluster::submit(&mut sim, &mut cluster, id, endpoint, move |_, _, resp| {
            *status2.borrow_mut() = Some(resp.status);
        });
        sim.run_until(SimTime::from_secs(horizon_s), &mut cluster);
        let s = status.borrow().expect("request completed");
        (cluster, s)
    }

    #[test]
    fn healthy_chain_succeeds_and_counts() {
        let (cl, status) = run_one(&chain_spec(), "a", "/", 2, |_| {});
        assert_eq!(status, Status::Ok);
        for name in ["a", "b", "c"] {
            let id = cl.service_id(name).unwrap();
            let c = cl.counters(id);
            assert_eq!(c.requests_received, 1, "{name}");
            assert_eq!(c.responses_ok, 1, "{name}");
            assert_eq!(c.responses_err, 0, "{name}");
            assert_eq!(c.logs_total, 0, "{name}");
            assert!(c.cpu_nanos > 0, "{name}");
        }
        // a and b each sent one downstream call.
        assert_eq!(cl.counters(cl.service_id("a").unwrap()).requests_sent, 1);
        assert_eq!(cl.counters(cl.service_id("b").unwrap()).requests_sent, 1);
        assert_eq!(cl.counters(cl.service_id("c").unwrap()).requests_sent, 0);
    }

    #[test]
    fn unavailable_middle_service_propagates_errors_backward() {
        let (cl, status) = run_one(&chain_spec(), "a", "/", 2, |cl| {
            let b = cl.service_id("b").unwrap();
            cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
        });
        // The user sees an internal error propagated from a.
        assert_eq!(status, Status::InternalError);
        let a = cl.service_id("a").unwrap();
        let b = cl.service_id("b").unwrap();
        let c = cl.service_id("c").unwrap();
        // a logged the failed call (response-path error propagation, §III-A).
        assert_eq!(cl.counters(a).logs_error, 1);
        // b never received the request (connection refused at the "port").
        assert_eq!(cl.counters(b).requests_received, 0);
        assert_eq!(cl.counters(b).logs_total, 0);
        // c sees nothing — the omission effect.
        assert_eq!(cl.counters(c).requests_received, 0);
    }

    #[test]
    fn unavailable_fault_fails_fast() {
        // Connection-refused must resolve in ~1 ms, not the 5 s timeout —
        // this fail-fast behavior drives the Fig. 2 queueing confounder.
        let spec = chain_spec();
        let mut cluster = Cluster::build(&spec, 3).unwrap();
        let b = cluster.service_id("b").unwrap();
        cluster.set_fault(b, Some(FaultKind::ServiceUnavailable));
        let mut sim = Sim::new(3);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        let done_at = Rc::new(RefCell::new(None));
        let done2 = Rc::clone(&done_at);
        Cluster::submit(&mut sim, &mut cluster, a, "/", move |sim, _, _| {
            *done2.borrow_mut() = Some(sim.now());
        });
        sim.run_until(SimTime::from_secs(10), &mut cluster);
        let t = done_at.borrow().expect("completed");
        assert!(
            t < SimTime::ZERO + SimDuration::from_millis(100),
            "took {t}, expected fail-fast"
        );
    }

    #[test]
    fn silent_error_policy_suppresses_logs() {
        let spec = ClusterSpec::new("silent")
            .service(ServiceSpec::web("a").endpoint(
                "/",
                vec![steps::call_with_policy(
                    "b",
                    "/",
                    ErrorPolicy::PropagateSilently,
                )],
            ))
            .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(1)]));
        let (cl, status) = run_one(&spec, "a", "/", 2, |cl| {
            let b = cl.service_id("b").unwrap();
            cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
        });
        assert_eq!(status, Status::InternalError);
        assert_eq!(cl.counters(cl.service_id("a").unwrap()).logs_total, 0);
    }

    #[test]
    fn log_and_continue_swallows_failures() {
        let spec = ClusterSpec::new("resilient")
            .service(ServiceSpec::web("a").endpoint(
                "/",
                vec![
                    steps::call_with_policy("b", "/", ErrorPolicy::LogAndContinue),
                    steps::compute_ms(1),
                ],
            ))
            .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(1)]));
        let (cl, status) = run_one(&spec, "a", "/", 2, |cl| {
            let b = cl.service_id("b").unwrap();
            cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
        });
        assert_eq!(status, Status::Ok);
        assert_eq!(cl.counters(cl.service_id("a").unwrap()).logs_error, 1);
    }

    #[test]
    fn error_rate_fault_fails_fraction_of_requests() {
        let spec = ClusterSpec::new("flaky").service(
            ServiceSpec::web("a")
                .with_concurrency(64)
                .endpoint("/", vec![steps::compute_ms(1)]),
        );
        let mut cluster = Cluster::build(&spec, 5).unwrap();
        let a = cluster.service_id("a").unwrap();
        cluster.set_fault(a, Some(FaultKind::ErrorRate(0.5)));
        let mut sim = Sim::new(5);
        Cluster::start(&mut sim, &mut cluster);
        let errors = Rc::new(RefCell::new(0u32));
        for i in 0..200 {
            let errors2 = Rc::clone(&errors);
            let at = SimTime::ZERO + SimDuration::from_millis(10 * i);
            sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                let errors3 = Rc::clone(&errors2);
                Cluster::submit(sim, cl, a, "/", move |_, _, resp| {
                    if resp.status.is_error() {
                        *errors3.borrow_mut() += 1;
                    }
                });
            });
        }
        sim.run_until(SimTime::from_secs(30), &mut cluster);
        let e = *errors.borrow();
        assert!((60..=140).contains(&e), "errors={e}");
        // Failed handlers logged errors at the faulty service itself.
        assert_eq!(cluster.counters(a).logs_error as u32, e);
    }

    #[test]
    fn extra_latency_fault_delays_completion() {
        let spec = chain_spec();
        let mut cluster = Cluster::build(&spec, 9).unwrap();
        let b = cluster.service_id("b").unwrap();
        cluster.set_fault(
            b,
            Some(FaultKind::ExtraLatency(DurationDist::constant(
                SimDuration::from_millis(500),
            ))),
        );
        let mut sim = Sim::new(9);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        let done_at = Rc::new(RefCell::new(None));
        let done2 = Rc::clone(&done_at);
        Cluster::submit(&mut sim, &mut cluster, a, "/", move |sim, _, resp| {
            assert_eq!(resp.status, Status::Ok);
            *done2.borrow_mut() = Some(sim.now());
        });
        sim.run_until(SimTime::from_secs(5), &mut cluster);
        let t = done_at.borrow().expect("completed");
        assert!(t >= SimTime::ZERO + SimDuration::from_millis(500), "t={t}");
    }

    #[test]
    fn packet_loss_one_surfaces_as_timeout() {
        let spec = chain_spec();
        let mut cluster = Cluster::build(&spec, 13).unwrap();
        let b = cluster.service_id("b").unwrap();
        cluster.set_fault(b, Some(FaultKind::PacketLoss(1.0)));
        let mut sim = Sim::new(13);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        let got = Rc::new(RefCell::new(None));
        let got2 = Rc::clone(&got);
        Cluster::submit(&mut sim, &mut cluster, a, "/", move |_, _, resp| {
            *got2.borrow_mut() = Some(resp.status);
        });
        sim.run_until(SimTime::from_secs(30), &mut cluster);
        assert_eq!(got.borrow().unwrap(), Status::Timeout);
        // a logged the timeout as a failed call.
        assert_eq!(cluster.counters(a).logs_error, 1);
    }

    #[test]
    fn cpu_stress_inflates_cpu_counter() {
        let run = |stress: Option<FaultKind>| {
            let spec = chain_spec();
            let mut cluster = Cluster::build(&spec, 21).unwrap();
            let c_id = cluster.service_id("c").unwrap();
            cluster.set_fault(c_id, stress);
            let mut sim = Sim::new(21);
            Cluster::start(&mut sim, &mut cluster);
            let a = cluster.service_id("a").unwrap();
            Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, _| {});
            sim.run_until(SimTime::from_secs(2), &mut cluster);
            cluster.counters(c_id).cpu_nanos
        };
        let base = run(None);
        let stressed = run(Some(FaultKind::CpuStress(4.0)));
        assert!(stressed > base, "base={base} stressed={stressed}");
    }

    #[test]
    fn queue_sheds_when_full() {
        let spec = ClusterSpec::new("tiny").service(
            ServiceSpec::web("a")
                .with_concurrency(1)
                .with_queue_capacity(1)
                .endpoint("/", vec![steps::compute_ms(100)]),
        );
        let mut cluster = Cluster::build(&spec, 17).unwrap();
        let mut sim = Sim::new(17);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        let shed = Rc::new(RefCell::new(0u32));
        for _ in 0..5 {
            let shed2 = Rc::clone(&shed);
            Cluster::submit(&mut sim, &mut cluster, a, "/", move |_, _, resp| {
                if resp.status == Status::Overloaded {
                    *shed2.borrow_mut() += 1;
                }
            });
        }
        sim.run_until(SimTime::from_secs(2), &mut cluster);
        // 1 executing + 1 queued -> 3 shed.
        assert_eq!(*shed.borrow(), 3);
        assert_eq!(cluster.counters(a).queue_dropped, 3);
        assert_eq!(cluster.queue_len(a), 0);
        assert_eq!(cluster.busy_workers(a), 0);
    }

    #[test]
    fn kv_store_counter_semantics() {
        let spec = ClusterSpec::new("kv")
            .service(ServiceSpec::web("h").endpoint("/", vec![steps::kv_incr("d", "items")]))
            .service(ServiceSpec::kv_store("d"));
        let mut cluster = Cluster::build(&spec, 23).unwrap();
        let mut sim = Sim::new(23);
        Cluster::start(&mut sim, &mut cluster);
        let h = cluster.service_id("h").unwrap();
        for _ in 0..3 {
            Cluster::submit(&mut sim, &mut cluster, h, "/", |_, _, resp| {
                assert_eq!(resp.status, Status::Ok);
            });
        }
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        let d = cluster.service_id("d").unwrap();
        assert_eq!(cluster.kv_value(d, "items"), 3);
        assert_eq!(cluster.counters(d).requests_received, 3);
    }

    #[test]
    fn daemon_drains_counter_and_calls_downstream() {
        let spec = ClusterSpec::new("pattern2")
            .service(ServiceSpec::web("h").endpoint("/", vec![steps::kv_incr("d", "items")]))
            .service(ServiceSpec::kv_store("d"))
            .service(ServiceSpec::web("f"))
            .service(ServiceSpec::web("g").endpoint("/", vec![steps::compute_ms(1)]))
            .daemon(DaemonSpec::poll_loop("f", "d", "items").calling("g", "/"));
        let mut cluster = Cluster::build(&spec, 29).unwrap();
        let mut sim = Sim::new(29);
        Cluster::start(&mut sim, &mut cluster);
        for i in 0..10u64 {
            let at = SimTime::ZERO + SimDuration::from_millis(50 * i);
            sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                let h = cl.service_id("h").unwrap();
                Cluster::submit(sim, cl, h, "/", |_, _, _| {});
            });
        }
        sim.run_until(SimTime::from_secs(10), &mut cluster);
        let d = cluster.service_id("d").unwrap();
        let g = cluster.service_id("g").unwrap();
        // All items consumed and forwarded to g (the indirect H→G path).
        assert_eq!(cluster.kv_value(d, "items"), 0);
        assert_eq!(cluster.counters(g).requests_received, 10);
        assert_eq!(cluster.daemon_items_processed(0), 10);
        assert_eq!(cluster.num_daemons(), 1);
    }

    #[test]
    fn daemon_logs_errors_when_store_unavailable() {
        let spec = ClusterSpec::new("daemon-err")
            .service(ServiceSpec::kv_store("d"))
            .service(ServiceSpec::web("f"))
            .daemon(DaemonSpec::poll_loop("f", "d", "items"));
        let mut cluster = Cluster::build(&spec, 31).unwrap();
        let d = cluster.service_id("d").unwrap();
        cluster.set_fault(d, Some(FaultKind::ServiceUnavailable));
        let mut sim = Sim::new(31);
        Cluster::start(&mut sim, &mut cluster);
        sim.run_until(SimTime::from_secs(10), &mut cluster);
        let f = cluster.service_id("f").unwrap();
        // ~1 error per second of back-off.
        let errs = cluster.counters(f).logs_error;
        assert!((8..=12).contains(&errs), "errs={errs}");
    }

    #[test]
    fn daemon_idle_logs_fire_periodically() {
        let spec = ClusterSpec::new("daemon-idle")
            .service(ServiceSpec::kv_store("d"))
            .service(ServiceSpec::web("f"))
            .daemon(DaemonSpec::poll_loop("f", "d", "items"));
        let mut cluster = Cluster::build(&spec, 37).unwrap();
        let mut sim = Sim::new(37);
        Cluster::start(&mut sim, &mut cluster);
        sim.run_until(SimTime::from_secs(125), &mut cluster);
        let f = cluster.service_id("f").unwrap();
        // Idle log every ~30 s → about 4 in 125 s.
        let infos = cluster.counters(f).logs_info;
        assert!((3..=5).contains(&infos), "infos={infos}");
    }

    #[test]
    fn log_every_n_fires_on_schedule() {
        let spec = ClusterSpec::new("log100").service(
            ServiceSpec::web("e")
                .with_concurrency(32)
                .endpoint("/", vec![steps::log_every_n(100, "I am okay!")]),
        );
        let mut cluster = Cluster::build(&spec, 41).unwrap();
        let mut sim = Sim::new(41);
        Cluster::start(&mut sim, &mut cluster);
        let e = cluster.service_id("e").unwrap();
        for i in 0..250u64 {
            let at = SimTime::ZERO + SimDuration::from_millis(i);
            sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                let e = cl.service_id("e").unwrap();
                Cluster::submit(sim, cl, e, "/", |_, _, _| {});
            });
        }
        sim.run_until(SimTime::from_secs(5), &mut cluster);
        assert_eq!(cluster.counters(e).logs_info, 2); // at 100 and 200
    }

    #[test]
    fn idle_cpu_accrues_without_traffic() {
        let spec = ClusterSpec::new("idle").service(ServiceSpec::web("a"));
        let mut cluster = Cluster::build(&spec, 43).unwrap();
        let mut sim = Sim::new(43);
        Cluster::start(&mut sim, &mut cluster);
        sim.run_until(SimTime::from_secs(60), &mut cluster);
        let a = cluster.service_id("a").unwrap();
        let cpu = cluster.counters(a).cpu_nanos;
        // 60 ticks × 500 µs.
        assert_eq!(cpu, 60 * 500_000);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = |seed: u64| {
            let spec = chain_spec();
            let mut cluster = Cluster::build(&spec, seed).unwrap();
            let mut sim = Sim::new(seed);
            Cluster::start(&mut sim, &mut cluster);
            for i in 0..50u64 {
                let at = SimTime::ZERO + SimDuration::from_millis(20 * i);
                sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                    let a = cl.service_id("a").unwrap();
                    Cluster::submit(sim, cl, a, "/", |_, _, _| {});
                });
            }
            sim.run_until(SimTime::from_secs(5), &mut cluster);
            let c = cluster.service_id("c").unwrap();
            cluster.counters(c)
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn build_rejects_bad_specs() {
        // Duplicate name.
        let dup = ClusterSpec::new("x")
            .service(ServiceSpec::web("a"))
            .service(ServiceSpec::web("a"));
        assert_eq!(
            Cluster::build(&dup, 0).unwrap_err(),
            BuildError::DuplicateService("a".into())
        );
        // Unknown call target.
        let dangling = ClusterSpec::new("x")
            .service(ServiceSpec::web("a").endpoint("/", vec![steps::call("ghost", "/")]));
        assert_eq!(
            Cluster::build(&dangling, 0).unwrap_err(),
            BuildError::UnknownService("ghost".into())
        );
        // Unknown endpoint.
        let bad_ep = ClusterSpec::new("x")
            .service(ServiceSpec::web("a").endpoint("/", vec![steps::call("b", "/missing")]))
            .service(ServiceSpec::web("b").endpoint("/", vec![]));
        assert!(matches!(
            Cluster::build(&bad_ep, 0).unwrap_err(),
            BuildError::UnknownEndpoint { .. }
        ));
        // Call into a KV store.
        let call_kv = ClusterSpec::new("x")
            .service(ServiceSpec::web("a").endpoint("/", vec![steps::call("d", "/")]))
            .service(ServiceSpec::kv_store("d"));
        assert!(matches!(
            Cluster::build(&call_kv, 0).unwrap_err(),
            BuildError::CallTargetNotWeb { .. }
        ));
        // Kv step into a web service.
        let kv_web = ClusterSpec::new("x")
            .service(ServiceSpec::web("a").endpoint("/", vec![steps::kv_incr("b", "k")]))
            .service(ServiceSpec::web("b"));
        assert!(matches!(
            Cluster::build(&kv_web, 0).unwrap_err(),
            BuildError::KvTargetNotStore { .. }
        ));
        // Zero workers.
        let zero = ClusterSpec::new("x").service(ServiceSpec::web("a").with_concurrency(0));
        assert!(matches!(
            Cluster::build(&zero, 0).unwrap_err(),
            BuildError::ZeroConcurrency(_)
        ));
    }

    #[test]
    fn fail_step_returns_internal_error_and_logs() {
        let spec = ClusterSpec::new("buggy")
            .service(ServiceSpec::web("a").endpoint("/", vec![Step::Fail]));
        let (cl, status) = run_one(&spec, "a", "/", 1, |_| {});
        assert_eq!(status, Status::InternalError);
        assert_eq!(cl.counters(cl.service_id("a").unwrap()).logs_error, 1);
    }

    #[test]
    fn log_records_capture_messages() {
        let spec = ClusterSpec::new("msgs").service(ServiceSpec::web("a").endpoint(
            "/",
            vec![steps::log_info("hello world"), steps::compute_ms(1)],
        ));
        let mut cluster = Cluster::build(&spec, 61).unwrap();
        let mut sim = Sim::new(61);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        for _ in 0..3 {
            Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, _| {});
        }
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        let logs = cluster.recent_logs(a, 10);
        assert_eq!(logs.len(), 3);
        assert!(logs.iter().all(|r| r.message == "hello world"));
        assert!(logs.iter().all(|r| r.level == LogLevel::Info));
        assert!(logs.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn error_logs_carry_status_context() {
        let (cl, _) = run_one(&chain_spec(), "a", "/", 2, |cl| {
            let b = cl.service_id("b").unwrap();
            cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
        });
        let a = cl.service_id("a").unwrap();
        let logs = cl.recent_logs(a, 10);
        assert_eq!(logs.len(), 1);
        assert!(
            logs[0].message.contains("503"),
            "error log should name the downstream status: {}",
            logs[0].message
        );
        assert_eq!(logs[0].level, LogLevel::Error);
    }

    #[test]
    fn autoscaler_grows_under_pressure_and_shrinks_when_idle() {
        let spec = ClusterSpec::new("scaled")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(1)
                    .endpoint("/", vec![steps::compute_ms(50)]),
            )
            .autoscaler(AutoscalerSpec {
                service: "a".into(),
                check_interval: SimDuration::from_secs(1),
                scale_up_queue: 4,
                scale_down_queue: 0,
                min_workers: 1,
                max_workers: 8,
                step: 1,
            });
        let mut cluster = Cluster::build(&spec, 71).unwrap();
        let mut sim = Sim::new(71);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        assert_eq!(cluster.current_concurrency(a), 1);
        // Burst: 40 req/s against a 20 req/s single worker → queue builds.
        for i in 0..1200u64 {
            let at = SimTime::ZERO + SimDuration::from_millis(25 * i);
            sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, _| {});
            });
        }
        sim.run_until(SimTime::from_secs(30), &mut cluster);
        let peak = cluster.current_concurrency(a);
        assert!(peak >= 2, "should have scaled up, at {peak}");
        let (ups, _) = cluster.autoscaler_actions(0);
        assert!(ups >= 1);
        // Load ends; the pool shrinks back to the minimum.
        sim.run_until(SimTime::from_secs(120), &mut cluster);
        assert_eq!(cluster.current_concurrency(a), 1);
        let (_, downs) = cluster.autoscaler_actions(0);
        assert!(downs >= 1);
    }

    #[test]
    fn scale_up_admits_queued_requests_immediately() {
        let spec = ClusterSpec::new("manual").service(
            ServiceSpec::web("a")
                .with_concurrency(1)
                .endpoint("/", vec![steps::compute_ms(1000)]),
        );
        let mut cluster = Cluster::build(&spec, 73).unwrap();
        let mut sim = Sim::new(73);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        for _ in 0..4 {
            Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, _| {});
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(100), &mut cluster);
        assert_eq!(cluster.busy_workers(a), 1);
        assert_eq!(cluster.queue_len(a), 3);
        Cluster::set_concurrency(&mut sim, &mut cluster, a, 4);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(200), &mut cluster);
        assert_eq!(cluster.busy_workers(a), 4);
        assert_eq!(cluster.queue_len(a), 0);
    }

    #[test]
    fn unknown_autoscaler_target_rejected() {
        let spec = ClusterSpec::new("bad")
            .service(ServiceSpec::web("a"))
            .autoscaler(AutoscalerSpec::hpa("ghost", 1, 4));
        assert_eq!(
            Cluster::build(&spec, 0).unwrap_err(),
            BuildError::UnknownService("ghost".into())
        );
    }

    #[test]
    fn tracing_records_call_trees() {
        let spec = chain_spec();
        let mut cluster = Cluster::build(&spec, 81).unwrap();
        let traces = cluster.enable_tracing();
        let mut sim = Sim::new(81);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        let root = Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, _| {});
        sim.run_until(SimTime::from_secs(2), &mut cluster);
        // a → b → c: three spans in one tree, children end first.
        assert_eq!(traces.len(), 3);
        let tree = traces.trace_of(root);
        assert_eq!(tree.len(), 3);
        assert!(tree.iter().all(|s| s.status == Status::Ok));
        assert!(tree.windows(2).all(|w| w[0].end <= w[1].end));
        assert!(tree.iter().all(|s| s.duration() > SimDuration::ZERO));
        // Root span has no parent; exactly one span per service.
        assert_eq!(tree.iter().filter(|s| s.parent.is_none()).count(), 1);
        assert_eq!(traces.services_seen().len(), 3);
    }

    #[test]
    fn tracing_cannot_see_omission_faults() {
        // The paper's §I motivation, demonstrated: with a fault on H, the
        // traces show errors on the A→H path but contain NO evidence that
        // G stopped receiving work — the omission is invisible to tracing,
        // while the request-count metrics (and hence Algorithm 1) see it.
        let spec = ClusterSpec::new("omission")
            .service(ServiceSpec::web("h").endpoint("/", vec![steps::kv_incr("d", "items")]))
            .service(ServiceSpec::kv_store("d"))
            .service(ServiceSpec::web("f"))
            .service(ServiceSpec::web("g").endpoint("/", vec![steps::compute_ms(1)]))
            .daemon(DaemonSpec::poll_loop("f", "d", "items").calling("g", "/"));
        let run = |fault_h: bool| {
            let mut cluster = Cluster::build(&spec, 83).unwrap();
            if fault_h {
                let h = cluster.service_id("h").unwrap();
                cluster.set_fault(h, Some(FaultKind::ServiceUnavailable));
            }
            let traces = cluster.enable_tracing();
            let mut sim = Sim::new(83);
            Cluster::start(&mut sim, &mut cluster);
            for i in 0..20u64 {
                let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
                sim.schedule_at(at, |sim, cl: &mut Cluster| {
                    let h = cl.service_id("h").unwrap();
                    Cluster::submit(sim, cl, h, "/", |_, _, _| {});
                });
            }
            sim.run_until(SimTime::from_secs(30), &mut cluster);
            (cluster, traces)
        };
        let (healthy_cl, healthy) = run(false);
        let (faulty_cl, faulty) = run(true);

        let g_healthy = healthy_cl.service_id("g").unwrap();
        let g_faulty = faulty_cl.service_id("g").unwrap();
        // Healthy: G appears in traces (daemon calls are traced requests).
        assert!(healthy.services_seen().contains(&g_healthy));
        // Faulty: every span is an error on the refused H path, and G is
        // simply ABSENT — no span, no error, nothing to alert on.
        assert!(!faulty.error_spans().is_empty());
        assert!(!faulty.services_seen().contains(&g_faulty));
        // Yet the metric view sees the starvation plainly.
        assert!(healthy_cl.counters(g_healthy).requests_received > 0);
        assert_eq!(faulty_cl.counters(g_faulty).requests_received, 0);
    }

    #[test]
    fn enable_tracing_is_idempotent() {
        let spec = chain_spec();
        let mut cluster = Cluster::build(&spec, 85).unwrap();
        let t1 = cluster.enable_tracing();
        let t2 = cluster.enable_tracing();
        let mut sim = Sim::new(85);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, _| {});
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t1.len(), 3);
    }

    #[test]
    fn clearing_fault_restores_service() {
        let spec = chain_spec();
        let mut cluster = Cluster::build(&spec, 47).unwrap();
        let b = cluster.service_id("b").unwrap();
        cluster.set_fault(b, Some(FaultKind::ServiceUnavailable));
        assert!(cluster.fault(b).is_some());
        cluster.set_fault(b, None);
        assert!(cluster.fault(b).is_none());
        let mut sim = Sim::new(47);
        Cluster::start(&mut sim, &mut cluster);
        let a = cluster.service_id("a").unwrap();
        Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, resp| {
            assert_eq!(resp.status, Status::Ok);
        });
        sim.run_until(SimTime::from_secs(1), &mut cluster);
    }
}
