//! Identifier newtypes shared across the cluster model.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Index of a service within a [`Cluster`](crate::Cluster).
///
/// Stable for the lifetime of the cluster; assigned in the order services
/// were added to the [`ClusterSpec`](crate::ClusterSpec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub(crate) usize);

impl ServiceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Constructs a `ServiceId` from a raw index.
    ///
    /// Intended for tests and for deserializing persisted models; callers
    /// must ensure the index is valid for the target cluster.
    pub fn from_index(index: usize) -> Self {
        ServiceId(index)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc#{}", self.0)
    }
}

/// Index of a replica within a service's replica set (load-balancer slot
/// order; replica 0 is the first instance of every service).
pub type ReplicaIdx = u32;

/// A fault-injection / localization target: a whole service, or one replica
/// of it.
///
/// Service-granularity campaigns (the paper's protocol) intervene on
/// [`TargetId::Service`]; instance-granularity campaigns — the CausIL-style
/// framing where a single slow replica behind a load balancer must be told
/// apart from its healthy siblings — intervene on [`TargetId::Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TargetId {
    /// Every replica of the service (whole-service faults; the pre-replica
    /// behavior).
    Service(ServiceId),
    /// One replica of the service.
    Instance(ServiceId, ReplicaIdx),
}

impl TargetId {
    /// The service this target belongs to.
    pub fn service(self) -> ServiceId {
        match self {
            TargetId::Service(s) | TargetId::Instance(s, _) => s,
        }
    }

    /// The replica index, if this target names a single instance.
    pub fn replica(self) -> Option<ReplicaIdx> {
        match self {
            TargetId::Service(_) => None,
            TargetId::Instance(_, r) => Some(r),
        }
    }
}

impl From<ServiceId> for TargetId {
    fn from(s: ServiceId) -> Self {
        TargetId::Service(s)
    }
}

impl fmt::Display for TargetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetId::Service(s) => write!(f, "{s}"),
            TargetId::Instance(s, r) => write!(f, "{s}@r{r}"),
        }
    }
}

/// Identifier of an in-flight request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub(crate) u64);

impl RequestId {
    /// The raw id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Constructs a `RequestId` from a raw id.
    ///
    /// Intended for tests and span-trace exports; ids are only meaningful
    /// relative to the cluster run that issued them.
    pub fn from_raw(id: u64) -> Self {
        RequestId(id)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Severity of a log message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LogLevel {
    /// Informational message (e.g. CausalBench node E's "I am okay!").
    Info,
    /// Error message (e.g. a failed downstream call).
    Error,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogLevel::Info => write!(f, "INFO"),
            LogLevel::Error => write!(f, "ERROR"),
        }
    }
}

/// Response status of a simulated HTTP-ish request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// 200 — success.
    Ok,
    /// 500 — an error propagated from a downstream failure or handler bug.
    InternalError,
    /// 503 (connection refused) — the target service is unavailable.
    ServiceUnavailable,
    /// 503 (queue full) — the target shed the request.
    Overloaded,
    /// 504 — the caller's timeout fired first.
    Timeout,
}

impl Status {
    /// True for any non-2xx outcome.
    pub fn is_error(self) -> bool {
        self != Status::Ok
    }

    /// The HTTP status code this maps to.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::InternalError => 500,
            Status::ServiceUnavailable | Status::Overloaded => 503,
            Status::Timeout => 504,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Ok => write!(f, "200 OK"),
            Status::InternalError => write!(f, "500 Internal Error"),
            Status::ServiceUnavailable => write!(f, "503 Service Unavailable"),
            Status::Overloaded => write!(f, "503 Overloaded"),
            Status::Timeout => write!(f, "504 Timeout"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_error_classification() {
        assert!(!Status::Ok.is_error());
        for s in [
            Status::InternalError,
            Status::ServiceUnavailable,
            Status::Overloaded,
            Status::Timeout,
        ] {
            assert!(s.is_error(), "{s}");
        }
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::InternalError.code(), 500);
        assert_eq!(Status::ServiceUnavailable.code(), 503);
        assert_eq!(Status::Overloaded.code(), 503);
        assert_eq!(Status::Timeout.code(), 504);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ServiceId(3).to_string(), "svc#3");
        assert_eq!(RequestId(9).to_string(), "req#9");
        assert_eq!(LogLevel::Error.to_string(), "ERROR");
        assert!(Status::Timeout.to_string().contains("504"));
    }

    #[test]
    fn service_id_roundtrip() {
        assert_eq!(ServiceId::from_index(5).index(), 5);
    }
}
