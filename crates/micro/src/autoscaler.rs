//! Queue-driven horizontal autoscaling — the paper's canonical example of a
//! *latent* confounder (§IV: "latent confounders that are not measured by
//! our observability tools (for example, autoscaling actions or other SRE
//! actions)").
//!
//! The autoscaler periodically inspects a service's queue and grows or
//! shrinks its worker pool. Because worker count is not among the scraped
//! metrics, its actions shift CPU/latency distributions invisibly — exactly
//! the failure mode conditioning-based causal approaches cannot block.

use crate::cluster::Cluster;
use crate::ids::ServiceId;
use icfl_sim::{Sim, SimDuration};
use serde::{Deserialize, Serialize};

/// Declarative autoscaler configuration for one service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutoscalerSpec {
    /// The scaled service's name.
    pub service: String,
    /// How often the controller inspects the queue.
    pub check_interval: SimDuration,
    /// Queue length at or above which workers are added.
    pub scale_up_queue: usize,
    /// Queue length at or below which workers are removed (when idle
    /// capacity exists).
    pub scale_down_queue: usize,
    /// Lower bound on workers.
    pub min_workers: usize,
    /// Upper bound on workers.
    pub max_workers: usize,
    /// Workers added/removed per decision.
    pub step: usize,
}

impl AutoscalerSpec {
    /// A Kubernetes-HPA-flavored default: check every 15 s, scale between
    /// `min` and `max` workers one worker at a time, reacting to a queue of
    /// 8 (up) / 0 (down).
    pub fn hpa(service: impl Into<String>, min: usize, max: usize) -> AutoscalerSpec {
        AutoscalerSpec {
            service: service.into(),
            check_interval: SimDuration::from_secs(15),
            scale_up_queue: 8,
            scale_down_queue: 0,
            min_workers: min,
            max_workers: max,
            step: 1,
        }
    }
}

/// Runtime state of one armed autoscaler.
#[derive(Debug, Clone)]
pub(crate) struct AutoscalerRuntime {
    pub(crate) service: ServiceId,
    pub(crate) spec: AutoscalerSpec,
    pub(crate) scale_ups: u64,
    pub(crate) scale_downs: u64,
}

impl AutoscalerRuntime {
    /// One control decision: compare the queue against the thresholds and
    /// resize within bounds, then re-arm.
    fn tick(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
        let (service, interval) = {
            let a = &cl.autoscalers[idx];
            (a.service, a.spec.check_interval)
        };
        let queue = cl.queue_len(service);
        let busy = cl.busy_workers(service);
        let current = cl.current_concurrency(service);
        let spec = cl.autoscalers[idx].spec.clone();
        if queue >= spec.scale_up_queue && current < spec.max_workers {
            let next = (current + spec.step).min(spec.max_workers);
            cl.autoscalers[idx].scale_ups += 1;
            Cluster::set_concurrency(sim, cl, service, next);
        } else if queue <= spec.scale_down_queue && busy < current && current > spec.min_workers {
            let next = current.saturating_sub(spec.step).max(spec.min_workers);
            cl.autoscalers[idx].scale_downs += 1;
            Cluster::set_concurrency(sim, cl, service, next);
        }
        sim.schedule_after(interval, move |sim, cl: &mut Cluster| {
            AutoscalerRuntime::tick(sim, cl, idx);
        });
    }

    /// Schedules the first control decision one interval in.
    pub(crate) fn arm(sim: &mut Sim<Cluster>, cl: &Cluster, idx: usize) {
        let interval = cl.autoscalers[idx].spec.check_interval;
        sim.schedule_after(interval, move |sim, cl: &mut Cluster| {
            AutoscalerRuntime::tick(sim, cl, idx);
        });
    }
}
