//! Distributed request tracing (Dapper/OpenTelemetry-style spans).
//!
//! The paper's introduction motivates interventional learning by the limits
//! of tracing: "tracing itself does not encompass all fault types. For
//! example, omission faults … require costly manual inspection". This
//! module provides exactly that substrate so the limitation can be
//! *demonstrated*: spans record every request that happened — and therefore
//! say nothing about the requests that silently stopped happening (see
//! `tracing_cannot_see_omission_faults` in the crate tests).

use crate::ids::{RequestId, ServiceId, Status};
use icfl_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// One span: a request's occupancy of one service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The request this span belongs to.
    pub request: RequestId,
    /// The parent request, if this was a downstream call (`None` for
    /// user/daemon entry points).
    pub parent: Option<RequestId>,
    /// The service that handled (or refused) the request.
    pub service: ServiceId,
    /// When the request was issued by its caller.
    pub start: SimTime,
    /// When the response was delivered back.
    pub end: SimTime,
    /// Final status.
    pub status: Status,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> icfl_sim::SimDuration {
        self.end.saturating_since(self.start)
    }
}

#[derive(Debug, Default)]
pub(crate) struct TraceStore {
    pub(crate) spans: Vec<Span>,
}

/// Handle to the span stream of a cluster with tracing enabled.
///
/// Cloning shares the store.
#[derive(Clone, Debug, Default)]
pub struct TraceHandle {
    pub(crate) store: Rc<RefCell<TraceStore>>,
}

impl TraceHandle {
    /// All spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<Span> {
        self.store.borrow().spans.clone()
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.store.borrow().spans.len()
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.store.borrow().spans.is_empty()
    }

    /// Spans belonging to the call tree rooted at `root` (the root span
    /// plus transitive children), in completion order.
    pub fn trace_of(&self, root: RequestId) -> Vec<Span> {
        let spans = self.store.borrow();
        let mut members = vec![root];
        // Spans complete children-first, so scan until fixpoint.
        let mut out: Vec<Span> = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for s in &spans.spans {
                let in_tree =
                    members.contains(&s.request) || s.parent.is_some_and(|p| members.contains(&p));
                if in_tree && !out.iter().any(|o| o.request == s.request) {
                    if !members.contains(&s.request) {
                        members.push(s.request);
                    }
                    out.push(s.clone());
                    changed = true;
                }
            }
        }
        out.sort_by_key(|s| (s.end, s.request));
        out
    }

    /// The services that appear in any span — what an APM's service map
    /// would show for the traced period.
    pub fn services_seen(&self) -> Vec<ServiceId> {
        let mut ids: Vec<ServiceId> = self
            .store
            .borrow()
            .spans
            .iter()
            .map(|s| s.service)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Spans with error status.
    pub fn error_spans(&self) -> Vec<Span> {
        self.store
            .borrow()
            .spans
            .iter()
            .filter(|s| s.status.is_error())
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(req: u64, parent: Option<u64>, svc: usize, end_s: u64, status: Status) -> Span {
        Span {
            request: crate::ids::RequestId(req),
            parent: parent.map(crate::ids::RequestId),
            service: ServiceId::from_index(svc),
            start: SimTime::from_secs(end_s.saturating_sub(1)),
            end: SimTime::from_secs(end_s),
            status,
        }
    }

    #[test]
    fn trace_of_collects_the_call_tree() {
        let h = TraceHandle::default();
        {
            let mut st = h.store.borrow_mut();
            // Tree: 1 -> 2 -> 3, plus unrelated 9.
            st.spans.push(span(3, Some(2), 2, 1, Status::Ok));
            st.spans.push(span(2, Some(1), 1, 2, Status::Ok));
            st.spans.push(span(1, None, 0, 3, Status::Ok));
            st.spans.push(span(9, None, 0, 4, Status::Ok));
        }
        let t = h.trace_of(crate::ids::RequestId(1));
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|s| s.request.0 != 9));
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
    }

    #[test]
    fn services_seen_dedupes() {
        let h = TraceHandle::default();
        {
            let mut st = h.store.borrow_mut();
            st.spans.push(span(1, None, 0, 1, Status::Ok));
            st.spans.push(span(2, None, 0, 2, Status::Ok));
            st.spans.push(span(3, None, 2, 3, Status::InternalError));
        }
        assert_eq!(h.services_seen().len(), 2);
        assert_eq!(h.error_spans().len(), 1);
    }

    #[test]
    fn span_duration() {
        let s = span(1, None, 0, 5, Status::Ok);
        assert_eq!(s.duration(), icfl_sim::SimDuration::from_secs(1));
    }
}
