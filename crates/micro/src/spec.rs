//! Declarative cluster specification — the builder DSL used by `icfl-apps`
//! to describe CausalBench, Robot-shop and the Fig. 1/Fig. 2 topologies.
//!
//! A [`ClusterSpec`] lists services by name; endpoint handlers are small
//! step programs ([`Step`]). [`ClusterSpec::build`] validates all
//! cross-references and produces a runnable [`Cluster`](crate::Cluster).

use crate::ids::LogLevel;
use icfl_sim::{DurationDist, SimDuration};
use serde::{Deserialize, Serialize};

/// What kind of process a service models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ServiceKind {
    /// A request/response web service executing step programs.
    #[default]
    Web,
    /// A key-value store (Redis/queue-like). Exposes built-in `incr`,
    /// `fetch_sub`, `get` operations instead of user-defined endpoints.
    KvStore,
}

/// How a handler reacts when a downstream call fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ErrorPolicy {
    /// Write an error log and return an error to the caller (an unhandled
    /// exception bubbling up — the common case, and what makes errors
    /// propagate along the response path as in §III-A of the paper).
    #[default]
    LogAndPropagate,
    /// Return an error without logging — models the §III-B scenario of a
    /// developer who does not write error logs.
    PropagateSilently,
    /// Write an error log but swallow the failure and keep executing.
    LogAndContinue,
    /// Swallow the failure silently.
    Ignore,
}

impl ErrorPolicy {
    /// Whether a failure under this policy emits an error log.
    pub fn logs(self) -> bool {
        matches!(
            self,
            ErrorPolicy::LogAndPropagate | ErrorPolicy::LogAndContinue
        )
    }

    /// Whether a failure under this policy aborts the handler.
    pub fn propagates(self) -> bool {
        matches!(
            self,
            ErrorPolicy::LogAndPropagate | ErrorPolicy::PropagateSilently
        )
    }
}

/// A key-value operation against a [`ServiceKind::KvStore`] service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvAction {
    /// Increment `key` by one; responds with the new value.
    Incr {
        /// Counter name.
        key: String,
    },
    /// If `key > 0`, decrement it; responds with the value *before* the
    /// decrement (0 means "nothing to take").
    FetchSub {
        /// Counter name.
        key: String,
    },
    /// Read `key` (0 if absent).
    Get {
        /// Counter name.
        key: String,
    },
}

impl KvAction {
    /// The counter this action touches.
    pub fn key(&self) -> &str {
        match self {
            KvAction::Incr { key } | KvAction::FetchSub { key } | KvAction::Get { key } => key,
        }
    }
}

/// One step of an endpoint handler program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Occupy the worker for a sampled duration, accruing CPU time
    /// (CausalBench services "execute small compute tasks").
    Compute {
        /// Distribution of the busy time.
        time: DurationDist,
    },
    /// Synchronously call another service's endpoint.
    Call {
        /// Target service name.
        service: String,
        /// Target endpoint name.
        endpoint: String,
        /// Reaction to a failed call.
        on_error: ErrorPolicy,
    },
    /// Synchronously perform a KV operation against a store service.
    Kv {
        /// Target store name (must be a [`ServiceKind::KvStore`]).
        store: String,
        /// The operation.
        action: KvAction,
        /// Reaction to a failed operation.
        on_error: ErrorPolicy,
    },
    /// Write a log message on every invocation.
    Log {
        /// Severity.
        level: LogLevel,
        /// Message template.
        message: String,
    },
    /// Write a log message on every `n`-th invocation of this step
    /// (CausalBench node E logs "I am okay!" every hundredth request).
    LogEveryN {
        /// Period in invocations.
        n: u64,
        /// Severity.
        level: LogLevel,
        /// Message template.
        message: String,
    },
    /// Unconditionally fail with an internal error (for tests and for
    /// modeling buggy handlers).
    Fail,
}

/// An endpoint of a web service: a named handler program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointSpec {
    /// Endpoint name (e.g. `"path_bce"` or `"/"`).
    pub name: String,
    /// The handler program, executed in order.
    pub steps: Vec<Step>,
}

impl EndpointSpec {
    /// Creates an endpoint with the given handler program.
    pub fn new(name: impl Into<String>, steps: Vec<Step>) -> Self {
        EndpointSpec {
            name: name.into(),
            steps,
        }
    }
}

/// Declarative description of one service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Unique service name.
    pub name: String,
    /// Web service or KV store.
    pub kind: ServiceKind,
    /// Number of concurrent worker slots (container threads).
    pub concurrency: usize,
    /// Pending-request queue capacity; requests beyond it are shed with
    /// [`Status::Overloaded`](crate::Status::Overloaded).
    pub queue_capacity: usize,
    /// Endpoints (web services only).
    pub endpoints: Vec<EndpointSpec>,
    /// Service time of built-in KV operations (KV stores only).
    pub kv_op_time: DurationDist,
    /// Idle (background) CPU accrued per wall-clock second even with no
    /// traffic — the container runtime's baseline.
    pub idle_cpu_per_sec: SimDuration,
    /// Number of replicas behind this service's load balancer. Each replica
    /// gets its own telemetry counter row and can be faulted individually
    /// via [`TargetId::Instance`](crate::TargetId::Instance); requests are
    /// routed round-robin. `0` (the serde default, tolerated for specs
    /// persisted before replicas existed) is treated as `1` at build time.
    #[serde(default)]
    pub replicas: usize,
}

impl ServiceSpec {
    /// A web service with sensible defaults (4 workers, queue of 512).
    pub fn web(name: impl Into<String>) -> Self {
        ServiceSpec {
            name: name.into(),
            kind: ServiceKind::Web,
            concurrency: 4,
            queue_capacity: 512,
            endpoints: Vec::new(),
            kv_op_time: DurationDist::constant(SimDuration::from_micros(200)),
            idle_cpu_per_sec: SimDuration::from_micros(500),
            replicas: 1,
        }
    }

    /// A KV store (single-threaded, fast ops) — models Redis/RabbitMQ.
    pub fn kv_store(name: impl Into<String>) -> Self {
        ServiceSpec {
            name: name.into(),
            kind: ServiceKind::KvStore,
            concurrency: 1,
            queue_capacity: 4096,
            endpoints: Vec::new(),
            kv_op_time: DurationDist::constant(SimDuration::from_micros(200)),
            idle_cpu_per_sec: SimDuration::from_micros(500),
            replicas: 1,
        }
    }

    /// Adds an endpoint, returning `self` for chaining.
    pub fn endpoint(mut self, name: impl Into<String>, steps: Vec<Step>) -> Self {
        self.endpoints.push(EndpointSpec::new(name, steps));
        self
    }

    /// Overrides the worker count.
    pub fn with_concurrency(mut self, workers: usize) -> Self {
        self.concurrency = workers;
        self
    }

    /// Overrides the queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Sets the replica count (see [`ServiceSpec::replicas`]). Replicas
    /// share the service's worker pool and queue (one Deployment behind one
    /// load balancer) but keep individual counter rows and can be faulted
    /// one at a time.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }
}

/// Specification of a background poll-loop daemon (CausalBench node F, the
/// Robot-shop dispatch worker): an infinite loop that polls a KV counter,
/// processes items one at a time, and optionally calls a downstream service
/// per item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonSpec {
    /// The service hosting the loop (its CPU/logs are attributed here).
    pub host: String,
    /// The KV store holding the work counter.
    pub store: String,
    /// The counter key to poll (`items` for CausalBench F).
    pub counter: String,
    /// Sleep between polls when the counter is empty.
    pub poll_interval: DurationDist,
    /// Compute time per processed item.
    pub work_per_item: DurationDist,
    /// Optional `(service, endpoint)` called once per processed item
    /// (F calls G's `/`).
    pub call_per_item: Option<(String, String)>,
    /// Write an info log after every this many processed items (paper: 100).
    pub log_every_items: u64,
    /// Write an info log after this much continuous idleness (paper: 30 s).
    pub idle_log_after: SimDuration,
}

impl DaemonSpec {
    /// A daemon with the paper's CausalBench-F defaults.
    pub fn poll_loop(
        host: impl Into<String>,
        store: impl Into<String>,
        counter: impl Into<String>,
    ) -> Self {
        DaemonSpec {
            host: host.into(),
            store: store.into(),
            counter: counter.into(),
            poll_interval: DurationDist::constant(SimDuration::from_millis(100)),
            work_per_item: DurationDist::constant(SimDuration::from_millis(2)),
            call_per_item: None,
            log_every_items: 100,
            idle_log_after: SimDuration::from_secs(30),
        }
    }

    /// Sets the per-item downstream call.
    pub fn calling(mut self, service: impl Into<String>, endpoint: impl Into<String>) -> Self {
        self.call_per_item = Some((service.into(), endpoint.into()));
        self
    }
}

/// Top-level cluster specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable application name ("causalbench", "robot-shop", ...).
    pub name: String,
    /// Services in id order.
    pub services: Vec<ServiceSpec>,
    /// Background daemons.
    pub daemons: Vec<DaemonSpec>,
    /// Queue-driven autoscalers (latent confounders; see
    /// [`AutoscalerSpec`](crate::AutoscalerSpec)).
    #[serde(default)]
    pub autoscalers: Vec<crate::AutoscalerSpec>,
    /// One-way network latency between any two services.
    pub net_latency: DurationDist,
    /// Latency of a refused connection (fail-fast path for unavailable
    /// services — what makes queues drain *faster* under the paper's
    /// service-unavailable fault, producing the Fig. 2 confounder).
    pub conn_refused_latency: DurationDist,
    /// Caller-side timeout for downstream calls.
    pub call_timeout: SimDuration,
}

impl ClusterSpec {
    /// Creates an empty spec with datacenter-ish defaults
    /// (0.5 ms network hop, 1 ms connection-refused, 5 s call timeout).
    pub fn new(name: impl Into<String>) -> Self {
        ClusterSpec {
            name: name.into(),
            services: Vec::new(),
            daemons: Vec::new(),
            autoscalers: Vec::new(),
            net_latency: DurationDist::constant(SimDuration::from_micros(500)),
            conn_refused_latency: DurationDist::constant(SimDuration::from_millis(1)),
            call_timeout: SimDuration::from_secs(5),
        }
    }

    /// Adds a service, returning `self` for chaining.
    pub fn service(mut self, spec: ServiceSpec) -> Self {
        self.services.push(spec);
        self
    }

    /// Adds a daemon, returning `self` for chaining.
    pub fn daemon(mut self, spec: DaemonSpec) -> Self {
        self.daemons.push(spec);
        self
    }

    /// Adds an autoscaler, returning `self` for chaining.
    pub fn autoscaler(mut self, spec: crate::AutoscalerSpec) -> Self {
        self.autoscalers.push(spec);
        self
    }

    /// Names of all services, in id order.
    pub fn service_names(&self) -> Vec<&str> {
        self.services.iter().map(|s| s.name.as_str()).collect()
    }
}

/// Shorthand constructors for [`Step`] programs.
pub mod steps {
    use super::*;

    /// A [`Step::Compute`] with constant duration.
    pub fn compute_ms(ms: u64) -> Step {
        Step::Compute {
            time: DurationDist::constant(SimDuration::from_millis(ms)),
        }
    }

    /// A [`Step::Compute`] with the given distribution.
    pub fn compute(time: DurationDist) -> Step {
        Step::Compute { time }
    }

    /// A [`Step::Call`] with the default (log-and-propagate) error policy.
    pub fn call(service: &str, endpoint: &str) -> Step {
        Step::Call {
            service: service.to_owned(),
            endpoint: endpoint.to_owned(),
            on_error: ErrorPolicy::LogAndPropagate,
        }
    }

    /// A [`Step::Call`] with an explicit error policy.
    pub fn call_with_policy(service: &str, endpoint: &str, on_error: ErrorPolicy) -> Step {
        Step::Call {
            service: service.to_owned(),
            endpoint: endpoint.to_owned(),
            on_error,
        }
    }

    /// A KV increment with the default error policy.
    pub fn kv_incr(store: &str, key: &str) -> Step {
        Step::Kv {
            store: store.to_owned(),
            action: KvAction::Incr {
                key: key.to_owned(),
            },
            on_error: ErrorPolicy::LogAndPropagate,
        }
    }

    /// An info log every `n` invocations.
    pub fn log_every_n(n: u64, message: &str) -> Step {
        Step::LogEveryN {
            n,
            level: LogLevel::Info,
            message: message.to_owned(),
        }
    }

    /// An unconditional info log.
    pub fn log_info(message: &str) -> Step {
        Step::Log {
            level: LogLevel::Info,
            message: message.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_policy_semantics() {
        assert!(ErrorPolicy::LogAndPropagate.logs());
        assert!(ErrorPolicy::LogAndPropagate.propagates());
        assert!(ErrorPolicy::LogAndContinue.logs());
        assert!(!ErrorPolicy::LogAndContinue.propagates());
        assert!(!ErrorPolicy::PropagateSilently.logs());
        assert!(ErrorPolicy::PropagateSilently.propagates());
        assert!(!ErrorPolicy::Ignore.logs());
        assert!(!ErrorPolicy::Ignore.propagates());
    }

    #[test]
    fn kv_action_key() {
        assert_eq!(
            KvAction::Incr {
                key: "items".into()
            }
            .key(),
            "items"
        );
        assert_eq!(KvAction::FetchSub { key: "x".into() }.key(), "x");
        assert_eq!(KvAction::Get { key: "y".into() }.key(), "y");
    }

    #[test]
    fn builder_chains() {
        let spec = ClusterSpec::new("demo")
            .service(
                ServiceSpec::web("a")
                    .endpoint("/", vec![steps::compute_ms(1), steps::call("b", "/")])
                    .with_concurrency(8)
                    .with_queue_capacity(64),
            )
            .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(1)]))
            .service(ServiceSpec::kv_store("d"))
            .daemon(DaemonSpec::poll_loop("f", "d", "items").calling("g", "/"));
        assert_eq!(spec.service_names(), vec!["a", "b", "d"]);
        assert_eq!(spec.services[0].concurrency, 8);
        assert_eq!(spec.services[0].queue_capacity, 64);
        assert_eq!(spec.daemons.len(), 1);
        assert_eq!(
            spec.daemons[0].call_per_item,
            Some(("g".to_owned(), "/".to_owned()))
        );
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = ClusterSpec::new("demo")
            .service(ServiceSpec::web("a").endpoint("/", vec![steps::log_info("hello")]));
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn defaults_are_sane() {
        let web = ServiceSpec::web("w");
        assert_eq!(web.kind, ServiceKind::Web);
        assert_eq!(web.concurrency, 4);
        let kv = ServiceSpec::kv_store("k");
        assert_eq!(kv.kind, ServiceKind::KvStore);
        assert_eq!(kv.concurrency, 1);
    }
}
