//! Per-service monotonic telemetry counters — the cluster-side source of
//! every metric in the paper (`container_cpu_user_seconds_total`,
//! `container_network_receive/transmit_packets_total`, message logs).

use icfl_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Monotonic counters maintained by the cluster for one service.
///
/// The telemetry scraper (`icfl-telemetry`) snapshots these periodically and
/// differentiates them into rates; the counters themselves only ever grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Cumulative CPU busy time, in nanoseconds
    /// (`container_cpu_user_seconds_total`).
    pub cpu_nanos: u64,
    /// Packets received (`container_network_receive_packets_total`).
    pub rx_packets: u64,
    /// Packets transmitted (`container_network_transmit_packets_total`).
    pub tx_packets: u64,
    /// Total console log messages (info + error) — the paper's `msg rate`
    /// source.
    pub logs_total: u64,
    /// Error-level log messages only (what \[23\] restricts itself to).
    pub logs_error: u64,
    /// Info-level log messages only.
    pub logs_info: u64,
    /// Requests delivered to this service (accepted or shed).
    pub requests_received: u64,
    /// Requests this service issued downstream.
    pub requests_sent: u64,
    /// Successful responses returned.
    pub responses_ok: u64,
    /// Error responses returned (includes shed and refused).
    pub responses_err: u64,
    /// Requests shed because the queue was full.
    pub queue_dropped: u64,
}

impl Counters {
    /// Adds CPU busy time.
    pub fn add_cpu(&mut self, d: SimDuration) {
        self.cpu_nanos = self.cpu_nanos.saturating_add(d.as_nanos());
    }

    /// Records a log message of the given level.
    pub fn add_log(&mut self, level: crate::LogLevel) {
        self.logs_total += 1;
        match level {
            crate::LogLevel::Error => self.logs_error += 1,
            crate::LogLevel::Info => self.logs_info += 1,
        }
    }

    /// Cumulative CPU busy time in (fractional) seconds.
    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_nanos as f64 / 1e9
    }

    /// True when any field of `self` is strictly below the same field of
    /// `other`. For monotonic counters this signals a counter reset (pod
    /// restart): a live service's cumulative counters never go backwards,
    /// so a decrease means the source was re-based.
    pub fn any_field_less(&self, other: &Counters) -> bool {
        self.cpu_nanos < other.cpu_nanos
            || self.rx_packets < other.rx_packets
            || self.tx_packets < other.tx_packets
            || self.logs_total < other.logs_total
            || self.logs_error < other.logs_error
            || self.logs_info < other.logs_info
            || self.requests_received < other.requests_received
            || self.requests_sent < other.requests_sent
            || self.responses_ok < other.responses_ok
            || self.responses_err < other.responses_err
            || self.queue_dropped < other.queue_dropped
    }

    /// Field-by-field saturating sum `self + other` (re-baselining a
    /// post-restart counter stream onto its pre-restart offsets).
    pub fn saturating_add_fields(&self, other: &Counters) -> Counters {
        Counters {
            cpu_nanos: self.cpu_nanos.saturating_add(other.cpu_nanos),
            rx_packets: self.rx_packets.saturating_add(other.rx_packets),
            tx_packets: self.tx_packets.saturating_add(other.tx_packets),
            logs_total: self.logs_total.saturating_add(other.logs_total),
            logs_error: self.logs_error.saturating_add(other.logs_error),
            logs_info: self.logs_info.saturating_add(other.logs_info),
            requests_received: self
                .requests_received
                .saturating_add(other.requests_received),
            requests_sent: self.requests_sent.saturating_add(other.requests_sent),
            responses_ok: self.responses_ok.saturating_add(other.responses_ok),
            responses_err: self.responses_err.saturating_add(other.responses_err),
            queue_dropped: self.queue_dropped.saturating_add(other.queue_dropped),
        }
    }

    /// Field-by-field saturating difference `self − other` (simulating a
    /// pod restart: the scrape reports counters relative to a restart
    /// baseline, clamping at zero instead of wrapping).
    pub fn saturating_sub_fields(&self, other: &Counters) -> Counters {
        Counters {
            cpu_nanos: self.cpu_nanos.saturating_sub(other.cpu_nanos),
            rx_packets: self.rx_packets.saturating_sub(other.rx_packets),
            tx_packets: self.tx_packets.saturating_sub(other.tx_packets),
            logs_total: self.logs_total.saturating_sub(other.logs_total),
            logs_error: self.logs_error.saturating_sub(other.logs_error),
            logs_info: self.logs_info.saturating_sub(other.logs_info),
            requests_received: self
                .requests_received
                .saturating_sub(other.requests_received),
            requests_sent: self.requests_sent.saturating_sub(other.requests_sent),
            responses_ok: self.responses_ok.saturating_sub(other.responses_ok),
            responses_err: self.responses_err.saturating_sub(other.responses_err),
            queue_dropped: self.queue_dropped.saturating_sub(other.queue_dropped),
        }
    }

    /// Field-by-field difference `self − earlier` (both monotonic).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not component-wise ≤ `self`.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        debug_assert!(self.cpu_nanos >= earlier.cpu_nanos);
        Counters {
            cpu_nanos: self.cpu_nanos - earlier.cpu_nanos,
            rx_packets: self.rx_packets - earlier.rx_packets,
            tx_packets: self.tx_packets - earlier.tx_packets,
            logs_total: self.logs_total - earlier.logs_total,
            logs_error: self.logs_error - earlier.logs_error,
            logs_info: self.logs_info - earlier.logs_info,
            requests_received: self.requests_received - earlier.requests_received,
            requests_sent: self.requests_sent - earlier.requests_sent,
            responses_ok: self.responses_ok - earlier.responses_ok,
            responses_err: self.responses_err - earlier.responses_err,
            queue_dropped: self.queue_dropped - earlier.queue_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogLevel;

    #[test]
    fn log_accounting_splits_by_level() {
        let mut c = Counters::default();
        c.add_log(LogLevel::Info);
        c.add_log(LogLevel::Error);
        c.add_log(LogLevel::Error);
        assert_eq!(c.logs_total, 3);
        assert_eq!(c.logs_info, 1);
        assert_eq!(c.logs_error, 2);
    }

    #[test]
    fn cpu_accumulates_and_converts() {
        let mut c = Counters::default();
        c.add_cpu(SimDuration::from_millis(1500));
        c.add_cpu(SimDuration::from_millis(500));
        assert_eq!(c.cpu_nanos, 2_000_000_000);
        assert!((c.cpu_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = Counters {
            rx_packets: 10,
            logs_total: 3,
            ..Counters::default()
        };
        let mut late = early;
        late.rx_packets = 25;
        late.logs_total = 4;
        late.requests_received = 7;
        let d = late.delta_since(&early);
        assert_eq!(d.rx_packets, 15);
        assert_eq!(d.logs_total, 1);
        assert_eq!(d.requests_received, 7);
        assert_eq!(d.tx_packets, 0);
    }
}
