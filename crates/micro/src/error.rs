//! Validation errors raised when building a [`Cluster`](crate::Cluster)
//! from a [`ClusterSpec`](crate::ClusterSpec).

use core::fmt;

/// A cross-reference or configuration error in a cluster spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two services share a name.
    DuplicateService(String),
    /// A step or daemon references a service that does not exist.
    UnknownService(String),
    /// A call references an endpoint that does not exist on its target.
    UnknownEndpoint {
        /// Target service.
        service: String,
        /// Missing endpoint.
        endpoint: String,
    },
    /// A `Call` step targets a KV store.
    CallTargetNotWeb {
        /// Calling service.
        from: String,
        /// Target service.
        to: String,
    },
    /// A `Kv` step targets a web service.
    KvTargetNotStore {
        /// Calling service.
        from: String,
        /// Target service.
        to: String,
    },
    /// A KV store declared user endpoints.
    KvStoreWithEndpoints(String),
    /// A service was configured with zero workers.
    ZeroConcurrency(String),
    /// A `LogEveryN` step with `n == 0`.
    ZeroLogPeriod(String),
    /// A daemon's host must be a web service.
    DaemonHostNotWeb(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateService(n) => write!(f, "duplicate service name: {n}"),
            BuildError::UnknownService(n) => write!(f, "unknown service: {n}"),
            BuildError::UnknownEndpoint { service, endpoint } => {
                write!(f, "service {service} has no endpoint {endpoint}")
            }
            BuildError::CallTargetNotWeb { from, to } => {
                write!(f, "{from} calls {to}, which is not a web service")
            }
            BuildError::KvTargetNotStore { from, to } => {
                write!(f, "{from} uses {to} as a KV store, but it is not one")
            }
            BuildError::KvStoreWithEndpoints(n) => {
                write!(f, "KV store {n} must not declare endpoints")
            }
            BuildError::ZeroConcurrency(n) => write!(f, "service {n} has zero workers"),
            BuildError::ZeroLogPeriod(n) => write!(f, "service {n} has a LogEveryN with n=0"),
            BuildError::DaemonHostNotWeb(n) => {
                write!(f, "daemon host {n} is not a web service")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(BuildError::DuplicateService("a".into())
            .to_string()
            .contains('a'));
        assert!(BuildError::UnknownService("ghost".into())
            .to_string()
            .contains("ghost"));
        let e = BuildError::UnknownEndpoint {
            service: "b".into(),
            endpoint: "/x".into(),
        };
        assert!(e.to_string().contains("/x"));
    }

    #[test]
    fn usable_as_error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(BuildError::ZeroConcurrency("a".into()));
        assert!(e.to_string().contains("zero"));
    }
}
