//! Console log records — the message stream `kubectl logs` would show.
//!
//! Counters in [`Counters`](crate::Counters) carry the *rates* the learning
//! algorithms consume; this module keeps the bounded ring of recent raw
//! messages per service so operators (and examples/tests) can inspect what
//! was actually written, as the paper's platform does when collecting
//! container logs.

use crate::ids::LogLevel;
use icfl_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One console log line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// When the line was written.
    pub time: SimTime,
    /// Severity.
    pub level: LogLevel,
    /// Message text (template instances like `"I am okay!"`).
    pub message: String,
}

/// A bounded ring buffer of recent log records.
#[derive(Debug, Clone, Default)]
pub struct LogBuffer {
    records: VecDeque<LogRecord>,
    capacity: usize,
    dropped: u64,
}

impl LogBuffer {
    /// Default retention per service.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a buffer retaining up to `capacity` records.
    pub fn with_capacity(capacity: usize) -> LogBuffer {
        LogBuffer {
            records: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn push(&mut self, record: LogRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LogRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or rejected) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<LogRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.iter().skip(skip).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, msg: &str) -> LogRecord {
        LogRecord {
            time: SimTime::from_secs(t),
            level: LogLevel::Info,
            message: msg.to_owned(),
        }
    }

    #[test]
    fn push_and_tail() {
        let mut b = LogBuffer::with_capacity(10);
        for i in 0..5 {
            b.push(rec(i, &format!("m{i}")));
        }
        assert_eq!(b.len(), 5);
        let tail = b.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].message, "m3");
        assert_eq!(tail[1].message, "m4");
        assert_eq!(b.dropped(), 0);
        assert!(!b.is_empty());
    }

    #[test]
    fn eviction_keeps_newest() {
        let mut b = LogBuffer::with_capacity(3);
        for i in 0..7 {
            b.push(rec(i, &format!("m{i}")));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 4);
        let msgs: Vec<&str> = b.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m4", "m5", "m6"]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut b = LogBuffer::with_capacity(0);
        b.push(rec(0, "x"));
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 1);
    }

    #[test]
    fn tail_larger_than_len_returns_all() {
        let mut b = LogBuffer::with_capacity(10);
        b.push(rec(1, "only"));
        assert_eq!(b.tail(100).len(), 1);
    }
}
