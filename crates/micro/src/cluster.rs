//! The cluster runtime: request lifecycle, worker pools, queues, fault
//! semantics, and telemetry counter accounting.
//!
//! The engine models synchronous HTTP-style request/response trees:
//! a worker executing a handler *blocks* while a downstream call is in
//! flight. Combined with closed-loop load (see `icfl-loadgen`), this
//! reproduces the queueing phenomena of §III-C of the paper — a fail-fast
//! fault on one path *speeds up* its users and thereby shifts load onto
//! sibling paths.

use crate::counters::Counters;
use crate::error::BuildError;
use crate::fault::FaultKind;
use crate::ids::{LogLevel, ReplicaIdx, RequestId, ServiceId, Status, TargetId};
use crate::logs::{LogBuffer, LogRecord};
use crate::spec::{ClusterSpec, ErrorPolicy, KvAction, ServiceKind, Step};
use crate::tracing::{Span, TraceHandle};
use icfl_sim::{fast_map_with_capacity, DurationDist, FastHashMap, Rng, Sim, SimDuration, SimTime};
use std::collections::VecDeque;
use std::rc::Rc;

/// A response to a simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Outcome status.
    pub status: Status,
    /// Value carried by KV operations (0 otherwise).
    pub value: i64,
    /// The request this responds to.
    pub request: RequestId,
}

/// Where a response should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// An external client (load generator); token into the callback table.
    External(u64),
    /// A worker of another service blocked on this call.
    Call {
        /// Arena handle of the blocked parent request.
        parent: ReqToken,
        /// Public id of the parent (kept for traces even after the parent's
        /// arena slot is reused).
        parent_id: RequestId,
    },
    /// A background daemon (index into the cluster's daemon table).
    Daemon {
        /// Daemon index.
        daemon: usize,
    },
}

/// An opaque generation-checked handle to an in-flight request's arena slot.
///
/// Scheduler closures and deadline entries capture tokens instead of map
/// keys: resolving one is an index plus a generation compare, and a token
/// whose request already finished simply resolves to `None` — the same
/// staleness semantics the previous `RequestId -> InFlight` hash map gave,
/// without hashing on the per-request hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqToken {
    index: u32,
    generation: u32,
}

/// Slab arena of in-flight requests: free slots are reused LIFO (so slot
/// allocation is deterministic) and each reuse bumps the slot generation,
/// invalidating any outstanding [`ReqToken`] to the previous occupant.
struct InFlightArena {
    slots: Vec<(u32, Option<InFlight>)>,
    free: Vec<u32>,
    live: usize,
}

impl InFlightArena {
    fn with_capacity(capacity: usize) -> Self {
        InFlightArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
        }
    }

    fn insert(&mut self, state: InFlight) -> ReqToken {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.1.is_none(), "free slot must be vacant");
            slot.1 = Some(state);
            ReqToken {
                index,
                generation: slot.0,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push((0, Some(state)));
            ReqToken {
                index,
                generation: 0,
            }
        }
    }

    #[inline]
    fn get(&self, token: ReqToken) -> Option<&InFlight> {
        let slot = &self.slots[token.index as usize];
        if slot.0 != token.generation {
            return None;
        }
        slot.1.as_ref()
    }

    #[inline]
    fn get_mut(&mut self, token: ReqToken) -> Option<&mut InFlight> {
        let slot = &mut self.slots[token.index as usize];
        if slot.0 != token.generation {
            return None;
        }
        slot.1.as_mut()
    }

    fn remove(&mut self, token: ReqToken) -> Option<InFlight> {
        let slot = &mut self.slots[token.index as usize];
        if slot.0 != token.generation {
            return None;
        }
        let state = slot.1.take()?;
        // Bump on free so every stale token fails its generation check.
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(token.index);
        self.live -= 1;
        Some(state)
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Callback invoked when an external request completes.
pub type ExternalCallback = Box<dyn FnOnce(&mut Sim<Cluster>, &mut Cluster, Response)>;

/// A step with all names resolved to ids. KV actions sit behind an [`Rc`]
/// so forwarding one to a store (per simulated request) never clones the
/// key string.
#[derive(Debug, Clone)]
pub(crate) enum ResolvedStep {
    Compute {
        time: DurationDist,
    },
    Call {
        service: ServiceId,
        endpoint: usize,
        on_error: ErrorPolicy,
    },
    Kv {
        store: ServiceId,
        action: Rc<KvAction>,
        on_error: ErrorPolicy,
    },
    Log {
        level: LogLevel,
        message: Rc<str>,
    },
    LogEveryN {
        n: u64,
        level: LogLevel,
        message: Rc<str>,
    },
    Fail,
}

#[derive(Debug, Clone)]
pub(crate) struct Endpoint {
    pub(crate) name: String,
    /// Shared so the handler interpreter can hold the program while
    /// mutating the cluster, without cloning steps (see `advance`).
    pub(crate) steps: Rc<[ResolvedStep]>,
}

/// Runtime state of one service.
pub(crate) struct Service {
    pub(crate) name: String,
    pub(crate) kind: ServiceKind,
    concurrency: usize,
    busy: usize,
    queue: VecDeque<ReqToken>,
    queue_capacity: usize,
    pub(crate) endpoints: Vec<Endpoint>,
    endpoint_index: FastHashMap<String, usize>,
    kv: FastHashMap<String, i64>,
    kv_op_time: DurationDist,
    pub(crate) idle_cpu_per_sec: SimDuration,
    pub(crate) logs: LogBuffer,
    pub(crate) fault: Option<FaultKind>,
    /// When set, `fault` applies only to this replica (instance-granularity
    /// injection); `None` scopes the fault to every replica.
    fault_scope: Option<ReplicaIdx>,
    /// Replica count (≥ 1). Replicas share the worker pool and queue but
    /// own individual counter rows.
    replicas: u32,
    /// Round-robin load-balancer cursor: the next replica to route to.
    /// A plain counter (no RNG draw) so single-replica event streams are
    /// unchanged by the replica axis.
    lb_next: u32,
    /// Invocation counts backing `Step::LogEveryN`, keyed by
    /// (endpoint index, step index).
    step_invocations: FastHashMap<(usize, usize), u64>,
    rng: Rng,
}

impl Service {
    fn has_free_worker(&self) -> bool {
        self.busy < self.concurrency
    }

    /// The fault in effect for `replica`, cloned out so callers can keep
    /// borrowing the service mutably (e.g. for its RNG). At most one fault
    /// is active per service, so each interpretation site matches on the
    /// single returned kind.
    #[inline]
    fn scoped_fault(&self, replica: ReplicaIdx) -> Option<FaultKind> {
        match &self.fault {
            Some(f) if self.fault_scope.is_none_or(|r| r == replica) => Some(f.clone()),
            _ => None,
        }
    }
}

/// The kind of work a request asks its target to perform.
#[derive(Debug, Clone)]
enum Work {
    /// Run the handler program of endpoint `idx`.
    Handler(usize),
    /// Perform a built-in KV operation.
    Kv(Rc<KvAction>),
    /// Fail immediately with an internal error (sampled by an
    /// [`FaultKind::ErrorRate`] fault at delivery time).
    InjectedError,
}

struct InFlight {
    /// Public monotone id (never reused), carried for traces and responses.
    id: RequestId,
    service: ServiceId,
    /// The replica of `service` this request was routed to (assigned at
    /// send time by the round-robin balancer; 0 until routed).
    replica: ReplicaIdx,
    work: Work,
    issued_at: SimTime,
    step: usize,
    reply_to: Completion,
    /// Child request awaited, by public id: unlike arena slots, request ids
    /// are never reused, so stale responses and timeouts can never match.
    waiting_on: Option<RequestId>,
    /// Error policy of the call currently awaited (meaningful only while
    /// `waiting_on` is set).
    pending_policy: ErrorPolicy,
    status: Status,
    value: i64,
    /// True once this request occupies a worker slot.
    holds_worker: bool,
}

/// The simulated cluster: world state `S` for [`icfl_sim::Sim`].
///
/// Build one from a [`ClusterSpec`], call [`Cluster::start`] to arm
/// housekeeping and daemons, then drive traffic with
/// [`Cluster::submit`] (usually via `icfl-loadgen`).
///
/// # Examples
///
/// ```
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps, Status};
/// use icfl_sim::{Sim, SimTime};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![
///         steps::compute_ms(1),
///         steps::call("b", "/"),
///     ]))
///     .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(2)]));
/// let mut cluster = Cluster::build(&spec, 7)?;
/// let mut sim = Sim::new(7);
/// Cluster::start(&mut sim, &mut cluster);
///
/// let a = cluster.service_id("a").unwrap();
/// Cluster::submit(&mut sim, &mut cluster, a, "/", |_, _, resp| {
///     assert_eq!(resp.status, Status::Ok);
/// });
/// sim.run_until(SimTime::from_secs(1), &mut cluster);
/// # Ok::<(), icfl_micro::BuildError>(())
/// ```
pub struct Cluster {
    name: String,
    pub(crate) services: Vec<Service>,
    /// Telemetry counters, struct-of-arrays style: one contiguous row per
    /// (service, replica) pair in service-major order, so a scrape is a
    /// single `memcpy` instead of a strided per-service gather (see
    /// [`Cluster::counters_slice`]). For single-replica services the row
    /// index equals the service index, which keeps the pre-replica scrape
    /// layout byte-identical.
    pub(crate) counters: Vec<Counters>,
    /// First counter row of each service (`row_base[s] + r` is the row of
    /// replica `r` of service `s`).
    row_base: Vec<u32>,
    name_to_id: FastHashMap<String, ServiceId>,
    net_latency: DurationDist,
    conn_refused_latency: DurationDist,
    call_timeout: SimDuration,
    inflight: InFlightArena,
    /// Pending call deadlines, oldest first. `call_timeout` is constant, so
    /// deadlines are monotone in issue order and a FIFO plus one re-arming
    /// sweep event replaces a cancellable timer event per call (which would
    /// otherwise dominate scheduler traffic: almost every call completes,
    /// leaving thousands of dead timers in the event heap). Entries carry
    /// the parent's arena token plus the awaited child's public id for the
    /// staleness check.
    call_deadlines: VecDeque<(SimTime, ReqToken, RequestId)>,
    /// True while a sweep event is scheduled for `call_deadlines.front()`.
    deadline_sweep_armed: bool,
    next_request: u64,
    external: FastHashMap<u64, ExternalCallback>,
    next_external: u64,
    pub(crate) daemons: Vec<crate::daemon::DaemonRuntime>,
    pub(crate) autoscalers: Vec<crate::autoscaler::AutoscalerRuntime>,
    tracing: Option<TraceHandle>,
    net_rng: Rng,
    started: bool,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("name", &self.name)
            .field("services", &self.services.len())
            .field("inflight", &self.inflight.len())
            .field("daemons", &self.daemons.len())
            .finish()
    }
}

impl Cluster {
    /// Builds a runnable cluster from a validated spec.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for duplicate service names, dangling
    /// call/KV/daemon references, calls to the wrong service kind, or
    /// zero-worker services.
    pub fn build(spec: &ClusterSpec, seed: u64) -> Result<Cluster, BuildError> {
        let root = Rng::seeded(seed).fork(&format!("cluster/{}", spec.name));

        let mut name_to_id = FastHashMap::default();
        for (i, s) in spec.services.iter().enumerate() {
            if name_to_id.insert(s.name.clone(), ServiceId(i)).is_some() {
                return Err(BuildError::DuplicateService(s.name.clone()));
            }
            if s.concurrency == 0 {
                return Err(BuildError::ZeroConcurrency(s.name.clone()));
            }
        }

        // First pass: endpoint name tables (needed to resolve Call steps).
        let endpoint_names: Vec<FastHashMap<String, usize>> = spec
            .services
            .iter()
            .map(|s| {
                s.endpoints
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (e.name.clone(), i))
                    .collect()
            })
            .collect();

        let resolve_service = |name: &str| -> Result<ServiceId, BuildError> {
            name_to_id
                .get(name)
                .copied()
                .ok_or_else(|| BuildError::UnknownService(name.to_owned()))
        };

        let mut services = Vec::with_capacity(spec.services.len());
        for (si, s) in spec.services.iter().enumerate() {
            if s.kind == ServiceKind::KvStore && !s.endpoints.is_empty() {
                return Err(BuildError::KvStoreWithEndpoints(s.name.clone()));
            }
            let mut endpoints = Vec::with_capacity(s.endpoints.len());
            for e in &s.endpoints {
                let mut steps = Vec::with_capacity(e.steps.len());
                for step in &e.steps {
                    steps.push(match step {
                        Step::Compute { time } => ResolvedStep::Compute { time: *time },
                        Step::Call {
                            service,
                            endpoint,
                            on_error,
                        } => {
                            let target = resolve_service(service)?;
                            if spec.services[target.0].kind != ServiceKind::Web {
                                return Err(BuildError::CallTargetNotWeb {
                                    from: s.name.clone(),
                                    to: service.clone(),
                                });
                            }
                            let ep = *endpoint_names[target.0].get(endpoint).ok_or_else(|| {
                                BuildError::UnknownEndpoint {
                                    service: service.clone(),
                                    endpoint: endpoint.clone(),
                                }
                            })?;
                            ResolvedStep::Call {
                                service: target,
                                endpoint: ep,
                                on_error: *on_error,
                            }
                        }
                        Step::Kv {
                            store,
                            action,
                            on_error,
                        } => {
                            let target = resolve_service(store)?;
                            if spec.services[target.0].kind != ServiceKind::KvStore {
                                return Err(BuildError::KvTargetNotStore {
                                    from: s.name.clone(),
                                    to: store.clone(),
                                });
                            }
                            ResolvedStep::Kv {
                                store: target,
                                action: Rc::new(action.clone()),
                                on_error: *on_error,
                            }
                        }
                        Step::Log { level, message } => ResolvedStep::Log {
                            level: *level,
                            message: Rc::from(message.as_str()),
                        },
                        Step::LogEveryN { n, level, message } => {
                            if *n == 0 {
                                return Err(BuildError::ZeroLogPeriod(s.name.clone()));
                            }
                            ResolvedStep::LogEveryN {
                                n: *n,
                                level: *level,
                                message: Rc::from(message.as_str()),
                            }
                        }
                        Step::Fail => ResolvedStep::Fail,
                    });
                }
                endpoints.push(Endpoint {
                    name: e.name.clone(),
                    steps: steps.into(),
                });
            }
            services.push(Service {
                name: s.name.clone(),
                kind: s.kind,
                concurrency: s.concurrency,
                busy: 0,
                queue: VecDeque::new(),
                queue_capacity: s.queue_capacity,
                endpoint_index: endpoint_names[si].clone(),
                endpoints,
                kv: FastHashMap::default(),
                kv_op_time: s.kv_op_time,
                idle_cpu_per_sec: s.idle_cpu_per_sec,
                logs: LogBuffer::with_capacity(LogBuffer::DEFAULT_CAPACITY),
                fault: None,
                fault_scope: None,
                replicas: s.replicas.max(1) as u32,
                lb_next: 0,
                step_invocations: FastHashMap::default(),
                rng: root.fork(&format!("service/{}", s.name)),
            });
        }

        let mut daemons = Vec::with_capacity(spec.daemons.len());
        for (di, d) in spec.daemons.iter().enumerate() {
            daemons.push(crate::daemon::DaemonRuntime::resolve(
                d,
                &name_to_id,
                &endpoint_names,
                spec,
                root.fork(&format!("daemon/{di}")),
            )?);
        }

        let mut autoscalers = Vec::with_capacity(spec.autoscalers.len());
        for a in &spec.autoscalers {
            let service = name_to_id
                .get(&a.service)
                .copied()
                .ok_or_else(|| BuildError::UnknownService(a.service.clone()))?;
            autoscalers.push(crate::autoscaler::AutoscalerRuntime {
                service,
                spec: a.clone(),
                scale_ups: 0,
                scale_downs: 0,
            });
        }

        // Size hot-path storage from the spec instead of a one-size-fits-all
        // constant: the worst-case number of concurrently admitted requests
        // is bounded by worker slots plus queue slots across all services
        // (each held request may additionally have one child call pending).
        let inflight_hint = Self::inflight_hint_for(spec);
        let mut row_base = Vec::with_capacity(services.len());
        let mut num_rows = 0u32;
        for s in &services {
            row_base.push(num_rows);
            num_rows += s.replicas;
        }

        Ok(Cluster {
            name: spec.name.clone(),
            services,
            counters: vec![Counters::default(); num_rows as usize],
            row_base,
            name_to_id,
            net_latency: spec.net_latency,
            conn_refused_latency: spec.conn_refused_latency,
            call_timeout: spec.call_timeout,
            inflight: InFlightArena::with_capacity(inflight_hint),
            call_deadlines: VecDeque::with_capacity(inflight_hint),
            deadline_sweep_armed: false,
            next_request: 0,
            external: fast_map_with_capacity(inflight_hint.min(4096)),
            next_external: 0,
            daemons,
            autoscalers,
            tracing: None,
            net_rng: root.fork("net"),
            started: false,
        })
    }

    /// Application name this cluster was built from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// All service ids, in order.
    pub fn service_ids(&self) -> Vec<ServiceId> {
        (0..self.services.len()).map(ServiceId).collect()
    }

    /// Looks a service up by name.
    pub fn service_id(&self, name: &str) -> Option<ServiceId> {
        self.name_to_id.get(name).copied()
    }

    /// The name of a service.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a service of this cluster.
    pub fn service_name(&self, id: ServiceId) -> &str {
        &self.services[id.0].name
    }

    /// The counter row of replica `r` of service `s`.
    #[inline]
    pub(crate) fn row(&self, s: ServiceId, r: ReplicaIdx) -> usize {
        self.row_base[s.0] as usize + r as usize
    }

    /// Snapshot of a service's telemetry counters, aggregated across its
    /// replicas (for single-replica services this is the row itself).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a service of this cluster.
    pub fn counters(&self, id: ServiceId) -> Counters {
        let base = self.row_base[id.0] as usize;
        let n = self.services[id.0].replicas as usize;
        if n == 1 {
            return self.counters[base];
        }
        let mut total = self.counters[base];
        for row in &self.counters[base + 1..base + n] {
            total = total.saturating_add_fields(row);
        }
        total
    }

    /// Snapshot of one replica's telemetry counters.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a service of this cluster or `replica` is out
    /// of range for it.
    pub fn replica_counters(&self, id: ServiceId, replica: ReplicaIdx) -> Counters {
        assert!(
            replica < self.services[id.0].replicas,
            "service {} has {} replicas, no replica {replica}",
            self.services[id.0].name,
            self.services[id.0].replicas
        );
        self.counters[self.row(id, replica)]
    }

    /// All per-(service, replica) counter rows as one contiguous slice in
    /// service-major order ([`Cluster::row_targets`] names each row).
    /// Telemetry scrapes copy this slice with a single `memcpy` instead of
    /// gathering service-by-service — the batched-scrape path consumed by
    /// the telemetry window engine. For clusters where every service has
    /// one replica this is exactly the per-service layout.
    pub fn counters_slice(&self) -> &[Counters] {
        &self.counters
    }

    /// Number of counter rows (total replicas across all services).
    pub fn num_rows(&self) -> usize {
        self.counters.len()
    }

    /// Replica count of a service.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a service of this cluster.
    pub fn num_replicas(&self, id: ServiceId) -> ReplicaIdx {
        self.services[id.0].replicas
    }

    /// The instance target of every counter row, in row order — the dense
    /// target index used by instance-granularity telemetry and learning.
    pub fn row_targets(&self) -> Vec<TargetId> {
        let mut out = Vec::with_capacity(self.counters.len());
        for (i, s) in self.services.iter().enumerate() {
            for r in 0..s.replicas {
                out.push(TargetId::Instance(ServiceId(i), r));
            }
        }
        out
    }

    /// The counter row a target maps to: a service's first replica row, or
    /// the instance's own row.
    ///
    /// # Panics
    ///
    /// Panics if the target's service or replica is out of range.
    pub fn target_row(&self, target: TargetId) -> usize {
        match target {
            TargetId::Service(s) => self.row_base[s.0] as usize,
            TargetId::Instance(s, r) => {
                assert!(
                    r < self.services[s.0].replicas,
                    "service {} has {} replicas, no replica {r}",
                    self.services[s.0].name,
                    self.services[s.0].replicas
                );
                self.row(s, r)
            }
        }
    }

    /// Human-readable label of a target: the service name, suffixed with
    /// `@replica` for instances of replicated services (single-replica
    /// instances read as plain service names).
    pub fn target_label(&self, target: TargetId) -> String {
        let svc = &self.services[target.service().0];
        match target {
            TargetId::Instance(_, r) if svc.replicas > 1 => format!("{}@{r}", svc.name),
            _ => svc.name.clone(),
        }
    }

    /// Batched scrape of `n` counter rows: the flattened per-replica rows
    /// when `n` matches [`Cluster::num_rows`] (the instance-granularity
    /// scrape, a single `memcpy`), or per-service aggregates when `n`
    /// matches [`Cluster::num_services`]. For single-replica clusters both
    /// shapes coincide and take the fast path.
    ///
    /// # Panics
    ///
    /// Panics if `n` matches neither shape.
    pub fn scrape_rows(&self, n: usize) -> Vec<Counters> {
        if n == self.counters.len() {
            return self.counters.clone();
        }
        assert_eq!(
            n,
            self.services.len(),
            "scrape width must be the row count or the service count"
        );
        (0..self.services.len())
            .map(|i| self.counters(ServiceId(i)))
            .collect()
    }

    /// Estimated worst-case concurrently admitted requests for a spec:
    /// worker slots plus queue slots, doubled for pending child calls.
    /// Used to size the in-flight arena and related hot-path storage.
    fn inflight_hint_for(spec: &ClusterSpec) -> usize {
        let admitted: usize = spec
            .services
            .iter()
            .map(|s| s.concurrency + s.queue_capacity)
            .sum();
        (admitted * 2).clamp(64, 1 << 20)
    }

    /// A scenario-derived hint for how many scheduler events this cluster
    /// keeps pending at once (network hops, compute completions, deadline
    /// sweeps), suitable for [`icfl_sim::Sim::with_capacity`].
    pub fn pending_events_hint(&self) -> usize {
        let admitted: usize = self
            .services
            .iter()
            .map(|s| s.concurrency + s.queue_capacity)
            .sum();
        (admitted * 2).clamp(64, 1 << 20)
    }

    /// Sets or clears the active fault on a service (all replicas).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a service of this cluster.
    pub fn set_fault(&mut self, id: ServiceId, fault: Option<FaultKind>) {
        self.set_fault_target(TargetId::Service(id), fault);
    }

    /// Sets or clears the active fault on a target: the whole service, or
    /// one replica of it (instance-granularity injection — only requests
    /// routed to that replica observe the fault).
    ///
    /// # Panics
    ///
    /// Panics if the target's service or replica is out of range.
    pub fn set_fault_target(&mut self, target: impl Into<TargetId>, fault: Option<FaultKind>) {
        let target = target.into();
        let svc = &mut self.services[target.service().0];
        if let Some(r) = target.replica() {
            assert!(
                r < svc.replicas,
                "service {} has {} replicas, no replica {r}",
                svc.name,
                svc.replicas
            );
        }
        svc.fault_scope = if fault.is_some() {
            target.replica()
        } else {
            None
        };
        svc.fault = fault;
    }

    /// The active fault on a service, if any.
    pub fn fault(&self, id: ServiceId) -> Option<&FaultKind> {
        self.services[id.0].fault.as_ref()
    }

    /// The replica the active fault is scoped to (`None` when the fault —
    /// if any — applies to the whole service).
    pub fn fault_scope(&self, id: ServiceId) -> Option<ReplicaIdx> {
        self.services[id.0].fault_scope
    }

    /// Reads a KV counter (0 if absent). Intended for tests and daemons.
    ///
    /// # Panics
    ///
    /// Panics if `store` is not a KV store of this cluster.
    pub fn kv_value(&self, store: ServiceId, key: &str) -> i64 {
        assert_eq!(
            self.services[store.0].kind,
            ServiceKind::KvStore,
            "not a KV store"
        );
        self.services[store.0].kv.get(key).copied().unwrap_or(0)
    }

    /// Endpoint names of a service (in declaration order).
    pub fn endpoint_names(&self, id: ServiceId) -> Vec<&str> {
        self.services[id.0]
            .endpoints
            .iter()
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Arms per-second housekeeping (idle CPU accrual) and all daemons.
    /// Must be called exactly once before running the simulation.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(sim: &mut Sim<Cluster>, cluster: &mut Cluster) {
        assert!(!cluster.started, "Cluster::start called twice");
        cluster.started = true;
        icfl_sim::schedule_periodic(
            sim,
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            |_, cl: &mut Cluster| {
                // Every replica is its own container: each row accrues the
                // service's idle CPU baseline.
                let mut rows = cl.counters.iter_mut();
                for s in &cl.services {
                    for c in rows.by_ref().take(s.replicas as usize) {
                        c.add_cpu(s.idle_cpu_per_sec);
                    }
                }
            },
        );
        for idx in 0..cluster.daemons.len() {
            crate::daemon::DaemonRuntime::arm(sim, idx);
        }
        for idx in 0..cluster.autoscalers.len() {
            crate::autoscaler::AutoscalerRuntime::arm(sim, cluster, idx);
        }
    }

    /// Submits an external (user) request to `service`'s `endpoint` and
    /// invokes `on_complete` when the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist on `service` — external entry
    /// points are part of the workload definition, so a miss is a
    /// programming error, not a runtime condition.
    pub fn submit(
        sim: &mut Sim<Cluster>,
        cluster: &mut Cluster,
        service: ServiceId,
        endpoint: &str,
        on_complete: impl FnOnce(&mut Sim<Cluster>, &mut Cluster, Response) + 'static,
    ) -> RequestId {
        let ep = cluster.endpoint_id(service, endpoint).unwrap_or_else(|| {
            panic!(
                "service {} has no endpoint {endpoint}",
                cluster.services[service.0].name
            )
        });
        Cluster::submit_indexed(sim, cluster, service, ep, on_complete)
    }

    /// Resolves an endpoint name on `service` to the index accepted by
    /// [`Cluster::submit_indexed`].
    pub fn endpoint_id(&self, service: ServiceId, endpoint: &str) -> Option<usize> {
        self.services[service.0]
            .endpoint_index
            .get(endpoint)
            .copied()
    }

    /// [`Cluster::submit`] with a pre-resolved endpoint index (from
    /// [`Cluster::endpoint_id`]), skipping the per-request name lookup —
    /// the form load generators should use on their hot path.
    ///
    /// # Panics
    ///
    /// Panics (later, when the request is delivered) if `endpoint` is out of
    /// range for the service.
    pub fn submit_indexed(
        sim: &mut Sim<Cluster>,
        cluster: &mut Cluster,
        service: ServiceId,
        endpoint: usize,
        on_complete: impl FnOnce(&mut Sim<Cluster>, &mut Cluster, Response) + 'static,
    ) -> RequestId {
        let token = cluster.next_external;
        cluster.next_external += 1;
        cluster.external.insert(token, Box::new(on_complete));
        let (id, req) = cluster.new_request(
            sim.now(),
            service,
            Work::Handler(endpoint),
            Completion::External(token),
        );
        Cluster::send(sim, cluster, None, req);
        id
    }

    /// Submits a handler invocation on behalf of a daemon.
    pub(crate) fn submit_handler(
        sim: &mut Sim<Cluster>,
        cluster: &mut Cluster,
        target: ServiceId,
        endpoint: usize,
        reply_to: Completion,
        from: Option<ServiceId>,
    ) -> RequestId {
        let (id, req) = cluster.new_request(sim.now(), target, Work::Handler(endpoint), reply_to);
        Cluster::send(sim, cluster, from.map(|f| (f, 0)), req);
        id
    }

    /// Submits a KV operation from outside the cluster (used by daemons and
    /// tests).
    pub(crate) fn submit_kv(
        sim: &mut Sim<Cluster>,
        cluster: &mut Cluster,
        store: ServiceId,
        action: Rc<KvAction>,
        reply_to: Completion,
        from: Option<ServiceId>,
    ) -> RequestId {
        let (id, req) = cluster.new_request(sim.now(), store, Work::Kv(action), reply_to);
        Cluster::send(sim, cluster, from.map(|f| (f, 0)), req);
        id
    }

    fn new_request(
        &mut self,
        now: SimTime,
        service: ServiceId,
        work: Work,
        reply_to: Completion,
    ) -> (RequestId, ReqToken) {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        let token = self.inflight.insert(InFlight {
            id,
            service,
            replica: 0,
            work,
            issued_at: now,
            step: 0,
            reply_to,
            waiting_on: None,
            pending_policy: ErrorPolicy::default(),
            status: Status::Ok,
            value: 0,
            holds_worker: false,
        });
        (id, token)
    }

    /// Transmits a request toward its target, applying load balancing,
    /// connection-refused, and packet-loss semantics. `from` carries the
    /// sending (service, replica) for caller-side counter attribution.
    fn send(
        sim: &mut Sim<Cluster>,
        cl: &mut Cluster,
        from: Option<(ServiceId, ReplicaIdx)>,
        req: ReqToken,
    ) {
        let target = cl.inflight.get(req).expect("request in flight").service;
        if let Some((f, fr)) = from {
            let row = cl.row(f, fr);
            cl.counters[row].tx_packets += 1;
            cl.counters[row].requests_sent += 1;
        }

        // Round-robin load balancing across the target's replicas. The
        // cursor is a plain counter — no RNG draw — so single-replica
        // clusters keep byte-identical event and RNG streams.
        let replica = {
            let svc = &mut cl.services[target.0];
            let r = svc.lb_next % svc.replicas;
            svc.lb_next = svc.lb_next.wrapping_add(1);
            r
        };
        cl.inflight.get_mut(req).expect("request in flight").replica = replica;
        let fault = cl.services[target.0].scoped_fault(replica);

        // Connection refused: fail fast without touching the target.
        if matches!(fault, Some(FaultKind::ServiceUnavailable)) {
            let latency = cl.conn_refused_latency.sample(&mut cl.net_rng);
            let inf = cl.inflight.get_mut(req).expect("request in flight");
            inf.status = Status::ServiceUnavailable;
            sim.schedule_after(latency, move |sim, cl: &mut Cluster| {
                Cluster::deliver_response(sim, cl, req);
            });
            return;
        }

        // Packet loss on the request direction: the request vanishes and the
        // caller's timeout (armed by the caller) eventually fires.
        if let Some(FaultKind::PacketLoss(p)) = fault {
            if cl.net_rng.chance(p) {
                return;
            }
        }

        let latency = cl.net_latency.sample(&mut cl.net_rng);
        sim.schedule_after(latency, move |sim, cl: &mut Cluster| {
            Cluster::deliver(sim, cl, req);
        });
    }

    /// A request arrives at the replica it was routed to.
    fn deliver(sim: &mut Sim<Cluster>, cl: &mut Cluster, req: ReqToken) {
        let (target, replica) = {
            let inf = cl.inflight.get(req).expect("request in flight");
            (inf.service, inf.replica)
        };
        let row = cl.row(target, replica);
        cl.counters[row].rx_packets += 1;
        cl.counters[row].requests_received += 1;

        let svc = &mut cl.services[target.0];
        match svc.scoped_fault(replica) {
            // Error-rate fault, and the gray failure's accept-then-fail
            // error path (sampled at the degraded replica's error
            // probability). A failed guard falls through to the no-fault
            // arm, so the RNG draws once either way.
            Some(FaultKind::ErrorRate(p) | FaultKind::DegradedReplica { error_prob: p, .. })
                if svc.rng.chance(p) =>
            {
                let inf = cl.inflight.get_mut(req).expect("request in flight");
                inf.work = Work::InjectedError;
            }
            // Extra-latency fault: park the request before it contends for
            // a worker.
            Some(FaultKind::ExtraLatency(d)) => {
                let delay = d.sample(&mut svc.rng);
                sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
                    Cluster::admit(sim, cl, req);
                });
                return;
            }
            _ => {}
        }
        Cluster::admit(sim, cl, req);
    }

    /// Queue admission: take a worker or wait; shed if the queue is full.
    fn admit(sim: &mut Sim<Cluster>, cl: &mut Cluster, req: ReqToken) {
        let (target, replica) = {
            let inf = cl.inflight.get(req).expect("in flight");
            (inf.service, inf.replica)
        };
        let svc = &mut cl.services[target.0];
        if svc.has_free_worker() {
            svc.busy += 1;
            cl.inflight.get_mut(req).expect("in flight").holds_worker = true;
            Cluster::begin_work(sim, cl, req);
        } else if svc.queue.len() < svc.queue_capacity {
            svc.queue.push_back(req);
        } else {
            let row = cl.row(target, replica);
            cl.counters[row].queue_dropped += 1;
            Cluster::finish(sim, cl, req, Status::Overloaded);
        }
    }

    /// Starts executing the request's work on its (now-held) worker.
    fn begin_work(sim: &mut Sim<Cluster>, cl: &mut Cluster, req: ReqToken) {
        let (service, replica, work) = {
            let inf = cl.inflight.get(req).expect("in flight");
            (inf.service, inf.replica, inf.work.clone())
        };
        match work {
            Work::Handler(_) => Cluster::advance(sim, cl, req),
            Work::InjectedError => {
                // A failing handler logs an error and responds 500 quickly.
                let fail_time = SimDuration::from_millis(1);
                let now = sim.now();
                cl.write_log(
                    service,
                    replica,
                    now,
                    LogLevel::Error,
                    "Traceback: unhandled exception while processing request",
                );
                let row = cl.row(service, replica);
                cl.counters[row].add_cpu(fail_time);
                sim.schedule_after(fail_time, move |sim, cl: &mut Cluster| {
                    Cluster::finish(sim, cl, req, Status::InternalError);
                });
            }
            Work::Kv(action) => {
                let row = cl.row(service, replica);
                let svc = &mut cl.services[service.0];
                let t = svc.kv_op_time.sample(&mut svc.rng);
                cl.counters[row].add_cpu(t);
                sim.schedule_after(t, move |sim, cl: &mut Cluster| {
                    let svc = &mut cl.services[service.0];
                    // get_mut-then-insert (not the entry API) so the steady
                    // state never clones the key string.
                    let value = match &*action {
                        KvAction::Incr { key } => match svc.kv.get_mut(key) {
                            Some(v) => {
                                *v += 1;
                                *v
                            }
                            None => {
                                svc.kv.insert(key.clone(), 1);
                                1
                            }
                        },
                        KvAction::FetchSub { key } => match svc.kv.get_mut(key) {
                            Some(v) => {
                                let prev = *v;
                                if *v > 0 {
                                    *v -= 1;
                                }
                                prev
                            }
                            None => {
                                svc.kv.insert(key.clone(), 0);
                                0
                            }
                        },
                        KvAction::Get { key } => svc.kv.get(key).copied().unwrap_or(0),
                    };
                    let inf = cl.inflight.get_mut(req).expect("in flight");
                    inf.value = value;
                    Cluster::finish(sim, cl, req, Status::Ok);
                });
            }
        }
    }

    /// Advances a handler program to its next blocking point.
    fn advance(sim: &mut Sim<Cluster>, cl: &mut Cluster, req: ReqToken) {
        let (service, replica, ep_idx, mut step_idx, req_id) = {
            let inf = cl.inflight.get(req).expect("in flight");
            let ep = match inf.work {
                Work::Handler(ep) => ep,
                _ => unreachable!("advance only runs handler programs"),
            };
            (inf.service, inf.replica, ep, inf.step, inf.id)
        };
        // One shared handle to the program; steps are matched by reference
        // (no per-step clone) while the cluster is mutated freely.
        let steps = Rc::clone(&cl.services[service.0].endpoints[ep_idx].steps);
        loop {
            if step_idx >= steps.len() {
                let status = cl.inflight.get(req).expect("in flight").status;
                Cluster::finish(sim, cl, req, status);
                return;
            }
            let step = &steps[step_idx];
            step_idx += 1;
            cl.inflight.get_mut(req).expect("in flight").step = step_idx;
            match step {
                ResolvedStep::Compute { time } => {
                    let row = cl.row(service, replica);
                    let svc = &mut cl.services[service.0];
                    let mut t = time.sample(&mut svc.rng);
                    match svc.scoped_fault(replica) {
                        Some(FaultKind::CpuStress(factor)) => {
                            t = t.mul_f64(factor.max(0.0));
                        }
                        // Gray failure: the degraded replica computes slower.
                        Some(FaultKind::DegradedReplica { latency_factor, .. }) => {
                            t = t.mul_f64(latency_factor.max(0.0));
                        }
                        _ => {}
                    }
                    cl.counters[row].add_cpu(t);
                    sim.schedule_after(t, move |sim, cl: &mut Cluster| {
                        Cluster::advance(sim, cl, req);
                    });
                    return;
                }
                ResolvedStep::Log { level, message } => {
                    let now = sim.now();
                    cl.write_log(service, replica, now, *level, message);
                }
                ResolvedStep::LogEveryN { n, level, message } => {
                    let now = sim.now();
                    // step_idx already advanced past this step.
                    let count = cl.services[service.0]
                        .step_invocations
                        .entry((ep_idx, step_idx - 1))
                        .or_insert(0);
                    *count += 1;
                    if (*count).is_multiple_of(*n) {
                        cl.write_log(service, replica, now, *level, message);
                    }
                }
                ResolvedStep::Fail => {
                    let now = sim.now();
                    cl.write_log(
                        service,
                        replica,
                        now,
                        LogLevel::Error,
                        "Traceback: handler raised an exception",
                    );
                    Cluster::finish(sim, cl, req, Status::InternalError);
                    return;
                }
                ResolvedStep::Call {
                    service: target,
                    endpoint,
                    on_error,
                } => {
                    let (child_id, child) = cl.new_request(
                        sim.now(),
                        *target,
                        Work::Handler(*endpoint),
                        Completion::Call {
                            parent: req,
                            parent_id: req_id,
                        },
                    );
                    Cluster::issue_call(sim, cl, req, child, child_id, service, *on_error);
                    return;
                }
                ResolvedStep::Kv {
                    store,
                    action,
                    on_error,
                } => {
                    let (child_id, child) = cl.new_request(
                        sim.now(),
                        *store,
                        Work::Kv(Rc::clone(action)),
                        Completion::Call {
                            parent: req,
                            parent_id: req_id,
                        },
                    );
                    Cluster::issue_call(sim, cl, req, child, child_id, service, *on_error);
                    return;
                }
            }
        }
    }

    /// Sends a child call and arms the caller-side timeout. `on_error` is
    /// remembered through the pending-call bookkeeping on the parent.
    fn issue_call(
        sim: &mut Sim<Cluster>,
        cl: &mut Cluster,
        parent: ReqToken,
        child: ReqToken,
        child_id: RequestId,
        from: ServiceId,
        on_error: ErrorPolicy,
    ) {
        let from_replica = {
            let inf = cl.inflight.get_mut(parent).expect("parent in flight");
            inf.waiting_on = Some(child_id);
            inf.pending_policy = on_error;
            inf.replica
        };
        let deadline = sim.now() + cl.call_timeout;
        cl.call_deadlines.push_back((deadline, parent, child_id));
        if !cl.deadline_sweep_armed {
            cl.deadline_sweep_armed = true;
            sim.schedule_at(deadline, Cluster::sweep_call_deadlines);
        }
        Cluster::send(sim, cl, Some((from, from_replica)), child);
    }

    /// Fires every due entry of `call_deadlines`, then re-arms for the next
    /// front deadline (if any). Entries whose call already completed are
    /// skipped by [`Cluster::on_call_timeout`]'s staleness guards; request
    /// ids are never reused, so a stale `(parent, child)` pair can never
    /// match a live call.
    fn sweep_call_deadlines(sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        // `deadline_sweep_armed` stays true for the whole sweep so timeout
        // handlers that issue fresh calls cannot arm a duplicate sweep; their
        // deadlines land past `now` and are re-armed below. Stale entries
        // (calls that completed before their deadline) are dropped eagerly —
        // even future ones — so each sweep re-arms at the first still-live
        // deadline rather than stepping through every completed call.
        let now = sim.now();
        loop {
            let Some(&(deadline, parent, child)) = cl.call_deadlines.front() else {
                cl.deadline_sweep_armed = false;
                return;
            };
            let live = cl
                .inflight
                .get(parent)
                .is_some_and(|inf| inf.waiting_on == Some(child));
            if !live {
                cl.call_deadlines.pop_front();
                continue;
            }
            if deadline > now {
                sim.schedule_at(deadline, Cluster::sweep_call_deadlines);
                return;
            }
            cl.call_deadlines.pop_front();
            Cluster::on_call_timeout(sim, cl, parent, child);
        }
    }

    /// Delivers a finished request's response toward its completion target.
    fn finish(sim: &mut Sim<Cluster>, cl: &mut Cluster, req: ReqToken, status: Status) {
        {
            let (service, replica) = {
                let inf = cl.inflight.get_mut(req).expect("in flight");
                (inf.service, inf.replica)
            };
            let row = cl.row(service, replica);
            let inf = cl.inflight.get_mut(req).expect("in flight");
            inf.status = status;
            let holds = inf.holds_worker;
            inf.holds_worker = false;
            let counters = &mut cl.counters[row];
            if status.is_error() {
                counters.responses_err += 1;
            } else {
                counters.responses_ok += 1;
            }
            // Refused connections never reached the service, so only count a
            // transmitted response packet for work the service actually did.
            if status != Status::ServiceUnavailable {
                counters.tx_packets += 1;
            }
            if holds {
                let svc = &mut cl.services[service.0];
                svc.busy -= 1;
                if let Some(next) = svc.queue.pop_front() {
                    svc.busy += 1;
                    cl.inflight
                        .get_mut(next)
                        .expect("queued request in flight")
                        .holds_worker = true;
                    sim.schedule_now(move |sim, cl: &mut Cluster| {
                        Cluster::begin_work(sim, cl, next);
                    });
                }
            }
        }

        // Response packet loss (scoped to the replica that served the
        // request).
        let (target, replica) = {
            let inf = cl.inflight.get(req).expect("in flight");
            (inf.service, inf.replica)
        };
        if let Some(FaultKind::PacketLoss(p)) = cl.services[target.0].scoped_fault(replica) {
            if cl.net_rng.chance(p) {
                cl.inflight.remove(req);
                return;
            }
        }
        let latency = cl.net_latency.sample(&mut cl.net_rng);
        sim.schedule_after(latency, move |sim, cl: &mut Cluster| {
            Cluster::deliver_response(sim, cl, req);
        });
    }

    /// A response arrives at its completion target.
    fn deliver_response(sim: &mut Sim<Cluster>, cl: &mut Cluster, req: ReqToken) {
        let Some(inf) = cl.inflight.remove(req) else {
            return;
        };
        if let Some(tracing) = &cl.tracing {
            tracing.store.borrow_mut().spans.push(Span {
                request: inf.id,
                parent: match inf.reply_to {
                    Completion::Call { parent_id, .. } => Some(parent_id),
                    _ => None,
                },
                service: inf.service,
                start: inf.issued_at,
                end: sim.now(),
                status: inf.status,
            });
        }
        let resp = Response {
            status: inf.status,
            value: inf.value,
            request: inf.id,
        };
        match inf.reply_to {
            Completion::External(token) => {
                if let Some(cb) = cl.external.remove(&token) {
                    cb(sim, cl, resp);
                }
            }
            Completion::Daemon { daemon } => {
                crate::daemon::DaemonRuntime::on_response(sim, cl, daemon, resp);
            }
            Completion::Call { parent, .. } => {
                Cluster::on_child_response(sim, cl, parent, resp);
            }
        }
    }

    /// The blocked parent receives its child's response.
    fn on_child_response(
        sim: &mut Sim<Cluster>,
        cl: &mut Cluster,
        parent: ReqToken,
        resp: Response,
    ) {
        let Some(inf) = cl.inflight.get_mut(parent) else {
            return; // parent already finished (timeout raced us)
        };
        if inf.waiting_on != Some(resp.request) {
            return; // stale response after a timeout
        }
        inf.waiting_on = None;
        let service = inf.service;
        let replica = inf.replica;
        let policy = inf.pending_policy;
        let row = cl.row(service, replica);
        cl.counters[row].rx_packets += 1;

        if resp.status.is_error() {
            Cluster::handle_call_failure(sim, cl, parent, resp.status, policy);
        } else {
            let inf = cl.inflight.get_mut(parent).expect("parent in flight");
            inf.value = resp.value;
            Cluster::advance(sim, cl, parent);
        }
    }

    /// The caller-side timeout fired before the child responded.
    fn on_call_timeout(
        sim: &mut Sim<Cluster>,
        cl: &mut Cluster,
        parent: ReqToken,
        child: RequestId,
    ) {
        let Some(inf) = cl.inflight.get_mut(parent) else {
            return;
        };
        if inf.waiting_on != Some(child) {
            return; // response won the race
        }
        inf.waiting_on = None;
        let policy = inf.pending_policy;
        Cluster::handle_call_failure(sim, cl, parent, Status::Timeout, policy);
    }

    /// Applies the error policy after a failed downstream call.
    fn handle_call_failure(
        sim: &mut Sim<Cluster>,
        cl: &mut Cluster,
        parent: ReqToken,
        child_status: Status,
        policy: ErrorPolicy,
    ) {
        let (service, replica) = {
            let inf = cl.inflight.get(parent).expect("parent in flight");
            (inf.service, inf.replica)
        };
        if policy.logs() {
            let now = sim.now();
            // Static per-status text: this line fires for every failed call
            // during a fault phase, and the texts must stay byte-identical
            // to `format!("error: downstream call failed ({child_status})")`
            // so log-template extraction sees the same templates.
            let message = match child_status {
                Status::Ok => "error: downstream call failed (200 OK)",
                Status::InternalError => "error: downstream call failed (500 Internal Error)",
                Status::ServiceUnavailable => {
                    "error: downstream call failed (503 Service Unavailable)"
                }
                Status::Overloaded => "error: downstream call failed (503 Overloaded)",
                Status::Timeout => "error: downstream call failed (504 Timeout)",
            };
            cl.write_log(service, replica, now, LogLevel::Error, message);
        }
        if policy.propagates() {
            // The failure bubbles up as a 500 from this service (errors
            // propagate along the response path, §III-A).
            let status = if child_status == Status::Timeout {
                Status::Timeout
            } else {
                Status::InternalError
            };
            Cluster::finish(sim, cl, parent, status);
        } else {
            Cluster::advance(sim, cl, parent);
        }
    }

    /// Adds CPU busy time to a service out-of-band (used by the CPU-hog
    /// fault driver in `icfl-faults`). Attributed to the first replica row.
    pub fn add_cpu(&mut self, id: ServiceId, d: SimDuration) {
        let row = self.row(id, 0);
        self.counters[row].add_cpu(d);
    }

    /// Writes a log message to a service out-of-band (used by daemons;
    /// attributed to the first replica row).
    pub(crate) fn log(&mut self, id: ServiceId, now: SimTime, level: LogLevel, message: &str) {
        self.write_log(id, 0, now, level, message);
    }

    /// Writes one console log line for a replica of a service: bumps that
    /// replica's log counters and retains the message in the service's
    /// bounded buffer (replicas share one log stream, like pods of one
    /// Deployment sharing a label selector).
    fn write_log(
        &mut self,
        id: ServiceId,
        replica: ReplicaIdx,
        time: SimTime,
        level: LogLevel,
        message: &str,
    ) {
        let row = self.row(id, replica);
        self.counters[row].add_log(level);
        self.services[id.0].logs.push(LogRecord {
            time,
            level,
            message: message.to_owned(),
        });
    }

    /// Turns on distributed tracing and returns the span stream. Spans are
    /// recorded at response delivery; requests in flight when the
    /// simulation stops produce no span (as in real tracing backends).
    /// Idempotent: repeated calls return handles to the same store.
    pub fn enable_tracing(&mut self) -> TraceHandle {
        self.tracing
            .get_or_insert_with(TraceHandle::default)
            .clone()
    }

    /// The most recent `n` console log lines of a service, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a service of this cluster.
    pub fn recent_logs(&self, id: ServiceId, n: usize) -> Vec<LogRecord> {
        self.services[id.0].logs.tail(n)
    }

    /// The current worker-pool size of a service (autoscalers change it).
    pub fn current_concurrency(&self, id: ServiceId) -> usize {
        self.services[id.0].concurrency
    }

    /// Resizes a service's worker pool (the autoscaler's actuator; also
    /// usable as a manual SRE action). Growing the pool immediately admits
    /// queued requests; shrinking lets busy workers drain naturally.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` — a zero-worker service would deadlock its
    /// queue (use a fault to model an outage instead).
    pub fn set_concurrency(
        sim: &mut Sim<Cluster>,
        cl: &mut Cluster,
        id: ServiceId,
        workers: usize,
    ) {
        assert!(workers > 0, "cannot scale a service to zero workers");
        cl.services[id.0].concurrency = workers;
        // Newly freed capacity admits queued work.
        while cl.services[id.0].has_free_worker() {
            let Some(next) = cl.services[id.0].queue.pop_front() else {
                break;
            };
            cl.services[id.0].busy += 1;
            cl.inflight
                .get_mut(next)
                .expect("queued request in flight")
                .holds_worker = true;
            sim.schedule_now(move |sim, cl: &mut Cluster| {
                Cluster::begin_work(sim, cl, next);
            });
        }
    }

    /// Scale-up/scale-down decision counts of autoscaler `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn autoscaler_actions(&self, idx: usize) -> (u64, u64) {
        let a = &self.autoscalers[idx];
        (a.scale_ups, a.scale_downs)
    }

    /// Current queue length of a service (for tests and gauges).
    pub fn queue_len(&self, id: ServiceId) -> usize {
        self.services[id.0].queue.len()
    }

    /// Number of busy workers of a service.
    pub fn busy_workers(&self, id: ServiceId) -> usize {
        self.services[id.0].busy
    }
}
