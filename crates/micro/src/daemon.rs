//! Background poll-loop daemons — CausalBench's node F and Robot-shop's
//! dispatch worker.
//!
//! A daemon is a client thread living inside a host service: it polls a KV
//! counter with `fetch_sub`, performs per-item work (CPU attributed to the
//! host), optionally calls a downstream service per item, and writes the
//! progress/idle log messages described in §V-B(e) of the paper. This is the
//! machinery that creates *omission faults*: when the producer of the
//! counter dies, the daemon's downstream callee silently stops receiving
//! requests even though nothing on that path failed.

use crate::cluster::{Cluster, Completion, Response};
use crate::error::BuildError;
use crate::ids::{LogLevel, RequestId, ServiceId};
use crate::spec::{ClusterSpec, DaemonSpec, KvAction, ServiceKind};
use icfl_sim::{DurationDist, EventId, FastHashMap, Rng, Sim, SimDuration, SimTime};
use std::rc::Rc;

/// Back-off before re-polling after a failed store operation (a crashed
/// Redis connection is retried, with error logs, about once a second).
const ERROR_BACKOFF: SimDuration = SimDuration::from_secs(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the `fetch_sub` poll response.
    AwaitFetch,
    /// Waiting for the per-item downstream call response.
    AwaitCall,
    /// Between activities (sleeping or about to be armed).
    Sleeping,
}

/// Runtime state of one daemon.
pub(crate) struct DaemonRuntime {
    host: ServiceId,
    store: ServiceId,
    /// Prebuilt `fetch_sub` op, shared into every poll without re-allocating
    /// the counter-key `String`.
    fetch_action: Rc<KvAction>,
    poll_interval: DurationDist,
    work_per_item: DurationDist,
    call_per_item: Option<(ServiceId, usize)>,
    log_every_items: u64,
    idle_log_after: SimDuration,
    items_processed: u64,
    idle_since: Option<SimTime>,
    phase: Phase,
    waiting: Option<(RequestId, EventId)>,
    rng: Rng,
}

impl DaemonRuntime {
    /// Resolves a [`DaemonSpec`]'s names against the cluster being built.
    pub(crate) fn resolve(
        spec: &DaemonSpec,
        name_to_id: &FastHashMap<String, ServiceId>,
        endpoint_names: &[FastHashMap<String, usize>],
        cluster_spec: &ClusterSpec,
        rng: Rng,
    ) -> Result<Self, BuildError> {
        let lookup = |name: &str| -> Result<ServiceId, BuildError> {
            name_to_id
                .get(name)
                .copied()
                .ok_or_else(|| BuildError::UnknownService(name.to_owned()))
        };
        let host = lookup(&spec.host)?;
        if cluster_spec.services[host.index()].kind != ServiceKind::Web {
            return Err(BuildError::DaemonHostNotWeb(spec.host.clone()));
        }
        let store = lookup(&spec.store)?;
        if cluster_spec.services[store.index()].kind != ServiceKind::KvStore {
            return Err(BuildError::KvTargetNotStore {
                from: spec.host.clone(),
                to: spec.store.clone(),
            });
        }
        let call_per_item = match &spec.call_per_item {
            None => None,
            Some((svc, ep)) => {
                let target = lookup(svc)?;
                if cluster_spec.services[target.index()].kind != ServiceKind::Web {
                    return Err(BuildError::CallTargetNotWeb {
                        from: spec.host.clone(),
                        to: svc.clone(),
                    });
                }
                let ep_idx = *endpoint_names[target.index()].get(ep).ok_or_else(|| {
                    BuildError::UnknownEndpoint {
                        service: svc.clone(),
                        endpoint: ep.clone(),
                    }
                })?;
                Some((target, ep_idx))
            }
        };
        if spec.log_every_items == 0 {
            return Err(BuildError::ZeroLogPeriod(spec.host.clone()));
        }
        Ok(DaemonRuntime {
            host,
            store,
            fetch_action: Rc::new(KvAction::FetchSub {
                key: spec.counter.clone(),
            }),
            poll_interval: spec.poll_interval,
            work_per_item: spec.work_per_item,
            call_per_item,
            log_every_items: spec.log_every_items,
            idle_log_after: spec.idle_log_after,
            items_processed: 0,
            idle_since: None,
            phase: Phase::Sleeping,
            waiting: None,
            rng,
        })
    }

    /// Schedules the daemon's first poll.
    pub(crate) fn arm(sim: &mut Sim<Cluster>, idx: usize) {
        sim.schedule_now(move |sim, cl: &mut Cluster| {
            DaemonRuntime::poll(sim, cl, idx);
        });
    }

    /// Issues the `fetch_sub` poll against the work counter.
    fn poll(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
        let (store, host, action) = {
            let d = &cl.daemons[idx];
            (d.store, d.host, Rc::clone(&d.fetch_action))
        };
        cl.daemons[idx].phase = Phase::AwaitFetch;
        let req = Cluster::submit_kv(
            sim,
            cl,
            store,
            action,
            Completion::Daemon { daemon: idx },
            Some(host),
        );
        DaemonRuntime::arm_watchdog(sim, cl, idx, req);
    }

    /// Arms a client-side timeout so a lost response cannot stall the loop.
    fn arm_watchdog(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize, req: RequestId) {
        let timeout = SimDuration::from_secs(5);
        let ev = sim.schedule_after(timeout, move |sim, cl: &mut Cluster| {
            let stalled = cl.daemons[idx]
                .waiting
                .map(|(r, _)| r == req)
                .unwrap_or(false);
            if stalled {
                cl.daemons[idx].waiting = None;
                DaemonRuntime::on_failure(sim, cl, idx);
            }
        });
        cl.daemons[idx].waiting = Some((req, ev));
    }

    /// Entry point for responses addressed to this daemon.
    pub(crate) fn on_response(
        sim: &mut Sim<Cluster>,
        cl: &mut Cluster,
        idx: usize,
        resp: Response,
    ) {
        match cl.daemons[idx].waiting {
            Some((req, ev)) if req == resp.request => {
                sim.cancel(ev);
                cl.daemons[idx].waiting = None;
            }
            _ => return, // stale response after a watchdog fired
        }
        // The daemon's host sees the response packet (attributed to the
        // host's first replica row, where daemon work lives).
        let host = cl.daemons[idx].host;
        let row = cl.row(host, 0);
        cl.counters[row].rx_packets += 1;

        let phase = cl.daemons[idx].phase;
        match phase {
            Phase::AwaitFetch => {
                if resp.status.is_error() {
                    DaemonRuntime::on_failure(sim, cl, idx);
                } else if resp.value > 0 {
                    DaemonRuntime::process_item(sim, cl, idx);
                } else {
                    DaemonRuntime::on_empty(sim, cl, idx);
                }
            }
            Phase::AwaitCall => {
                if resp.status.is_error() {
                    // The per-item call failed; log and move on — the item
                    // was already consumed.
                    let host = cl.daemons[idx].host;
                    let now = sim.now();
                    cl.log(
                        host,
                        now,
                        LogLevel::Error,
                        "error: per-item downstream call failed",
                    );
                }
                DaemonRuntime::item_done(sim, cl, idx);
            }
            Phase::Sleeping => {}
        }
    }

    /// A store operation failed (e.g. the store is unavailable): log an
    /// error at the host and retry after a back-off.
    fn on_failure(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
        let host = cl.daemons[idx].host;
        let now = sim.now();
        cl.log(
            host,
            now,
            LogLevel::Error,
            "error: connection to work store failed",
        );
        cl.daemons[idx].phase = Phase::Sleeping;
        sim.schedule_after(ERROR_BACKOFF, move |sim, cl: &mut Cluster| {
            DaemonRuntime::poll(sim, cl, idx);
        });
    }

    /// The counter had an item: burn per-item CPU, then optionally call the
    /// downstream service.
    fn process_item(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
        {
            let d = &mut cl.daemons[idx];
            d.idle_since = None;
        }
        let host = cl.daemons[idx].host;
        let work = {
            let d = &mut cl.daemons[idx];
            d.work_per_item.sample(&mut d.rng)
        };
        let row = cl.row(host, 0);
        cl.counters[row].add_cpu(work);
        sim.schedule_after(work, move |sim, cl: &mut Cluster| {
            let call = cl.daemons[idx].call_per_item;
            match call {
                Some((target, endpoint)) => {
                    cl.daemons[idx].phase = Phase::AwaitCall;
                    let host = cl.daemons[idx].host;
                    let req = Cluster::submit_handler(
                        sim,
                        cl,
                        target,
                        endpoint,
                        Completion::Daemon { daemon: idx },
                        Some(host),
                    );
                    DaemonRuntime::arm_watchdog(sim, cl, idx, req);
                }
                None => DaemonRuntime::item_done(sim, cl, idx),
            }
        });
    }

    /// Bookkeeping after one item is fully processed.
    fn item_done(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
        let log_now = {
            let d = &mut cl.daemons[idx];
            d.items_processed += 1;
            d.items_processed.is_multiple_of(d.log_every_items)
        };
        if log_now {
            let (host, every) = {
                let d = &cl.daemons[idx];
                (d.host, d.log_every_items)
            };
            let now = sim.now();
            let message = format!("finished processing {every} items");
            cl.log(host, now, LogLevel::Info, &message);
        }
        // Items may be queued up: poll again immediately.
        sim.schedule_now(move |sim, cl: &mut Cluster| {
            DaemonRuntime::poll(sim, cl, idx);
        });
    }

    /// The counter was empty: emit the periodic idle log and sleep.
    fn on_empty(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
        let now = sim.now();
        let (should_log, host) = {
            let d = &mut cl.daemons[idx];
            let since = *d.idle_since.get_or_insert(now);
            let idle_for = now.saturating_since(since);
            if idle_for >= d.idle_log_after {
                d.idle_since = Some(now); // restart the idle timer per log
                (true, d.host)
            } else {
                (false, d.host)
            }
        };
        if should_log {
            let now = sim.now();
            cl.log(
                host,
                now,
                LogLevel::Info,
                "no items to process for more than 30 seconds",
            );
        }
        let delay = {
            let d = &mut cl.daemons[idx];
            d.poll_interval.sample(&mut d.rng)
        };
        cl.daemons[idx].phase = Phase::Sleeping;
        sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
            DaemonRuntime::poll(sim, cl, idx);
        });
    }

    /// Items processed so far (for tests).
    pub(crate) fn items_processed(&self) -> u64 {
        self.items_processed
    }
}

/// Public read-only view of daemon progress, exposed on [`Cluster`].
impl Cluster {
    /// Total items processed by daemon `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn daemon_items_processed(&self, idx: usize) -> u64 {
        self.daemons[idx].items_processed()
    }

    /// Number of daemons configured.
    pub fn num_daemons(&self) -> usize {
        self.daemons.len()
    }
}
