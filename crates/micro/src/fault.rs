//! Fault semantics understood by the cluster runtime.
//!
//! The *injection platform* (campaign scheduling, experiment windows) lives
//! in `icfl-faults`; this module defines only how an active fault changes a
//! service's behavior, because the cluster engine must interpret it.

use icfl_sim::DurationDist;
use serde::{Deserialize, Serialize};

/// A fault that can be active on a service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The paper's `http-service-unavailable` fault: the Kubernetes service
    /// port points nowhere, so connections are refused *fast*. The container
    /// keeps running (idle CPU continues) but receives no traffic.
    ServiceUnavailable,
    /// Each delivered request is delayed by a sampled extra latency before
    /// processing (network or GC stall).
    ExtraLatency(DurationDist),
    /// Each delivered request independently fails with an internal error
    /// with this probability, after being accepted.
    ErrorRate(f64),
    /// Each packet in either direction is independently dropped with this
    /// probability; a dropped request or response surfaces as a caller
    /// timeout.
    PacketLoss(f64),
    /// Handler compute times are multiplied by this factor (CPU contention
    /// from a noisy neighbour).
    CpuStress(f64),
    /// A gray (partial) failure: the target keeps serving, but compute
    /// times are multiplied by `latency_factor` and each delivered request
    /// independently fails with probability `error_prob`. Scoped to one
    /// replica via [`TargetId::Instance`](crate::TargetId::Instance), this
    /// models the "one slow replica behind a load balancer" scenario that
    /// service-aggregated counters cannot see.
    DegradedReplica {
        /// Multiplier applied to handler compute times (≥ 1 slows down).
        latency_factor: f64,
        /// Per-request probability of an injected internal error.
        error_prob: f64,
    },
}

impl FaultKind {
    /// Short stable identifier used in traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ServiceUnavailable => "service-unavailable",
            FaultKind::ExtraLatency(_) => "extra-latency",
            FaultKind::ErrorRate(_) => "error-rate",
            FaultKind::PacketLoss(_) => "packet-loss",
            FaultKind::CpuStress(_) => "cpu-stress",
            FaultKind::DegradedReplica { .. } => "degraded-replica",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_sim::SimDuration;

    #[test]
    fn labels_are_distinct() {
        let faults = [
            FaultKind::ServiceUnavailable,
            FaultKind::ExtraLatency(DurationDist::constant(SimDuration::from_millis(10))),
            FaultKind::ErrorRate(0.5),
            FaultKind::PacketLoss(0.1),
            FaultKind::CpuStress(2.0),
            FaultKind::DegradedReplica {
                latency_factor: 3.0,
                error_prob: 0.05,
            },
        ];
        let mut labels: Vec<&str> = faults.iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), faults.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(
            FaultKind::ServiceUnavailable.to_string(),
            "service-unavailable"
        );
    }
}
