//! Fuzz properties of the HTTP/1.1 codec: arbitrary bytes, truncated
//! bodies, oversized lines, pathological chunk boundaries, and stalling
//! peers never panic the parser — every outcome is a clean parse, a clean
//! EOF, or a typed error the server maps to a 4xx — and parsing is
//! invariant under how the bytes arrive (split writes).

use icfl_server::http::{read_request, read_response, write_request, write_response};
use proptest::prelude::*;
use std::io::{self, BufRead, Read};
use std::time::{Duration, Instant};

/// A `BufRead` over in-memory bytes that exposes them in caller-chosen
/// chunk sizes — simulating TCP segmentation / split writes.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next_chunk: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> ChunkedReader {
        ChunkedReader {
            data,
            pos: 0,
            chunks,
            next_chunk: 0,
        }
    }

    fn chunk_len(&mut self) -> usize {
        let len = self
            .chunks
            .get(self.next_chunk)
            .copied()
            .unwrap_or(usize::MAX)
            .max(1);
        self.next_chunk = (self.next_chunk + 1) % self.chunks.len().max(1);
        len
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let take = self
            .chunk_len()
            .min(buf.len())
            .min(self.data.len() - self.pos);
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

impl BufRead for ChunkedReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        let take = self.chunk_len().min(self.data.len() - self.pos);
        Ok(&self.data[self.pos..self.pos + take])
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

/// A peer that delivers a prefix then stalls forever: every read past the
/// prefix fails like an expired `SO_RCVTIMEO` (`WouldBlock`).
struct StallingReader {
    data: Vec<u8>,
    pos: usize,
}

impl Read for StallingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
        }
        let take = buf.len().min(self.data.len() - self.pos);
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

impl BufRead for StallingReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos >= self.data.len() {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
        }
        Ok(&self.data[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

/// The only error kinds the server's connection loop handles; anything
/// else would fall into the quiet-close arm and hide a parser bug.
fn is_typed(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof | io::ErrorKind::TimedOut
    )
}

fn valid_request(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_request(&mut bytes, method, path, body).unwrap();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: parse never panics, and returns a request, a
    /// clean EOF, or a typed error — nothing the server would close on
    /// silently beyond genuine idle EOF.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut r = std::io::Cursor::new(data);
        match read_request(&mut r, None) {
            Ok(_) => {}
            Err(e) => prop_assert!(is_typed(&e), "untyped error kind {:?}: {e}", e.kind()),
        }
        let mut r = std::io::Cursor::new(r.into_inner());
        match read_response(&mut r) {
            Ok(_) => {}
            Err(e) => prop_assert!(is_typed(&e), "untyped error kind {:?}: {e}", e.kind()),
        }
    }

    /// A valid request truncated anywhere: never a panic; a cut inside
    /// the body is the typed `UnexpectedEof`, a cut at zero is clean EOF,
    /// and only an exactly-complete message parses.
    #[test]
    fn truncated_requests_are_typed(
        body in proptest::collection::vec(any::<u8>(), 0..512),
        frac in 0.0f64..1.0,
    ) {
        let bytes = valid_request("POST", "/ingest/t", &body);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let mut r = std::io::Cursor::new(bytes[..cut].to_vec());
        match read_request(&mut r, None) {
            Ok(Some(req)) => {
                // Only possible when the cut landed exactly at the end.
                prop_assert_eq!(cut, bytes.len());
                prop_assert_eq!(req.body, body.clone());
            }
            Ok(None) => prop_assert_eq!(cut, 0),
            Err(e) => prop_assert!(is_typed(&e), "untyped error kind {:?}: {e}", e.kind()),
        }
    }

    /// Oversized request lines are rejected typed (`InvalidData`), not
    /// buffered without bound.
    #[test]
    fn oversized_lines_are_rejected(extra in 0usize..4096) {
        let line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8 * 1024 + extra));
        let mut r = std::io::Cursor::new(line.into_bytes());
        let e = read_request(&mut r, None).unwrap_err();
        prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    /// Parsing is invariant under delivery segmentation: any chunking of
    /// the byte stream yields exactly the contiguous parse.
    #[test]
    fn split_writes_parse_identically(
        body in proptest::collection::vec(any::<u8>(), 0..512),
        path_picks in proptest::collection::vec(0usize..40, 1..32),
        chunks in proptest::collection::vec(1usize..17, 1..12),
    ) {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:._-";
        let path_suffix: String = path_picks
            .iter()
            .map(|&i| ALPHABET[i % ALPHABET.len()] as char)
            .collect();
        let bytes = valid_request("POST", &format!("/ingest/{path_suffix}"), &body);
        let mut contiguous = std::io::Cursor::new(bytes.clone());
        let reference = read_request(&mut contiguous, None).unwrap().unwrap();
        let mut chunked = ChunkedReader::new(bytes, chunks);
        let parsed = read_request(&mut chunked, None).unwrap().unwrap();
        prop_assert_eq!(parsed.method, reference.method);
        prop_assert_eq!(parsed.path, reference.path);
        prop_assert_eq!(parsed.headers, reference.headers);
        prop_assert_eq!(parsed.body, reference.body);
    }

    /// A peer that stalls after a partial message is a typed timeout; a
    /// peer that stalls before sending anything propagates as the idle
    /// kernel timeout (quiet close) — never a panic, never a hang.
    #[test]
    fn stalls_become_typed_timeouts(cut_frac in 0.0f64..1.0) {
        let bytes = valid_request("POST", "/ingest/t", b"0123456789abcdef");
        let cut = (((bytes.len() - 1) as f64) * cut_frac) as usize;
        let mut r = StallingReader { data: bytes[..cut].to_vec(), pos: 0 };
        let e = read_request(&mut r, None).unwrap_err();
        if cut == 0 {
            prop_assert_eq!(e.kind(), io::ErrorKind::WouldBlock, "idle stall: {e}");
        } else {
            prop_assert_eq!(e.kind(), io::ErrorKind::TimedOut, "mid-message stall: {e}");
        }
    }

    /// Round trip: a written response parses back to the same status,
    /// headers, and body regardless of segmentation.
    #[test]
    fn response_roundtrip(
        status_pick in 0usize..8,
        body in proptest::collection::vec(any::<u8>(), 0..256),
        chunks in proptest::collection::vec(1usize..9, 1..6),
    ) {
        let status = [200u16, 400, 404, 408, 409, 429, 500, 503][status_pick];
        let mut bytes = Vec::new();
        write_response(&mut bytes, status, "X", &[("x-marker", "1")], &body, true).unwrap();
        let mut r = ChunkedReader::new(bytes, chunks);
        let resp = read_response(&mut r).unwrap().unwrap();
        prop_assert_eq!(resp.status, status);
        prop_assert_eq!(resp.header("x-marker"), Some("1"));
        prop_assert_eq!(resp.body, body);
    }
}

/// An expired wall-clock deadline mid-message surfaces as the typed
/// timeout even when the transport itself keeps delivering bytes.
#[test]
fn deadline_mid_message_is_typed_timeout() {
    let bytes = valid_request("POST", "/ingest/t", &[b'x'; 64]);
    let mut r = ChunkedReader::new(bytes, vec![1]);
    let past = Instant::now() - Duration::from_secs(1);
    let e = read_request(&mut r, Some(past)).unwrap_err();
    assert_eq!(e.kind(), io::ErrorKind::TimedOut, "{e}");
}

/// A `Content-Length` pointing past the cap is rejected before any
/// buffer of that size is allocated.
#[test]
fn oversized_body_is_rejected() {
    let msg = b"POST /ingest/t HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n";
    let mut r = std::io::Cursor::new(msg.to_vec());
    let e = read_request(&mut r, None).unwrap_err();
    assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{e}");
}
