//! Backpressure properties of the tenant pipeline: under arbitrary batch
//! partitions and tenant mixes squeezed through a tiny queue bound, the
//! pipeline never drops a scrape silently, the queue's high-water mark
//! never exceeds its bound, and batches rejected with `QueueFull` and
//! re-sent after a drain converge to exactly the verdicts of an
//! unthrottled replay.

use icfl_apps::pattern1;
use icfl_core::{CampaignRun, CausalModel, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{record_trace, Episode, FeedConfig, FeedSession, IncidentSchedule, OnlineConfig};
use icfl_scenario::ScrapeTrace;
use icfl_server::tenant::{Reject, TenantPipeline};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

struct Fixture {
    model: CausalModel,
    trace: ScrapeTrace,
    /// Serialized verdicts of an unthrottled in-process replay.
    reference: String,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let app = pattern1();
        let cfg = RunConfig::quick(42);
        let run = CampaignRun::execute(&app, &cfg).unwrap();
        let model = run
            .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .unwrap();
        let (_, targets) = app.build(42).unwrap();
        let schedule = IncidentSchedule::new(vec![Episode::single(
            SimTime::from_secs(100),
            targets[0],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        )]);
        let trace = record_trace(&app, &schedule, &OnlineConfig::quick(), 42).unwrap();

        let mut feed = new_session(&model, &trace);
        for (at, row) in &trace.scrapes {
            feed.push(SimTime::from_nanos(*at), row.clone()).unwrap();
        }
        let reference = serde_json::to_string(&feed.verdicts()).unwrap();
        assert!(
            reference != "[]",
            "fixture replay must detect its scheduled incident"
        );
        Fixture {
            model,
            trace,
            reference,
        }
    })
}

fn new_session(model: &CausalModel, trace: &ScrapeTrace) -> FeedSession {
    FeedSession::new(
        model.clone(),
        trace.meta.service_names.clone(),
        FeedConfig::from_online(&OnlineConfig::quick()),
    )
    .unwrap()
}

/// Pushes the whole trace through `pipeline` partitioned by `sizes`
/// (cycled), re-sending on `QueueFull` until accepted. Returns
/// (batches submitted, 429-style rejections observed).
fn squeeze(pipeline: &TenantPipeline, trace: &ScrapeTrace, sizes: &[usize]) -> (u64, u64) {
    let scrapes = &trace.scrapes;
    let mut cursor = 0;
    let mut batches = 0u64;
    let mut rejected = 0u64;
    let mut i = 0;
    while cursor < scrapes.len() {
        let want = sizes[i % sizes.len()].min(scrapes.len() - cursor);
        i += 1;
        let batch: Vec<_> = scrapes[cursor..cursor + want].to_vec();
        loop {
            match pipeline.submit(batch.clone()) {
                Ok(_) => break,
                Err(Reject::QueueFull { .. }) => {
                    rejected += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("unexpected reject: {e}"),
            }
        }
        batches += 1;
        cursor += want;
    }
    (batches, rejected)
}

fn wait_drained(pipeline: &TenantPipeline) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pipeline.drained() {
        assert!(Instant::now() < deadline, "pipeline did not drain");
        std::thread::sleep(Duration::from_micros(200));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single tenant, tiny queue: nothing is lost, the bound holds, and
    /// the throttled replay's verdicts byte-match the unthrottled one.
    #[test]
    fn tiny_queue_never_drops_and_converges(
        cap in 1usize..4,
        sizes in proptest::collection::vec(1usize..40, 1..8),
    ) {
        let fx = fixture();
        let pipeline =
            TenantPipeline::open("pattern1:bp", new_session(&fx.model, &fx.trace), cap, 1);
        let (batches, _rejected) = squeeze(&pipeline, &fx.trace, &sizes);
        wait_drained(&pipeline);

        prop_assert_eq!(pipeline.worker_error(), None);
        prop_assert_eq!(pipeline.accepted(), batches);
        prop_assert_eq!(pipeline.processed(), batches);
        prop_assert_eq!(pipeline.scrapes_accepted(), fx.trace.scrapes.len() as u64);
        prop_assert!(
            pipeline.queue_high_water() <= cap,
            "high-water {} exceeded bound {}",
            pipeline.queue_high_water(),
            cap
        );
        let (ingested, verdicts) = pipeline
            .with_session(|s| (s.scrapes_ingested(), serde_json::to_string(&s.verdicts()).unwrap()));
        prop_assert_eq!(ingested, fx.trace.scrapes.len() as u64);
        prop_assert_eq!(verdicts, fx.reference.clone());
    }

    /// Tenant mixes: several pipelines squeezed concurrently through
    /// independent tiny queues each converge to the same verdicts.
    #[test]
    fn tenant_mix_is_isolated(
        cap in 1usize..3,
        sizes_a in proptest::collection::vec(1usize..40, 1..6),
        sizes_b in proptest::collection::vec(1usize..40, 1..6),
    ) {
        let fx = fixture();
        let a = TenantPipeline::open("pattern1:a", new_session(&fx.model, &fx.trace), cap, 1);
        let b = TenantPipeline::open("pattern1:b", new_session(&fx.model, &fx.trace), cap, 1);
        std::thread::scope(|scope| {
            let ta = scope.spawn(|| squeeze(&a, &fx.trace, &sizes_a));
            let tb = scope.spawn(|| squeeze(&b, &fx.trace, &sizes_b));
            ta.join().unwrap();
            tb.join().unwrap();
        });
        for pipeline in [&a, &b] {
            wait_drained(pipeline);
            prop_assert_eq!(pipeline.worker_error(), None);
            prop_assert_eq!(pipeline.scrapes_accepted(), fx.trace.scrapes.len() as u64);
            prop_assert!(pipeline.queue_high_water() <= cap);
            let verdicts =
                pipeline.with_session(|s| serde_json::to_string(&s.verdicts()).unwrap());
            prop_assert_eq!(verdicts, fx.reference.clone());
        }
    }
}

/// Deterministic rejects stay typed and non-destructive: an out-of-order
/// batch is refused without poisoning the pipeline, and a malformed
/// (wrong-width) batch never reaches the session.
#[test]
fn typed_rejects_leave_pipeline_healthy() {
    let fx = fixture();
    let pipeline = TenantPipeline::open("pattern1:rej", new_session(&fx.model, &fx.trace), 8, 1);
    let scrapes = &fx.trace.scrapes;

    pipeline.submit(scrapes[..4].to_vec()).unwrap();
    // Replaying the frontier is an ordering violation…
    match pipeline.submit(scrapes[3..5].to_vec()) {
        Err(Reject::OutOfOrder(_)) => {}
        other => panic!("expected OutOfOrder, got {other:?}"),
    }
    // …as is an internally unsorted batch…
    let mut unsorted = scrapes[5..7].to_vec();
    unsorted.swap(0, 1);
    match pipeline.submit(unsorted) {
        Err(Reject::OutOfOrder(_)) => {}
        other => panic!("expected OutOfOrder, got {other:?}"),
    }
    // …and wrong-width or empty batches are malformed.
    let (at, row) = &scrapes[5];
    match pipeline.submit(vec![(*at, row[1..].to_vec())]) {
        Err(Reject::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
    match pipeline.submit(Vec::new()) {
        Err(Reject::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }

    // The pipeline is still healthy: the rest of the trace goes through
    // and converges to the reference verdicts.
    pipeline.submit(scrapes[4..].to_vec()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pipeline.drained() {
        assert!(Instant::now() < deadline, "pipeline did not drain");
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(pipeline.worker_error(), None);
    assert_eq!(pipeline.scrapes_accepted(), scrapes.len() as u64);
    let verdicts = pipeline.with_session(|s| serde_json::to_string(&s.verdicts()).unwrap());
    assert_eq!(verdicts, fx.reference);
}
