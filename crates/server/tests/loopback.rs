//! Loopback end-to-end tests: a real `IcflServer` on an ephemeral port,
//! real TCP connections, recorded scenario traces replayed through the
//! load generator — and the server's per-tenant verdicts byte-compared
//! against an in-process [`FeedSession`] replay of the same trace. This
//! pins the full networked path (codec → queue → worker → session) to
//! the deterministic core.

use icfl_apps::App;
use icfl_core::{CampaignRun, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{
    record_trace, Episode, FeedConfig, FeedSession, FeedVerdict, IncidentSchedule, ModelMeta,
    ModelRegistry, OnlineConfig,
};
use icfl_scenario::ScrapeTrace;
use icfl_server::loadgen::{run as run_loadgen, LoadMode, LoadgenConfig};
use icfl_server::{HttpClient, IcflServer, IncidentsReport, ServerConfig, ServerHandle};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// Shared fixture: one registry with trained fig2 + causalbench models
/// and one recorded trace per app. Training is the expensive part, so it
/// happens once per test binary.
struct Fixture {
    registry_root: PathBuf,
    fig2: ScrapeTrace,
    causalbench: ScrapeTrace,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let registry_root =
            std::env::temp_dir().join(format!("icfl-loopback-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&registry_root);
        let registry = ModelRegistry::open(&registry_root).unwrap();
        let fig2 = prepare(&registry, icfl_apps::fig2_topology());
        let causalbench = prepare(&registry, icfl_apps::causalbench());
        Fixture {
            registry_root,
            fig2,
            causalbench,
        }
    })
}

/// Trains `app`'s model into `registry` and records the scrape trace of a
/// two-outage session (the `session_smoke` schedule shape).
fn prepare(registry: &ModelRegistry, app: App) -> ScrapeTrace {
    let cfg = RunConfig::quick(42);
    let run = CampaignRun::execute(&app, &cfg).unwrap();
    let model = run
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    registry
        .save(&app.name, ModelMeta::default(), &model)
        .unwrap();

    let (_, targets) = app.build(42).unwrap();
    let schedule = IncidentSchedule::new(vec![
        Episode::single(
            SimTime::from_secs(100),
            targets[0],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
        Episode::single(
            SimTime::from_secs(260),
            targets[1],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
    ]);
    record_trace(&app, &schedule, &OnlineConfig::quick(), 42).unwrap()
}

fn start_server(fx: &Fixture) -> ServerHandle {
    IcflServer::start(ServerConfig::quick(&fx.registry_root)).unwrap()
}

/// The reference: replay `trace` through an in-process `FeedSession` on
/// the same registry model the server serves.
fn inprocess_verdicts(fx: &Fixture, app_name: &str, trace: &ScrapeTrace) -> Vec<FeedVerdict> {
    let model = ModelRegistry::open(&fx.registry_root)
        .unwrap()
        .load_latest(app_name)
        .unwrap()
        .model;
    let mut feed = FeedSession::new(
        model,
        trace.meta.service_names.clone(),
        FeedConfig::from_online(&OnlineConfig::quick()),
    )
    .unwrap();
    for (at, row) in &trace.scrapes {
        feed.push(SimTime::from_nanos(*at), row.clone()).unwrap();
    }
    feed.verdicts()
}

/// Streams a whole trace to `tenant` in fixed-size batches over one
/// keep-alive connection, honoring 429 backpressure.
fn stream_trace(addr: &str, tenant: &str, trace: &ScrapeTrace) {
    let mut client = HttpClient::connect(addr);
    let meta = serde_json::to_string(&trace.meta).unwrap();
    let resp = client
        .post(&format!("/session/{tenant}"), meta.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "session {tenant}: {}", resp.text());
    for chunk in trace.scrapes.chunks(32) {
        let mut body = String::new();
        for (at, row) in chunk {
            body.push_str(&icfl_scenario::trace::encode_scrape_line(*at, row));
            body.push('\n');
        }
        loop {
            let resp = client
                .post(&format!("/ingest/{tenant}"), body.as_bytes())
                .unwrap();
            match resp.status {
                200 => break,
                429 => std::thread::sleep(Duration::from_millis(5)),
                status => panic!("ingest {tenant}: {status} {}", resp.text()),
            }
        }
    }
}

fn fetch_report(addr: &str, tenant: &str) -> IncidentsReport {
    let mut client = HttpClient::connect(addr);
    let drain = client.get(&format!("/drain/{tenant}")).unwrap();
    assert_eq!(drain.status, 200, "drain {tenant}: {}", drain.text());
    let resp = client.get(&format!("/incidents/{tenant}")).unwrap();
    assert_eq!(resp.status, 200, "incidents {tenant}: {}", resp.text());
    serde_json::from_str(&resp.text()).unwrap()
}

/// The tentpole e2e property: the load generator replays the recorded
/// fig2 session against a live server, every scheduled incident is
/// detected, and the served verdicts byte-match the in-process replay.
#[test]
fn loadgen_replay_detects_all_and_matches_inprocess() {
    let fx = fixture();
    let handle = start_server(fx);

    let summary = run_loadgen(&LoadgenConfig {
        addr: handle.addr().to_string(),
        traces: vec![fx.fig2.clone()],
        total: fx.fig2.scrapes.len() as u64,
        concurrency: 1,
        bulk_size: 64,
        mode: LoadMode::Bulk,
        rate: 0.0,
        seed: 1,
        tenant_prefix: "e2e-".into(),
        max_transport_retries: 0,
        max_reject_retries: 0,
    })
    .unwrap();

    assert_eq!(summary.scrapes_sent, fx.fig2.scrapes.len() as u64);
    assert_eq!(summary.tenants.len(), 1);
    assert_eq!(
        summary.tenants[0].scrapes_accepted,
        fx.fig2.scrapes.len() as u64,
        "scrapes were dropped"
    );
    assert_eq!(summary.incidents_expected(), 2);
    assert_eq!(
        summary.incidents_detected(),
        summary.incidents_expected(),
        "a scheduled incident went undetected: {}",
        summary.one_line()
    );
    // Detection latency is measured and plausible (replayed faults take
    // at least one hop and at most the fault duration to confirm).
    let p99 = summary.detect_p(0.99).unwrap();
    assert!(
        p99 > 0.0 && p99 <= 120_000.0,
        "implausible detection p99 {p99}ms"
    );

    let reference = inprocess_verdicts(fx, "fig2", &fx.fig2);
    assert!(!reference.is_empty());
    assert_eq!(
        serde_json::to_string(&summary.tenants[0].verdicts).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "served verdicts diverged from the in-process replay"
    );
}

/// Two apps served concurrently on one server, each tenant's verdicts
/// byte-identical to its single-tenant in-process replay — tenants are
/// fully isolated.
#[test]
fn concurrent_tenants_match_single_tenant_replays() {
    let fx = fixture();
    let handle = start_server(fx);
    let addr = handle.addr().to_string();

    std::thread::scope(|scope| {
        scope.spawn(|| stream_trace(&addr, "fig2:mt", &fx.fig2));
        scope.spawn(|| stream_trace(&addr, "causalbench:mt", &fx.causalbench));
    });

    for (tenant, app_name, trace) in [
        ("fig2:mt", "fig2", &fx.fig2),
        ("causalbench:mt", "causalbench", &fx.causalbench),
    ] {
        let report = fetch_report(&addr, tenant);
        assert_eq!(report.worker_error, None);
        assert_eq!(report.scrapes_accepted, trace.scrapes.len() as u64);
        assert_eq!(report.batches_processed, report.batches_accepted);
        assert!(
            !report.verdicts.is_empty(),
            "{tenant}: no incidents detected"
        );
        let reference = inprocess_verdicts(fx, app_name, trace);
        assert_eq!(
            serde_json::to_string(&report.verdicts).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "{tenant}: verdicts diverged from the single-tenant replay"
        );
    }
}

/// The HTTP surface behaves: health and metrics respond, unknown tenants
/// 404, duplicate registration 409s, malformed scrape lines 400 without
/// being enqueued.
#[test]
fn http_surface_and_error_paths() {
    let fx = fixture();
    let handle = start_server(fx);
    let addr = handle.addr().to_string();
    let mut client = HttpClient::connect(&addr);

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().starts_with("ok tenants="));

    assert_eq!(client.get("/incidents/nope").unwrap().status, 404);
    assert_eq!(client.get("/drain/nope").unwrap().status, 404);
    assert_eq!(client.get("/nosuchroute").unwrap().status, 404);
    assert_eq!(
        client.post("/ingest/nope", b"[1,[[0]]]").unwrap().status,
        404
    );

    // Register a tenant; a second registration under the same name 409s,
    // and a tenant whose app has no trained model 404s.
    let meta = serde_json::to_string(&fx.fig2.meta).unwrap();
    assert_eq!(
        client
            .post("/session/fig2:err", meta.as_bytes())
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client
            .post("/session/fig2:err", meta.as_bytes())
            .unwrap()
            .status,
        409
    );
    assert_eq!(
        client
            .post("/session/ghost:err", meta.as_bytes())
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client
            .post("/session/bad name!", meta.as_bytes())
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client.post("/session/ok.name", b"not json").unwrap().status,
        400
    );

    // Malformed and out-of-order ingest bodies are rejected typed.
    assert_eq!(
        client.post("/ingest/fig2:err", b"garbage").unwrap().status,
        400
    );
    let (t0, row0) = &fx.fig2.scrapes[0];
    let line = icfl_scenario::trace::encode_scrape_line(*t0, row0);
    let two = format!("{line}\n{line}\n");
    assert_eq!(
        client
            .post("/ingest/fig2:err", two.as_bytes())
            .unwrap()
            .status,
        409,
        "duplicate timestamps within a batch must be rejected"
    );
    let first = client.post("/ingest/fig2:err", line.as_bytes()).unwrap();
    assert_eq!(first.status, 200);
    assert!(!first.text().contains("\"deduped\""));
    // A byte-identical re-send (a retry after a lost ack) is acknowledged
    // idempotently instead of 409ing the client into a corner.
    let resent = client.post("/ingest/fig2:err", line.as_bytes()).unwrap();
    assert_eq!(
        resent.status,
        200,
        "replayed batch must be deduped, not rejected: {}",
        resent.text()
    );
    assert!(
        resent.text().contains("\"deduped\":true"),
        "dedupe ack missing marker: {}",
        resent.text()
    );
    // A *conflicting* overlap (same first timestamp, different batch
    // shape) is not a retry and still 409s.
    let (t1, row1) = &fx.fig2.scrapes[1];
    let line2 = icfl_scenario::trace::encode_scrape_line(*t1, row1);
    let overlap = format!("{line}\n{line2}\n");
    assert_eq!(
        client
            .post("/ingest/fig2:err", overlap.as_bytes())
            .unwrap()
            .status,
        409,
        "conflicting overlap must still be rejected"
    );

    // The journal shows up on /metrics with the server counters.
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(
        text.contains("icfl_server_batches_accepted_total"),
        "metrics exposition missing server counters:\n{text}"
    );
    drop(handle);
}

/// The `/explain` surface: a drained tenant serves one evidence chain per
/// confirmed incident, byte-identical (modulo the trailing newline every
/// JSON reply carries) to an in-process replay stamped with the same
/// registry provenance; error paths are typed; and the live `/metrics`
/// exposition passes the promtool-style lint with verdict-latency
/// exemplars linking buckets to incident ids.
#[test]
fn explain_serves_byte_equal_chains_and_metrics_lint() {
    let fx = fixture();
    let handle = start_server(fx);
    let addr = handle.addr().to_string();
    let tenant = "fig2:explain";
    stream_trace(&addr, tenant, &fx.fig2);
    let report = fetch_report(&addr, tenant);
    assert!(!report.verdicts.is_empty(), "no incidents confirmed");

    // In-process reference with the provenance the server stamps at
    // registration: registry key + version + record metadata.
    let record = ModelRegistry::open(&fx.registry_root)
        .unwrap()
        .load_latest("fig2")
        .unwrap();
    let provenance = icfl_online::ModelProvenance {
        key: "fig2".into(),
        version: record.version,
        meta: record.meta,
    };
    let mut feed = FeedSession::new(
        record.model,
        fx.fig2.meta.service_names.clone(),
        FeedConfig::from_online(&OnlineConfig::quick()),
    )
    .unwrap()
    .with_provenance(provenance);
    for (at, row) in &fx.fig2.scrapes {
        feed.push(SimTime::from_nanos(*at), row.clone()).unwrap();
    }
    let reference: Vec<icfl_online::EvidenceChain> = feed.chains().into_iter().cloned().collect();
    assert_eq!(
        reference.len(),
        report.verdicts.len(),
        "every tracked incident must carry a chain"
    );

    let mut client = HttpClient::connect(&addr);
    for (i, chain) in reference.iter().enumerate() {
        let resp = client.get(&format!("/explain/{tenant}/{i}")).unwrap();
        assert_eq!(resp.status, 200, "explain {i}: {}", resp.text());
        assert_eq!(
            resp.text().trim_end_matches('\n'),
            serde_json::to_string(chain).unwrap(),
            "served chain {i} diverged from the in-process replay"
        );
        let served: icfl_online::EvidenceChain = serde_json::from_str(&resp.text()).unwrap();
        assert_eq!(served.format_version, icfl_online::CHAIN_FORMAT_VERSION);
        assert!(
            !served.windows.is_empty() && !served.transitions.is_empty(),
            "chain {i} is missing flight-recorder evidence"
        );
    }

    // Typed error paths: unknown tenant, non-numeric id, out-of-range
    // incident, and a path with no id segment at all.
    assert_eq!(client.get("/explain/ghost/0").unwrap().status, 404);
    assert_eq!(
        client
            .get(&format!("/explain/{tenant}/notanumber"))
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .get(&format!("/explain/{tenant}/999"))
            .unwrap()
            .status,
        404
    );
    assert_eq!(client.get("/explain/justonesegment").unwrap().status, 400);

    // The whole exposition lints clean (typed series, bucket order,
    // explicit +Inf, count/sum agreement) and the verdict-latency
    // histogram carries exemplars pointing at incident ids.
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    if let Err(errs) = icfl_obs::lint_exposition(&text) {
        panic!("exposition lint failed:\n{}", errs.join("\n"));
    }
    assert!(
        text.contains("icfl_server_ingest_to_verdict_latency_bucket"),
        "verdict-latency histogram missing from /metrics:\n{text}"
    );
    assert!(
        text.contains("# {incident_id=\""),
        "latency buckets carry no incident exemplars:\n{text}"
    );
    drop(handle);
}
