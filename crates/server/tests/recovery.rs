//! Crash-safety end-to-end tests: a server killed mid-campaign (real
//! subprocess `SIGKILL` and the in-process simulated crash) and restarted
//! over the same state directory serves `/incidents` output byte-equal to
//! an uninterrupted run; re-sent batches are acknowledged idempotently;
//! a panicking tenant worker is restarted from the in-memory checkpoint;
//! and a POST racing `/drain` gets a typed reject, never a silent drop.

use icfl_apps::pattern1;
use icfl_core::{CampaignRun, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{
    record_trace, Episode, IncidentSchedule, ModelMeta, ModelRegistry, OnlineConfig,
};
use icfl_scenario::ScrapeTrace;
use icfl_server::tenant::TenantPipeline;
use icfl_server::{HttpClient, IcflServer, IncidentsReport, ServerConfig};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const CHUNK: usize = 25;

struct Fixture {
    registry_root: PathBuf,
    trace: ScrapeTrace,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let registry_root =
            std::env::temp_dir().join(format!("icfl-recovery-models-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&registry_root);
        let registry = ModelRegistry::open(&registry_root).unwrap();
        let app = pattern1();
        let cfg = RunConfig::quick(42);
        let run = CampaignRun::execute(&app, &cfg).unwrap();
        let model = run
            .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .unwrap();
        registry
            .save(&app.name, ModelMeta::default(), &model)
            .unwrap();
        let (_, targets) = app.build(42).unwrap();
        let schedule = IncidentSchedule::new(vec![Episode::single(
            SimTime::from_secs(100),
            targets[0],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        )]);
        let trace = record_trace(&app, &schedule, &OnlineConfig::quick(), 42).unwrap();
        Fixture {
            registry_root,
            trace,
        }
    })
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icfl-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_cfg(fx: &Fixture, state_dir: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        // Aggressive cadence/fsync so short tests cross several
        // checkpoints and torn-tail windows.
        checkpoint_every_ticks: 2,
        fsync_every_batches: 2,
        state_dir,
        ..ServerConfig::quick(&fx.registry_root)
    }
}

fn register(addr: &str, tenant: &str, trace: &ScrapeTrace) {
    let mut client = HttpClient::connect(addr);
    let meta = serde_json::to_string(&trace.meta).unwrap();
    let resp = client
        .post(&format!("/session/{tenant}"), meta.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "session {tenant}: {}", resp.text());
}

fn chunk_body(trace: &ScrapeTrace, index: usize) -> Option<String> {
    let chunk = trace.scrapes.chunks(CHUNK).nth(index)?;
    let mut body = String::new();
    for (at, row) in chunk {
        body.push_str(&icfl_scenario::trace::encode_scrape_line(*at, row));
        body.push('\n');
    }
    Some(body)
}

/// Sends chunks `[from, to)`; 429 waits, anything else but 200 panics.
/// Returns how many of the sent chunks were acknowledged as duplicates.
fn send_chunks(addr: &str, tenant: &str, trace: &ScrapeTrace, from: usize, to: usize) -> usize {
    let mut client = HttpClient::connect(addr);
    let mut duplicates = 0;
    for index in from..to {
        let Some(body) = chunk_body(trace, index) else {
            break;
        };
        loop {
            let resp = client
                .post(&format!("/ingest/{tenant}"), body.as_bytes())
                .unwrap();
            match resp.status {
                200 => {
                    if resp.text().contains("\"deduped\":true") {
                        duplicates += 1;
                    }
                    break;
                }
                429 => std::thread::sleep(Duration::from_millis(5)),
                status => panic!("ingest {tenant} chunk {index}: {status} {}", resp.text()),
            }
        }
    }
    duplicates
}

/// Drains `tenant` and returns the raw `/incidents` body — the bytes a
/// network client would see, which is what must survive a crash.
fn drain_and_fetch(addr: &str, tenant: &str) -> Vec<u8> {
    let mut client = HttpClient::connect(addr);
    let drain = client.get(&format!("/drain/{tenant}")).unwrap();
    assert_eq!(drain.status, 200, "drain {tenant}: {}", drain.text());
    let resp = client.get(&format!("/incidents/{tenant}")).unwrap();
    assert_eq!(resp.status, 200, "incidents {tenant}: {}", resp.text());
    resp.body
}

/// The raw `/explain` reply for incident 0 — status and body — which must
/// also survive a crash byte-for-byte (the flight recorder and open
/// chains ride the same checkpoints as the verdicts).
fn fetch_explain(addr: &str, tenant: &str) -> (u16, Vec<u8>) {
    let mut client = HttpClient::connect(addr);
    let resp = client.get(&format!("/explain/{tenant}/0")).unwrap();
    (resp.status, resp.body)
}

/// The uninterrupted reference: a durable server that streams the whole
/// trace without a crash, on its own state dir. Returns the `/incidents`
/// body and the `/explain/<tenant>/0` body.
fn reference_body(fx: &Fixture, name: &str, tenant: &str) -> (Vec<u8>, Vec<u8>) {
    let state = fresh_dir(name);
    let handle = IcflServer::start(server_cfg(fx, Some(state.clone()))).unwrap();
    let addr = handle.addr().to_string();
    register(&addr, tenant, &fx.trace);
    send_chunks(&addr, tenant, &fx.trace, 0, usize::MAX);
    let body = drain_and_fetch(&addr, tenant);
    let (explain_status, explain) = fetch_explain(&addr, tenant);
    assert_eq!(
        explain_status, 200,
        "reference run must serve a chain for incident 0"
    );
    drop(handle);
    let _ = std::fs::remove_dir_all(&state);
    (body, explain)
}

fn total_chunks(trace: &ScrapeTrace) -> usize {
    trace.scrapes.chunks(CHUNK).count()
}

/// Kills (and reaps) the subprocess server on drop, so a failing assert
/// never leaks a listener.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns the real `icfl-server` binary on an ephemeral port and waits
/// for its `--port-file` (written only once recovery finished and the
/// listener is up).
fn spawn_server(
    fx: &Fixture,
    state_dir: &std::path::Path,
    port_file: &std::path::Path,
) -> ChildGuard {
    let _ = std::fs::remove_file(port_file);
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_icfl-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--models",
            fx.registry_root.to_str().unwrap(),
            "--state-dir",
            state_dir.to_str().unwrap(),
            "--checkpoint-every",
            "2",
            "--fsync-every",
            "2",
            "--port-file",
            port_file.to_str().unwrap(),
            "--log",
            "error",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn icfl-server");
    ChildGuard(child)
}

fn wait_port(port_file: &std::path::Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server did not write {}",
            port_file.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The tentpole property, against a real process: stream part of the
/// trace, `SIGKILL` the server mid-campaign, restart it over the same
/// state dir, blindly re-send everything from the beginning (lost-ack
/// semantics), and the final `/incidents` body is byte-equal to an
/// uninterrupted run — same verdicts, same window counts, same ingest
/// accounting, with every overlap deduped rather than rejected.
#[test]
fn sigkill_restart_serves_byte_equal_incidents() {
    let fx = fixture();
    let tenant = "pattern1:kill9";
    let (reference, reference_explain) = reference_body(fx, "kill9-ref", tenant);

    let state = fresh_dir("kill9-state");
    let port_file = std::env::temp_dir().join(format!("icfl-kill9-port-{}", std::process::id()));
    let chunks = total_chunks(&fx.trace);
    let kill_at = chunks / 2;

    let mut child = spawn_server(fx, &state, &port_file);
    let addr = wait_port(&port_file);
    register(&addr, tenant, &fx.trace);
    send_chunks(&addr, tenant, &fx.trace, 0, kill_at);
    // The pre-kill /explain state (a served chain, or a 404 if the
    // incident hasn't confirmed yet at this point in the stream) must be
    // reproduced exactly by WAL/checkpoint recovery.
    let pre_kill_explain = fetch_explain(&addr, tenant);
    // SIGKILL: no shutdown hook runs, no final checkpoint, no WAL sync.
    child.0.kill().unwrap();
    child.0.wait().unwrap();

    let _child2 = spawn_server(fx, &state, &port_file);
    let addr = wait_port(&port_file);
    let recovered_explain = fetch_explain(&addr, tenant);
    assert_eq!(
        pre_kill_explain.0, recovered_explain.0,
        "recovered /explain status diverged from the pre-kill state"
    );
    assert_eq!(
        String::from_utf8_lossy(&pre_kill_explain.1),
        String::from_utf8_lossy(&recovered_explain.1),
        "recovered /explain chain diverged from the pre-kill state"
    );
    // Registration survived the kill.
    let mut client = HttpClient::connect(&addr);
    let meta = serde_json::to_string(&fx.trace.meta).unwrap();
    let resp = client
        .post(&format!("/session/{tenant}"), meta.as_bytes())
        .unwrap();
    assert_eq!(
        resp.status, 409,
        "recovered tenant must still be registered"
    );
    // Blind full re-send: everything accepted before the kill dedupes.
    let duplicates = send_chunks(&addr, tenant, &fx.trace, 0, usize::MAX);
    assert_eq!(
        duplicates, kill_at,
        "every pre-kill chunk must be acknowledged as a duplicate"
    );

    let recovered = drain_and_fetch(&addr, tenant);
    assert_eq!(
        String::from_utf8_lossy(&recovered),
        String::from_utf8_lossy(&reference),
        "recovered /incidents body diverged from the uninterrupted run"
    );
    assert_eq!(recovered, reference);

    // The full post-recovery chain matches the uninterrupted run's
    // byte-for-byte: same evidence, same breakdowns, same timestamps.
    let (status, explain) = fetch_explain(&addr, tenant);
    assert_eq!(status, 200, "recovered server must serve the chain");
    assert_eq!(
        String::from_utf8_lossy(&explain),
        String::from_utf8_lossy(&reference_explain),
        "post-recovery /explain chain diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_file(&port_file);
}

/// The same property through the in-process simulated crash (what
/// `chaosbench` uses): `ServerHandle::crash` severs connections and
/// abandons workers mid-queue, and a new server over the state dir
/// recovers byte-identically — across *two* consecutive crashes.
#[test]
fn inprocess_crash_recovery_is_byte_equal() {
    let fx = fixture();
    let tenant = "pattern1:crash";
    let (reference, reference_explain) = reference_body(fx, "crash-ref", tenant);

    let state = fresh_dir("crash-state");
    let chunks = total_chunks(&fx.trace);
    let kills = [chunks / 3, 2 * chunks / 3];

    let mut handle = IcflServer::start(server_cfg(fx, Some(state.clone()))).unwrap();
    register(&handle.addr().to_string(), tenant, &fx.trace);
    let mut sent = 0;
    for &kill_at in &kills {
        send_chunks(&handle.addr().to_string(), tenant, &fx.trace, sent, kill_at);
        sent = kill_at;
        handle.crash();
        let restarted = IcflServer::start(server_cfg(fx, Some(state.clone()))).unwrap();
        // Post-crash connects to the dead listener fail, not hang.
        handle = restarted;
        // Re-send a window of already-accepted chunks: all dedupe.
        let overlap_from = sent.saturating_sub(3);
        let dup = send_chunks(
            &handle.addr().to_string(),
            tenant,
            &fx.trace,
            overlap_from,
            sent,
        );
        assert_eq!(dup, sent - overlap_from, "overlap must dedupe");
    }
    send_chunks(
        &handle.addr().to_string(),
        tenant,
        &fx.trace,
        sent,
        usize::MAX,
    );

    let recovered = drain_and_fetch(&handle.addr().to_string(), tenant);
    assert_eq!(
        String::from_utf8_lossy(&recovered),
        String::from_utf8_lossy(&reference),
        "post-crash /incidents body diverged from the uninterrupted run"
    );
    let (status, explain) = fetch_explain(&handle.addr().to_string(), tenant);
    assert_eq!(status, 200, "post-crash server must serve the chain");
    assert_eq!(
        String::from_utf8_lossy(&explain),
        String::from_utf8_lossy(&reference_explain),
        "post-crash /explain chain diverged from the uninterrupted run"
    );

    drop(handle);
    let _ = std::fs::remove_dir_all(&state);
}

/// A panicking worker is caught, restarted from the in-memory checkpoint
/// with the accepted tail replayed, and the stream converges to the same
/// verdicts as an undisturbed pipeline — no durable store required.
#[test]
fn worker_panic_restarts_and_converges() {
    let fx = fixture();
    let registry = ModelRegistry::open(&fx.registry_root).unwrap();
    let model = registry.load_latest("pattern1").unwrap().model;
    let feed = |model: &icfl_core::CausalModel| {
        icfl_online::FeedSession::new(
            model.clone(),
            fx.trace.meta.service_names.clone(),
            icfl_online::FeedConfig::from_online(&OnlineConfig::quick()),
        )
        .unwrap()
    };

    // Reference verdicts from an undisturbed session.
    let mut reference = feed(&model);
    for (at, row) in &fx.trace.scrapes {
        reference
            .push(SimTime::from_nanos(*at), row.clone())
            .unwrap();
    }
    let reference = serde_json::to_string(&reference.verdicts()).unwrap();

    let pipeline = TenantPipeline::open("pattern1:panic", feed(&model), 8, 1);
    let scrapes = &fx.trace.scrapes;
    let third = scrapes.len() / 3;
    pipeline.submit(scrapes[..third].to_vec()).unwrap();
    pipeline.inject_worker_panic();
    pipeline.submit(scrapes[third..2 * third].to_vec()).unwrap();
    // The injection flag is consumed at the worker's next batch pop; wait
    // for the first restart before arming the second, or the two
    // injections collapse into one on a slow machine.
    let first = Instant::now() + Duration::from_secs(30);
    while pipeline.worker_restarts() < 1 {
        assert!(Instant::now() < first, "first injected panic never fired");
        std::thread::sleep(Duration::from_millis(1));
    }
    pipeline.inject_worker_panic();
    pipeline.submit(scrapes[2 * third..].to_vec()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    while !pipeline.drained() {
        assert!(Instant::now() < deadline, "pipeline did not drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(pipeline.worker_error(), None, "restart must not poison");
    assert_eq!(pipeline.worker_restarts(), 2);
    assert_eq!(pipeline.scrapes_accepted(), scrapes.len() as u64);
    let verdicts = pipeline.with_session(|s| serde_json::to_string(&s.verdicts()).unwrap());
    assert_eq!(
        verdicts, reference,
        "restarted worker diverged from the undisturbed replay"
    );
}

/// Past the restart budget the tenant is poisoned — visible error, no
/// flapping, drains complete — instead of looping forever.
#[test]
fn worker_panic_budget_poisons_not_flaps() {
    let fx = fixture();
    let registry = ModelRegistry::open(&fx.registry_root).unwrap();
    let model = registry.load_latest("pattern1").unwrap().model;
    let session = icfl_online::FeedSession::new(
        model,
        fx.trace.meta.service_names.clone(),
        icfl_online::FeedConfig::from_online(&OnlineConfig::quick()),
    )
    .unwrap();
    let pipeline = TenantPipeline::open_with(
        "pattern1:poison",
        session,
        icfl_server::PipelineOptions {
            queue_cap: 8,
            retry_after_ms: 1,
            max_worker_restarts: 0,
            ..Default::default()
        },
        None,
    );
    pipeline.inject_worker_panic();
    pipeline.submit(fx.trace.scrapes[..10].to_vec()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while pipeline.worker_error().is_none() {
        assert!(Instant::now() < deadline, "pipeline was not poisoned");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(pipeline.drained(), "poisoned pipeline must drain its queue");
    assert!(
        pipeline.worker_error().unwrap().contains("panicked"),
        "error must surface the panic"
    );
    // Subsequent submits are rejected typed, not accepted into a void.
    assert!(pipeline.submit(fx.trace.scrapes[10..20].to_vec()).is_err());
}

/// A POST racing `GET /drain` either lands before the drain (200) or is
/// rejected typed (409 draining) — never silently dropped — and the
/// drained verdict set is complete and stable: accepted == processed, and
/// a re-read returns identical bytes.
#[test]
fn drain_ingest_race_is_typed_and_complete() {
    let fx = fixture();
    let handle = IcflServer::start(server_cfg(fx, None)).unwrap();
    let addr = handle.addr().to_string();
    let tenant = "pattern1:race";
    register(&addr, tenant, &fx.trace);
    let chunks = total_chunks(&fx.trace);
    send_chunks(&addr, tenant, &fx.trace, 0, chunks / 2);

    let (accepted_after_drain, rejected) = std::thread::scope(|scope| {
        let addr_post = addr.clone();
        let poster = scope.spawn(move || {
            let mut client = HttpClient::connect(&addr_post);
            let mut accepted = 0u64;
            let mut rejected = 0u64;
            for index in chunks / 2.. {
                let Some(body) = chunk_body(&fx.trace, index) else {
                    break;
                };
                loop {
                    let resp = client
                        .post(&format!("/ingest/{tenant}"), body.as_bytes())
                        .unwrap();
                    match resp.status {
                        200 => {
                            accepted += 1;
                            break;
                        }
                        429 => std::thread::sleep(Duration::from_millis(2)),
                        409 => {
                            // The drain won; from here every send must be
                            // rejected the same way, typed.
                            assert!(
                                resp.text().contains("draining"),
                                "expected a draining reject, got: {}",
                                resp.text()
                            );
                            rejected += 1;
                            return (accepted, rejected);
                        }
                        status => panic!("ingest {tenant}: {status} {}", resp.text()),
                    }
                }
            }
            (accepted, rejected)
        });
        let addr_drain = addr.clone();
        let drainer = scope.spawn(move || {
            // Let the poster get going before closing the stream.
            std::thread::sleep(Duration::from_millis(10));
            let mut client = HttpClient::connect(&addr_drain);
            let drain = client.get(&format!("/drain/{tenant}")).unwrap();
            assert_eq!(drain.status, 200, "drain: {}", drain.text());
        });
        drainer.join().unwrap();
        poster.join().unwrap()
    });

    // The race has exactly two outcomes per batch, both visible.
    assert!(
        rejected > 0 || accepted_after_drain as usize == chunks - chunks / 2,
        "poster finished without ever observing the drain reject"
    );

    let mut client = HttpClient::connect(&addr);
    let first = client.get(&format!("/incidents/{tenant}")).unwrap();
    assert_eq!(first.status, 200);
    let report: IncidentsReport = serde_json::from_str(&first.text()).unwrap();
    assert_eq!(report.worker_error, None);
    assert_eq!(
        report.batches_processed, report.batches_accepted,
        "drain returned before the verdict set was complete"
    );
    // Post-drain ingests stay typed rejects, and the report is stable.
    if let Some(body) = chunk_body(&fx.trace, chunks - 1) {
        let resp = client
            .post(&format!("/ingest/{tenant}"), body.as_bytes())
            .unwrap();
        assert!(
            resp.status == 409 || resp.status == 200,
            "post-drain ingest must be typed: {} {}",
            resp.status,
            resp.text()
        );
    }
    let second = client.get(&format!("/incidents/{tenant}")).unwrap();
    assert_eq!(
        first.body, second.body,
        "drained verdict set must be stable"
    );
}
