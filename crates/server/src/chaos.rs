//! A deterministic chaos proxy: a TCP relay that injects seeded faults —
//! delays, byte corruption, severed connections — into the client→server
//! direction, for exercising the ingest stack's recovery paths without
//! root, namespaces, or packet filters.
//!
//! The load generator connects to the proxy; the proxy relays to the
//! real server. Fault decisions are drawn from a per-connection
//! [`icfl_sim::Rng`] seeded from `seed ^ connection-index`, so a given
//! seed yields the same fault *pattern* per connection (which chunks are
//! delayed/corrupted/severed) run over run — timing and chunk boundaries
//! are still the OS's, so this is deterministic chaos *injection*, not a
//! deterministic simulation.
//!
//! Only the request direction is attacked: a corrupted frame then draws a
//! typed 4xx (or a 408 after a stall) from the server, which is exactly
//! the surface under test. Corrupting responses would test the load
//! generator's parser instead — out of scope.
//!
//! The upstream address is swappable at runtime
//! ([`ChaosProxy::set_upstream`]), so the proxy — and every client
//! conversation with it — survives the server being killed and restarted
//! on a new port mid-campaign, the way `chaosbench` does.

use icfl_sim::Rng;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault mix of one chaos proxy. Probabilities are per relayed chunk
/// (one socket read, up to 16 KiB).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the per-connection fault streams.
    pub seed: u64,
    /// Probability a chunk is delayed by [`ChaosConfig::delay_ms`].
    pub delay_prob: f64,
    /// Injected delay, milliseconds.
    pub delay_ms: u64,
    /// Probability one byte of a chunk is overwritten with `0xFF`.
    pub corrupt_prob: f64,
    /// Probability the connection is severed (both directions) instead
    /// of relaying the chunk.
    pub sever_prob: f64,
}

impl ChaosConfig {
    /// A transparent proxy: no faults, just the relay.
    pub fn off(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_prob: 0.0,
            delay_ms: 0,
            corrupt_prob: 0.0,
            sever_prob: 0.0,
        }
    }

    /// A mild default mix: occasional delays, rare corruption and severs
    /// — enough to exercise every recovery path in a short campaign
    /// without drowning it.
    pub fn mild(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_prob: 0.05,
            delay_ms: 5,
            corrupt_prob: 0.01,
            sever_prob: 0.005,
        }
    }
}

struct ProxyState {
    upstream: Mutex<String>,
    cfg: ChaosConfig,
    conns: AtomicU64,
    stop: AtomicBool,
}

/// A running chaos proxy; drops stop it.
pub struct ChaosProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts relaying to
    /// `upstream`.
    ///
    /// # Errors
    ///
    /// Bind failures as `io::Error`.
    pub fn start(upstream: impl Into<String>, cfg: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            upstream: Mutex::new(upstream.into()),
            cfg,
            conns: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let accept = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("icfl-chaos-accept".to_owned())
                .spawn(move || accept_loop(&listener, &state))
                .expect("spawn chaos accept loop")
        };
        Ok(ChaosProxy {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — what clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Points the relay at a new upstream (a restarted server). Existing
    /// connections keep their old upstream until they die; new ones dial
    /// the new address.
    pub fn set_upstream(&self, upstream: impl Into<String>) {
        *self.state.upstream.lock().expect("chaos upstream lock") = upstream.into();
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ProxyState>) {
    for conn in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(client) = conn else { continue };
        let id = state.conns.fetch_add(1, Ordering::Relaxed);
        icfl_obs::counter_add("icfl_chaos_connections_total", &[], 1);
        let upstream_addr = state.upstream.lock().expect("chaos upstream lock").clone();
        let Ok(server) = TcpStream::connect(&upstream_addr) else {
            // Upstream down (mid-restart): drop the client; it reconnects.
            icfl_obs::counter_add("icfl_chaos_upstream_refused_total", &[], 1);
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let rng = Rng::seeded(state.cfg.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let cfg = state.cfg;
        // Relay threads are detached: they exit when either side closes,
        // and both sides are owned by peers that outlive the campaign.
        let (Ok(client_r), Ok(server_w)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        let spawn_up = std::thread::Builder::new()
            .name(format!("icfl-chaos-up-{id}"))
            .spawn(move || relay_with_chaos(client_r, server_w, cfg, rng));
        let spawn_down = std::thread::Builder::new()
            .name(format!("icfl-chaos-down-{id}"))
            .spawn(move || relay_plain(server, client));
        let _ = (spawn_up, spawn_down);
    }
}

/// Client→server relay with fault injection per chunk.
fn relay_with_chaos(mut from: TcpStream, mut to: TcpStream, cfg: ChaosConfig, mut rng: Rng) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if cfg.sever_prob > 0.0 && rng.chance(cfg.sever_prob) {
            icfl_obs::counter_add("icfl_chaos_severs_total", &[], 1);
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        if cfg.delay_prob > 0.0 && rng.chance(cfg.delay_prob) {
            icfl_obs::counter_add("icfl_chaos_delays_total", &[], 1);
            std::thread::sleep(Duration::from_millis(cfg.delay_ms));
        }
        if cfg.corrupt_prob > 0.0 && rng.chance(cfg.corrupt_prob) {
            icfl_obs::counter_add("icfl_chaos_corruptions_total", &[], 1);
            let victim = rng.below(n as u64) as usize;
            buf[victim] = 0xFF;
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Server→client relay, untouched.
fn relay_plain(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}
