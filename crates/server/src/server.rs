//! The ingest server: a `std::net` TCP listener, a bounded pool of
//! connection workers, and the route table gluing sockets to per-tenant
//! pipelines.
//!
//! The request path is `socket → bounded tenant queue → FeedSession
//! worker → journal`: connection workers only parse and enqueue, so a
//! slow tenant session never blocks the accept path — it fills that
//! tenant's queue and turns into 429s for that tenant alone.
//!
//! # Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /session/<tenant>` | Register a tenant: body is the trace's `TraceMeta`; the model is loaded from the registry under the tenant name's app prefix (up to the first `:`). |
//! | `POST /ingest/<tenant>` | Newline-delimited scrape lines (`[t,[[...]]]`); all-or-nothing: 200 `{"accepted":N}`, 400 malformed, 409 out-of-order, 429 + `retry-after` when the queue is full. |
//! | `GET /incidents/<tenant>` | Ingest counts + every verdict so far. |
//! | `GET /drain/<tenant>` | Blocks until the tenant queue is empty (504 after 10 s). |
//! | `GET /metrics` | Prometheus text exposition of the journal. |
//! | `GET /healthz` | Liveness + tenant count. |

use crate::http::{self, Request};
use crate::tenant::{Batch, Reject, TenantPipeline};
use icfl_online::{FeedConfig, FeedSession, ModelRegistry, OnlineConfig, RegistryError};
use icfl_scenario::trace::{parse_scrape_line, TraceMeta};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning of one ingest server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral loopback port).
    pub addr: String,
    /// Model registry root (`results/models` in a checkout).
    pub registry_root: PathBuf,
    /// Feed tuning every tenant session runs with; must match the window
    /// geometry the registry's models were trained on.
    pub feed: FeedConfig,
    /// Tenant queue bound, in batches.
    pub queue_cap: usize,
    /// Connection-worker pool size.
    pub http_workers: usize,
    /// Client-visible retry hint on 429, in milliseconds.
    pub retry_after_ms: u64,
}

impl ServerConfig {
    /// Loopback server over `registry_root` with quick-mode feed tuning.
    pub fn quick(registry_root: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            registry_root: registry_root.into(),
            feed: FeedConfig::from_online(&OnlineConfig::quick()),
            queue_cap: 64,
            http_workers: 16,
            retry_after_ms: 25,
        }
    }
}

/// Everything the route handlers share.
struct State {
    cfg: ServerConfig,
    registry: ModelRegistry,
    tenants: RwLock<BTreeMap<String, Arc<TenantPipeline>>>,
}

/// The ingest server. [`IcflServer::start`] binds, spawns the accept
/// loop and worker pool, and returns a handle; the server runs until
/// [`ServerHandle::shutdown`] (or the handle drops).
#[derive(Debug)]
pub struct IcflServer;

/// A running server: its bound address and its shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl IcflServer {
    /// Binds `cfg.addr` and starts serving.
    ///
    /// # Errors
    ///
    /// Any bind/registry-open failure, as `io::Error`.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let registry = ModelRegistry::open(&cfg.registry_root)
            .map_err(|e| std::io::Error::other(format!("open registry: {e}")))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            registry,
            tenants: RwLock::new(BTreeMap::new()),
            cfg,
        });
        let stop = Arc::new(AtomicBool::new(false));

        // Bounded hand-off between the accept loop and the connection
        // workers; a full channel means every worker is busy and the
        // backlog is full, so the accept loop answers 503 inline.
        let (tx, rx) = sync_channel::<TcpStream>(state.cfg.http_workers);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..state.cfg.http_workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("icfl-http-{i}"))
                    .spawn(move || connection_worker(&rx, &state))
                    .expect("spawn http worker")
            })
            .collect();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("icfl-accept".to_owned())
                .spawn(move || accept_loop(&listener, &tx, &stop))
                .expect("spawn accept loop")
        };
        Ok(ServerHandle {
            addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
            workers: Vec::from_iter(workers),
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the worker pool, and joins every thread.
    /// Tenant pipelines keep their state until the handle drops.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread dropped the sender; workers drain and exit.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// The pipeline registered under `tenant`, if any (tests and
    /// in-process harnesses; network clients use the routes).
    pub fn tenant(&self, tenant: &str) -> Option<Arc<TenantPipeline>> {
        self.state
            .tenants
            .read()
            .expect("tenants lock")
            .get(tenant)
            .cloned()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Saturated pool: tell the client to back off rather than
                // queueing unboundedly.
                icfl_obs::counter_add("icfl_server_connections_shed_total", &[], 1);
                let _ = http::write_response(
                    &mut stream,
                    503,
                    http::reason(503),
                    &[("retry-after", "1")],
                    b"worker pool saturated\n",
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn connection_worker(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<State>) {
    loop {
        let stream = {
            let rx = rx.lock().expect("http rx lock");
            rx.recv()
        };
        let Ok(stream) = stream else { return };
        icfl_obs::counter_add("icfl_server_connections_total", &[], 1);
        let _ = serve_connection(stream, state);
    }
}

fn serve_connection(stream: TcpStream, state: &Arc<State>) -> std::io::Result<()> {
    // An idle keep-alive peer must not pin a pool worker forever.
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                http::write_response(
                    &mut writer,
                    400,
                    http::reason(400),
                    &[],
                    format!("{e}\n").as_bytes(),
                    false,
                )?;
                return Ok(());
            }
            Err(_) => return Ok(()), // timeout / reset: drop quietly
        };
        let keep_alive = req.keep_alive();
        let started = Instant::now();
        let reply = route(&req, state);
        icfl_obs::histogram_observe("icfl_server_request_latency", &[], started.elapsed());
        http::write_response(
            &mut writer,
            reply.status,
            http::reason(reply.status),
            &reply
                .headers
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect::<Vec<_>>(),
            &reply.body,
            keep_alive,
        )?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// A handler's reply before serialization.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn new(status: u16, body: impl Into<Vec<u8>>) -> Reply {
        Reply {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    fn json(status: u16, value: &impl Serialize) -> Reply {
        let mut body = serde_json::to_string(value)
            .expect("reply serializes")
            .into_bytes();
        body.push(b'\n');
        let mut reply = Reply::new(status, body);
        reply
            .headers
            .push(("content-type".to_owned(), "application/json".to_owned()));
        reply
    }

    fn text(status: u16, body: impl Into<String>) -> Reply {
        let mut s = body.into();
        if !s.ends_with('\n') {
            s.push('\n');
        }
        Reply::new(status, s.into_bytes())
    }
}

#[derive(Serialize)]
struct IngestAck {
    accepted: u64,
}

/// The `GET /incidents/<tenant>` body: ingest accounting plus every
/// verdict the tenant's session has produced so far. `Deserialize` so the
/// load generator and tests read it back typed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentsReport {
    /// The tenant queried.
    pub tenant: String,
    /// Scrapes accepted into the queue.
    pub scrapes_accepted: u64,
    /// Batches accepted into the queue.
    pub batches_accepted: u64,
    /// Batches the worker has pushed through the session.
    pub batches_processed: u64,
    /// Hopping windows the session has finalized.
    pub windows_emitted: u64,
    /// A sticky worker-side feed error, if the pipeline is poisoned.
    pub worker_error: Option<String>,
    /// Verdicts in confirmation order.
    pub verdicts: Vec<icfl_online::FeedVerdict>,
}

fn route(req: &Request, state: &Arc<State>) -> Reply {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let tenants = state.tenants.read().expect("tenants lock").len();
            Reply::text(200, format!("ok tenants={tenants}"))
        }
        ("GET", "/metrics") => {
            let text = icfl_obs::global().metrics.snapshot().to_prometheus();
            Reply::new(200, text.into_bytes())
        }
        _ => {
            if let Some(tenant) = path.strip_prefix("/session/") {
                return match req.method.as_str() {
                    "POST" => post_session(tenant, &req.body, state),
                    _ => Reply::text(405, "POST only"),
                };
            }
            if let Some(tenant) = path.strip_prefix("/ingest/") {
                return match req.method.as_str() {
                    "POST" => post_ingest(tenant, &req.body, state),
                    _ => Reply::text(405, "POST only"),
                };
            }
            if let Some(tenant) = path.strip_prefix("/incidents/") {
                return match req.method.as_str() {
                    "GET" => get_incidents(tenant, state),
                    _ => Reply::text(405, "GET only"),
                };
            }
            if let Some(tenant) = path.strip_prefix("/drain/") {
                return match req.method.as_str() {
                    "GET" => get_drain(tenant, state),
                    _ => Reply::text(405, "GET only"),
                };
            }
            Reply::text(404, format!("no route for {path}"))
        }
    }
}

/// Tenant names are `<app>` or `<app>:<stream-suffix>`; the app prefix is
/// the registry key, so many streams share one trained model.
fn model_key(tenant: &str) -> &str {
    tenant.split(':').next().unwrap_or(tenant)
}

fn valid_tenant_name(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 128
        && tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

fn post_session(tenant: &str, body: &[u8], state: &Arc<State>) -> Reply {
    if !valid_tenant_name(tenant) {
        return Reply::text(400, "tenant names are [A-Za-z0-9_.:-]{1,128}");
    }
    let meta: TraceMeta = match std::str::from_utf8(body)
        .ok()
        .and_then(|s| serde_json::from_str(s).ok())
    {
        Some(meta) => meta,
        None => return Reply::text(400, "body must be TraceMeta JSON"),
    };
    if state
        .tenants
        .read()
        .expect("tenants lock")
        .contains_key(tenant)
    {
        return Reply::text(409, format!("tenant {tenant} already registered"));
    }
    let record = match state.registry.load_latest(model_key(tenant)) {
        Ok(record) => record,
        Err(RegistryError::UnknownModel(name)) => {
            return Reply::text(404, format!("no model '{name}' in the registry"));
        }
        Err(e) => return Reply::text(500, format!("registry: {e}")),
    };
    let session = match FeedSession::new(record.model, meta.service_names, state.cfg.feed.clone()) {
        Ok(session) => session,
        Err(e) => return Reply::text(400, format!("{e}")),
    };
    let pipeline = Arc::new(TenantPipeline::open(
        tenant,
        session,
        state.cfg.queue_cap,
        state.cfg.retry_after_ms,
    ));
    let mut tenants = state.tenants.write().expect("tenants lock");
    if tenants.contains_key(tenant) {
        return Reply::text(409, format!("tenant {tenant} already registered"));
    }
    tenants.insert(tenant.to_owned(), pipeline);
    icfl_obs::counter_add("icfl_server_sessions_opened_total", &[], 1);
    Reply::text(
        200,
        format!("tenant {tenant} serving model v{}", record.version),
    )
}

fn lookup(tenant: &str, state: &Arc<State>) -> Option<Arc<TenantPipeline>> {
    state
        .tenants
        .read()
        .expect("tenants lock")
        .get(tenant)
        .cloned()
}

fn post_ingest(tenant: &str, body: &[u8], state: &Arc<State>) -> Reply {
    let Some(pipeline) = lookup(tenant, state) else {
        return Reply::text(404, format!("unknown tenant {tenant}"));
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::text(400, "body must be UTF-8 scrape lines");
    };
    let mut batch: Batch = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_scrape_line(line) {
            Ok(scrape) => batch.push(scrape),
            Err(e) => return Reply::text(400, format!("line {}: {e}", i + 1)),
        }
    }
    let accepted = batch.len() as u64;
    match pipeline.submit(batch) {
        Ok(()) => Reply::json(200, &IngestAck { accepted }),
        Err(Reject::QueueFull { retry_after_ms }) => {
            let mut reply = Reply::text(429, "tenant queue full");
            // `retry-after` is integral seconds per the HTTP spec; the
            // millisecond hint rides a custom header for tight loops.
            reply.headers.push((
                "retry-after".to_owned(),
                retry_after_ms.div_ceil(1000).max(1).to_string(),
            ));
            reply
                .headers
                .push(("x-retry-after-ms".to_owned(), retry_after_ms.to_string()));
            reply
        }
        Err(Reject::OutOfOrder(e)) => Reply::text(409, e),
        Err(Reject::Malformed(e)) => Reply::text(400, e),
    }
}

fn get_incidents(tenant: &str, state: &Arc<State>) -> Reply {
    let Some(pipeline) = lookup(tenant, state) else {
        return Reply::text(404, format!("unknown tenant {tenant}"));
    };
    let (windows, verdicts) = pipeline.with_session(|s| (s.windows_emitted(), s.verdicts()));
    Reply::json(
        200,
        &IncidentsReport {
            tenant: tenant.to_owned(),
            scrapes_accepted: pipeline.scrapes_accepted(),
            batches_accepted: pipeline.accepted(),
            batches_processed: pipeline.processed(),
            windows_emitted: windows,
            worker_error: pipeline.worker_error(),
            verdicts,
        },
    )
}

fn get_drain(tenant: &str, state: &Arc<State>) -> Reply {
    let Some(pipeline) = lookup(tenant, state) else {
        return Reply::text(404, format!("unknown tenant {tenant}"));
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pipeline.drained() {
        if Instant::now() >= deadline {
            return Reply::text(504, "tenant queue did not drain within 10s");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Reply::json(
        200,
        &IngestAck {
            accepted: pipeline.processed(),
        },
    )
}
