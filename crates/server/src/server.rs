//! The ingest server: a `std::net` TCP listener, a bounded pool of
//! connection workers, and the route table gluing sockets to per-tenant
//! pipelines.
//!
//! The request path is `socket → bounded tenant queue → FeedSession
//! worker → journal`: connection workers only parse and enqueue, so a
//! slow tenant session never blocks the accept path — it fills that
//! tenant's queue and turns into 429s for that tenant alone.
//!
//! # Crash safety
//!
//! With [`ServerConfig::state_dir`] set, every tenant is durable: batches
//! are write-ahead logged before they are acknowledged, the session is
//! checkpointed on a decision-tick cadence, and
//! [`IcflServer::start`] recovers every tenant found under the state
//! directory — checkpoint restore plus WAL replay — before accepting
//! traffic, so a `kill -9` mid-campaign resumes byte-identically (same
//! `/incidents` body as an uninterrupted run). Re-sent batches that are
//! already in the WAL are acknowledged idempotently (`"deduped":true`)
//! instead of rejected, which is what lets a client blindly re-send after
//! an ack was lost to the crash.
//!
//! # Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /session/<tenant>` | Register a tenant: body is the trace's `TraceMeta`; the model is loaded from the registry under the tenant name's app prefix (up to the first `:`). |
//! | `POST /ingest/<tenant>` | Newline-delimited scrape lines (`[t,[[...]]]`); all-or-nothing: 200 `{"accepted":N}` (plus `"deduped":true` on an exact re-send), 400 malformed, 409 out-of-order or draining, 429 + `retry-after` when the queue is full, 500 on a durability fault. |
//! | `GET /incidents/<tenant>` | Ingest counts + every verdict so far. |
//! | `GET /explain/<tenant>/<incident-id>` | The incident's [`icfl_online::EvidenceChain`] as JSON: flight-recorded windows (with validity flags), detector transitions, per-candidate Algorithm-2 score breakdowns, and the registry provenance of the model consulted. Byte-identical across a crash/recovery. |
//! | `GET /drain/<tenant>` | Marks the tenant draining (subsequent ingests get 409), then blocks until the queue is empty (504 after 10 s). |
//! | `GET /metrics` | Prometheus text exposition of the journal. |
//! | `GET /healthz` | Liveness + tenant count. |
//!
//! A peer that stalls mid-request (slow-loris) is answered with a typed
//! 408 after the per-request deadline and counted in
//! `icfl_server_conn_timeouts_total` — never dropped silently.

use crate::http::{self, Request};
use crate::tenant::{Accepted, Batch, PipelineOptions, RecoveredCounters, Reject, TenantPipeline};
use crate::wal::{self, StoreConfig, StoredMeta, TenantStore};
use icfl_online::{
    FeedConfig, FeedSession, ModelProvenance, ModelRegistry, OnlineConfig, RegistryError,
};
use icfl_scenario::trace::{parse_scrape_line, TraceMeta};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wall-clock budget for reading one complete request. The socket's
/// `SO_RCVTIMEO` (10 s) bounds each individual read, but a drip-feeding
/// peer resets it with every byte — only this end-to-end deadline caps
/// the slow-loris case.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// Tuning of one ingest server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral loopback port).
    pub addr: String,
    /// Model registry root (`results/models` in a checkout).
    pub registry_root: PathBuf,
    /// Feed tuning every tenant session runs with; must match the window
    /// geometry the registry's models were trained on.
    pub feed: FeedConfig,
    /// Tenant queue bound, in batches.
    pub queue_cap: usize,
    /// Connection-worker pool size.
    pub http_workers: usize,
    /// Client-visible retry hint on 429, in milliseconds.
    pub retry_after_ms: u64,
    /// Durable per-tenant state root (WAL + checkpoints). `None` keeps
    /// every tenant in memory only — a crash loses it.
    pub state_dir: Option<PathBuf>,
    /// Decision ticks between session checkpoints.
    pub checkpoint_every_ticks: u32,
    /// Accepted batches between WAL fsyncs.
    pub fsync_every_batches: u32,
    /// Worker panic restarts tolerated per tenant before poisoning it.
    pub max_worker_restarts: u32,
}

impl ServerConfig {
    /// Loopback server over `registry_root` with quick-mode feed tuning
    /// and no durable state.
    pub fn quick(registry_root: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            registry_root: registry_root.into(),
            feed: FeedConfig::from_online(&OnlineConfig::quick()),
            queue_cap: 64,
            http_workers: 16,
            retry_after_ms: 25,
            state_dir: None,
            checkpoint_every_ticks: 8,
            fsync_every_batches: 16,
            max_worker_restarts: 3,
        }
    }

    fn pipeline_options(&self) -> PipelineOptions {
        PipelineOptions {
            queue_cap: self.queue_cap,
            retry_after_ms: self.retry_after_ms,
            checkpoint_every_ticks: self.checkpoint_every_ticks,
            max_worker_restarts: self.max_worker_restarts,
        }
    }

    fn store_config(&self) -> StoreConfig {
        StoreConfig {
            fsync_every_batches: self.fsync_every_batches.max(1),
        }
    }
}

/// Everything the route handlers share.
struct State {
    cfg: ServerConfig,
    registry: ModelRegistry,
    tenants: RwLock<BTreeMap<String, Arc<TenantPipeline>>>,
    /// Clones of every in-flight connection, so a simulated crash can
    /// sever them the way a real process death would.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// The ingest server. [`IcflServer::start`] binds, spawns the accept
/// loop and worker pool, and returns a handle; the server runs until
/// [`ServerHandle::shutdown`] (or the handle drops).
#[derive(Debug)]
pub struct IcflServer;

/// A running server: its bound address and its shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl IcflServer {
    /// Binds `cfg.addr` and starts serving. With a state directory
    /// configured, every tenant found under it is recovered (checkpoint
    /// restore + WAL replay) before the listener accepts traffic; a
    /// tenant whose recovery fails is skipped with a journal counter and
    /// a warning, never a panic.
    ///
    /// # Errors
    ///
    /// Any bind/registry-open/state-dir failure, as `io::Error`.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let registry = ModelRegistry::open(&cfg.registry_root)
            .map_err(|e| std::io::Error::other(format!("open registry: {e}")))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            registry,
            tenants: RwLock::new(BTreeMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            cfg,
        });
        if let Some(dir) = state.cfg.state_dir.clone() {
            std::fs::create_dir_all(&dir)?;
            for tenant_dir in wal::list_tenants(&dir)? {
                match recover_tenant(&state, &dir, &tenant_dir) {
                    Ok(pipeline) => {
                        icfl_obs::counter_add("icfl_server_tenants_recovered_total", &[], 1);
                        state
                            .tenants
                            .write()
                            .expect("tenants lock")
                            .insert(tenant_dir, pipeline);
                    }
                    Err(e) => {
                        icfl_obs::counter_add("icfl_server_recovery_failures_total", &[], 1);
                        icfl_obs::warn!("tenant {tenant_dir}: recovery failed, skipping: {e}");
                    }
                }
            }
        }
        let stop = Arc::new(AtomicBool::new(false));

        // Bounded hand-off between the accept loop and the connection
        // workers; a full channel means every worker is busy and the
        // backlog is full, so the accept loop answers 503 inline.
        let (tx, rx) = sync_channel::<TcpStream>(state.cfg.http_workers);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..state.cfg.http_workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("icfl-http-{i}"))
                    .spawn(move || connection_worker(&rx, &state))
                    .expect("spawn http worker")
            })
            .collect();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("icfl-accept".to_owned())
                .spawn(move || accept_loop(&listener, &tx, &stop))
                .expect("spawn accept loop")
        };
        Ok(ServerHandle {
            addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
            workers: Vec::from_iter(workers),
        })
    }
}

/// Rebuilds one tenant from its state directory: registry model + stored
/// meta → fresh session, checkpoint restore, WAL replay past it, and a
/// pipeline primed with the recovered counters and duplicate index.
fn recover_tenant(
    state: &Arc<State>,
    dir: &std::path::Path,
    tenant_dir: &str,
) -> Result<Arc<TenantPipeline>, String> {
    let rec = wal::recover(dir, tenant_dir).map_err(|e| e.to_string())?;
    let tenant = rec.meta.tenant.clone();
    if tenant != tenant_dir {
        return Err(format!(
            "meta names tenant {tenant:?} but lives under {tenant_dir:?}"
        ));
    }
    let record = state
        .registry
        .load_latest(model_key(&tenant))
        .map_err(|e| format!("registry: {e}"))?;
    // The same provenance a fresh registration would stamp: it comes from
    // the registry record, not the checkpoint, so recovered chains are
    // byte-identical to the pre-crash ones.
    let provenance = ModelProvenance {
        key: model_key(&tenant).to_owned(),
        version: record.version,
        meta: record.meta,
    };
    let mut session = FeedSession::new(
        record.model,
        rec.meta.service_names.clone(),
        state.cfg.feed.clone(),
    )
    .map_err(|e| e.to_string())?
    .with_provenance(provenance);
    if let Some(ckpt) = rec.checkpoint {
        session.restore(ckpt.feed);
    }
    for (seq, batch) in rec.replay {
        for (at, row) in batch {
            session
                .push(icfl_sim::SimTime::from_nanos(at), row)
                .map_err(|e| format!("replay seq {seq} at {at}ns: {e}"))?;
        }
    }
    Ok(Arc::new(TenantPipeline::open_recovered(
        &tenant,
        session,
        state.cfg.pipeline_options(),
        rec.store.with_config(state.cfg.store_config()),
        RecoveredCounters {
            last_seq: rec.last_seq,
            total_scrapes: rec.total_scrapes,
            fingerprints: rec.fingerprints,
        },
    )))
}

impl ServerHandle {
    /// The bound listen address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the worker pool, and joins every thread.
    /// Tenant pipelines keep their state until the handle drops.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop_http();
    }

    /// Simulates `kill -9` in-process: severs every in-flight connection,
    /// halts every tenant worker mid-queue (no final checkpoint, no WAL
    /// sync, no drain), and stops the listener. In-memory tenant state is
    /// abandoned exactly as a process death would abandon it; a new
    /// [`IcflServer::start`] over the same state directory is the only
    /// way forward. The kill-and-restart e2e test uses a real subprocess
    /// `SIGKILL`; this hook gives `chaosbench` the same semantics without
    /// one process per kill.
    pub fn crash(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        icfl_obs::counter_add("icfl_server_simulated_crashes_total", &[], 1);
        for (_, conn) in self.state.conns.lock().expect("conns lock").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let tenants: Vec<_> = self
            .state
            .tenants
            .read()
            .expect("tenants lock")
            .values()
            .cloned()
            .collect();
        for pipeline in &tenants {
            pipeline.crash();
        }
        self.stop_http();
    }

    fn stop_http(&mut self) {
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread dropped the sender; workers drain and exit.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// The pipeline registered under `tenant`, if any (tests and
    /// in-process harnesses; network clients use the routes).
    pub fn tenant(&self, tenant: &str) -> Option<Arc<TenantPipeline>> {
        self.state
            .tenants
            .read()
            .expect("tenants lock")
            .get(tenant)
            .cloned()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Saturated pool: tell the client to back off rather than
                // queueing unboundedly.
                icfl_obs::counter_add("icfl_server_connections_shed_total", &[], 1);
                let _ = http::write_response(
                    &mut stream,
                    503,
                    http::reason(503),
                    &[("retry-after", "1")],
                    b"worker pool saturated\n",
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn connection_worker(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<State>) {
    loop {
        let stream = {
            let rx = rx.lock().expect("http rx lock");
            rx.recv()
        };
        let Ok(stream) = stream else { return };
        icfl_obs::counter_add("icfl_server_connections_total", &[], 1);
        let id = state.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().expect("conns lock").insert(id, clone);
        }
        let _ = serve_connection(stream, state);
        state.conns.lock().expect("conns lock").remove(&id);
    }
}

fn serve_connection(stream: TcpStream, state: &Arc<State>) -> std::io::Result<()> {
    // An idle keep-alive peer must not pin a pool worker forever.
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let deadline = Instant::now() + REQUEST_DEADLINE;
        let req = match http::read_request(&mut reader, Some(deadline)) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
                ) =>
            {
                http::write_response(
                    &mut writer,
                    400,
                    http::reason(400),
                    &[],
                    format!("{e}\n").as_bytes(),
                    false,
                )?;
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                // The peer sent part of a request then stalled past the
                // deadline (slow loris or a wedged client): a typed 408
                // on the still-writable socket, and a journal count —
                // never a silent drop.
                icfl_obs::counter_add("icfl_server_conn_timeouts_total", &[], 1);
                let _ = http::write_response(
                    &mut writer,
                    408,
                    http::reason(408),
                    &[],
                    b"request read timed out\n",
                    false,
                );
                return Ok(());
            }
            // Idle keep-alive timeout before any request byte, or a
            // reset: close quietly — nothing of the peer's is lost.
            Err(_) => return Ok(()),
        };
        let keep_alive = req.keep_alive();
        let started = Instant::now();
        let reply = route(&req, state);
        icfl_obs::histogram_observe("icfl_server_request_latency", &[], started.elapsed());
        http::write_response(
            &mut writer,
            reply.status,
            http::reason(reply.status),
            &reply
                .headers
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect::<Vec<_>>(),
            &reply.body,
            keep_alive,
        )?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// A handler's reply before serialization.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn new(status: u16, body: impl Into<Vec<u8>>) -> Reply {
        Reply {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    fn json(status: u16, value: &impl Serialize) -> Reply {
        let mut body = serde_json::to_string(value)
            .expect("reply serializes")
            .into_bytes();
        body.push(b'\n');
        let mut reply = Reply::new(status, body);
        reply
            .headers
            .push(("content-type".to_owned(), "application/json".to_owned()));
        reply
    }

    fn text(status: u16, body: impl Into<String>) -> Reply {
        let mut s = body.into();
        if !s.ends_with('\n') {
            s.push('\n');
        }
        Reply::new(status, s.into_bytes())
    }
}

#[derive(Serialize)]
struct IngestAck {
    accepted: u64,
    /// Set only when the batch was an exact re-send of an accepted batch
    /// and was acknowledged without being re-applied.
    #[serde(skip_serializing_if = "std::ops::Not::not")]
    deduped: bool,
}

/// The `GET /incidents/<tenant>` body: ingest accounting plus every
/// verdict the tenant's session has produced so far. `Deserialize` so the
/// load generator and tests read it back typed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentsReport {
    /// The tenant queried.
    pub tenant: String,
    /// Scrapes accepted into the queue.
    pub scrapes_accepted: u64,
    /// Batches accepted into the queue.
    pub batches_accepted: u64,
    /// Batches the worker has pushed through the session.
    pub batches_processed: u64,
    /// Hopping windows the session has finalized.
    pub windows_emitted: u64,
    /// A sticky worker-side feed error, if the pipeline is poisoned.
    pub worker_error: Option<String>,
    /// Verdicts in confirmation order.
    pub verdicts: Vec<icfl_online::FeedVerdict>,
}

fn route(req: &Request, state: &Arc<State>) -> Reply {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let tenants = state.tenants.read().expect("tenants lock").len();
            Reply::text(200, format!("ok tenants={tenants}"))
        }
        ("GET", "/metrics") => {
            let text = icfl_obs::global().metrics.snapshot().to_prometheus();
            Reply::new(200, text.into_bytes())
        }
        _ => {
            if let Some(tenant) = path.strip_prefix("/session/") {
                return match req.method.as_str() {
                    "POST" => post_session(tenant, &req.body, state),
                    _ => Reply::text(405, "POST only"),
                };
            }
            if let Some(tenant) = path.strip_prefix("/ingest/") {
                return match req.method.as_str() {
                    "POST" => post_ingest(tenant, &req.body, state),
                    _ => Reply::text(405, "POST only"),
                };
            }
            if let Some(tenant) = path.strip_prefix("/incidents/") {
                return match req.method.as_str() {
                    "GET" => get_incidents(tenant, state),
                    _ => Reply::text(405, "GET only"),
                };
            }
            if let Some(rest) = path.strip_prefix("/explain/") {
                return match req.method.as_str() {
                    "GET" => get_explain(rest, state),
                    _ => Reply::text(405, "GET only"),
                };
            }
            if let Some(tenant) = path.strip_prefix("/drain/") {
                return match req.method.as_str() {
                    "GET" => get_drain(tenant, state),
                    _ => Reply::text(405, "GET only"),
                };
            }
            Reply::text(404, format!("no route for {path}"))
        }
    }
}

/// Tenant names are `<app>` or `<app>:<stream-suffix>`; the app prefix is
/// the registry key, so many streams share one trained model.
fn model_key(tenant: &str) -> &str {
    tenant.split(':').next().unwrap_or(tenant)
}

/// Tenant names double as state-directory names, so the path-traversal
/// spellings `.` and `..` are rejected on top of the charset rule.
fn valid_tenant_name(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 128
        && tenant != "."
        && tenant != ".."
        && tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

fn post_session(tenant: &str, body: &[u8], state: &Arc<State>) -> Reply {
    if !valid_tenant_name(tenant) {
        return Reply::text(400, "tenant names are [A-Za-z0-9_.:-]{1,128}, not '.'/'..'");
    }
    let meta: TraceMeta = match std::str::from_utf8(body)
        .ok()
        .and_then(|s| serde_json::from_str(s).ok())
    {
        Some(meta) => meta,
        None => return Reply::text(400, "body must be TraceMeta JSON"),
    };
    if state
        .tenants
        .read()
        .expect("tenants lock")
        .contains_key(tenant)
    {
        return Reply::text(409, format!("tenant {tenant} already registered"));
    }
    let record = match state.registry.load_latest(model_key(tenant)) {
        Ok(record) => record,
        Err(RegistryError::UnknownModel(name)) => {
            return Reply::text(404, format!("no model '{name}' in the registry"));
        }
        Err(e) => return Reply::text(500, format!("registry: {e}")),
    };
    let service_names = meta.service_names.clone();
    let provenance = ModelProvenance {
        key: model_key(tenant).to_owned(),
        version: record.version,
        meta: record.meta,
    };
    let session = match FeedSession::new(record.model, meta.service_names, state.cfg.feed.clone()) {
        Ok(session) => session.with_provenance(provenance),
        Err(e) => return Reply::text(400, format!("{e}")),
    };
    // Registration is completed under the write lock: the store create
    // wipes any stale tenant directory, so a racing duplicate must lose
    // *before* it can wipe the winner's files.
    let mut tenants = state.tenants.write().expect("tenants lock");
    if tenants.contains_key(tenant) {
        return Reply::text(409, format!("tenant {tenant} already registered"));
    }
    let store = match &state.cfg.state_dir {
        Some(dir) => {
            let meta = StoredMeta {
                tenant: tenant.to_owned(),
                service_names,
            };
            match TenantStore::create(dir, &meta) {
                Ok(store) => Some(store.with_config(state.cfg.store_config())),
                Err(e) => return Reply::text(500, format!("state dir: {e}")),
            }
        }
        None => None,
    };
    let pipeline = Arc::new(TenantPipeline::open_with(
        tenant,
        session,
        state.cfg.pipeline_options(),
        store,
    ));
    tenants.insert(tenant.to_owned(), pipeline);
    icfl_obs::counter_add("icfl_server_sessions_opened_total", &[], 1);
    Reply::text(
        200,
        format!("tenant {tenant} serving model v{}", record.version),
    )
}

fn lookup(tenant: &str, state: &Arc<State>) -> Option<Arc<TenantPipeline>> {
    state
        .tenants
        .read()
        .expect("tenants lock")
        .get(tenant)
        .cloned()
}

fn post_ingest(tenant: &str, body: &[u8], state: &Arc<State>) -> Reply {
    let Some(pipeline) = lookup(tenant, state) else {
        return Reply::text(404, format!("unknown tenant {tenant}"));
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::text(400, "body must be UTF-8 scrape lines");
    };
    let mut batch: Batch = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_scrape_line(line) {
            Ok(scrape) => batch.push(scrape),
            Err(e) => return Reply::text(400, format!("line {}: {e}", i + 1)),
        }
    }
    match pipeline.submit(batch) {
        Ok(Accepted::Fresh { scrapes }) => Reply::json(
            200,
            &IngestAck {
                accepted: scrapes,
                deduped: false,
            },
        ),
        Ok(Accepted::Duplicate { scrapes }) => Reply::json(
            200,
            &IngestAck {
                accepted: scrapes,
                deduped: true,
            },
        ),
        Err(Reject::QueueFull { retry_after_ms }) => {
            let mut reply = Reply::text(429, "tenant queue full");
            // `retry-after` is integral seconds per the HTTP spec; the
            // millisecond hint rides a custom header for tight loops.
            reply.headers.push((
                "retry-after".to_owned(),
                retry_after_ms.div_ceil(1000).max(1).to_string(),
            ));
            reply
                .headers
                .push(("x-retry-after-ms".to_owned(), retry_after_ms.to_string()));
            reply
        }
        Err(Reject::OutOfOrder(e)) => Reply::text(409, e),
        Err(Reject::Malformed(e)) => Reply::text(400, e),
        Err(r @ Reject::Draining) => Reply::text(409, r.to_string()),
        Err(Reject::Internal(e)) => Reply::text(500, e),
    }
}

fn get_incidents(tenant: &str, state: &Arc<State>) -> Reply {
    let Some(pipeline) = lookup(tenant, state) else {
        return Reply::text(404, format!("unknown tenant {tenant}"));
    };
    let (windows, verdicts) = pipeline.with_session(|s| (s.windows_emitted(), s.verdicts()));
    Reply::json(
        200,
        &IncidentsReport {
            tenant: tenant.to_owned(),
            scrapes_accepted: pipeline.scrapes_accepted(),
            batches_accepted: pipeline.accepted(),
            batches_processed: pipeline.processed(),
            windows_emitted: windows,
            worker_error: pipeline.worker_error(),
            verdicts,
        },
    )
}

/// `GET /explain/<tenant>/<incident-id>`: the incident's full evidence
/// chain as JSON. Tenant names never contain `/`, so the split at the
/// last `/` is unambiguous. The id is the incident's confirmation-order
/// index — the position of its row in `/incidents` verdicts.
fn get_explain(rest: &str, state: &Arc<State>) -> Reply {
    let Some((tenant, id)) = rest.rsplit_once('/') else {
        return Reply::text(400, "path is /explain/<tenant>/<incident-id>");
    };
    let Ok(incident) = id.parse::<usize>() else {
        return Reply::text(400, format!("incident id {id:?} is not an index"));
    };
    let Some(pipeline) = lookup(tenant, state) else {
        return Reply::text(404, format!("unknown tenant {tenant}"));
    };
    let chain = pipeline.with_session(|s| s.explain(incident).cloned());
    let found = if chain.is_some() { "true" } else { "false" };
    icfl_obs::counter_add("icfl_server_explain_requests_total", &[("found", found)], 1);
    match chain {
        Some(chain) => Reply::json(200, &chain),
        None => Reply::text(404, format!("tenant {tenant} has no incident {incident}")),
    }
}

fn get_drain(tenant: &str, state: &Arc<State>) -> Reply {
    let Some(pipeline) = lookup(tenant, state) else {
        return Reply::text(404, format!("unknown tenant {tenant}"));
    };
    // Close the stream first: anything racing this drain is rejected with
    // a typed 409, so the verdicts observed once the queue empties are
    // complete — no batch can slip in behind the drain.
    pipeline.begin_drain();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pipeline.drained() {
        if Instant::now() >= deadline {
            return Reply::text(504, "tenant queue did not drain within 10s");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Reply::json(
        200,
        &IngestAck {
            accepted: pipeline.processed(),
            deduped: false,
        },
    )
}
