//! A minimal HTTP/1.1 codec over blocking `std::net` streams: exactly the
//! subset the ingest server and its load generator speak to each other —
//! request line + headers + `Content-Length` bodies, keep-alive by
//! default, no chunked encoding, no TLS. Hard caps on line, header, and
//! body sizes keep a hostile peer from ballooning memory, and an optional
//! per-message deadline caps how long a drip-feeding (slow-loris) peer
//! can pin a connection worker: each socket read resets the kernel
//! `SO_RCVTIMEO`, so only a wall-clock deadline across the whole message
//! bounds a peer sending one byte per poll.
//!
//! Readers are generic over [`BufRead`], so the same parsing code serves
//! sockets in production and in-memory byte streams in the fuzz tests.
//! Every parse failure is a typed error: [`io::ErrorKind::InvalidData`]
//! for malformed bytes (the server answers 400),
//! [`io::ErrorKind::TimedOut`] for a peer that stalled mid-message (408),
//! and [`io::ErrorKind::UnexpectedEof`] for a body cut short.

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Longest accepted request/status/header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per message.
const MAX_HEADERS: usize = 64;
/// Largest accepted body (a bulk scrape batch for a large fleet is a few
/// hundred KiB; 16 MiB leaves two orders of magnitude of headroom).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`).
    pub method: String,
    /// Request target (path + optional query), percent-decoding not
    /// applied — tenant names stay on the URL-safe alphabet.
    pub path: String,
    /// Header pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lowercased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open (HTTP/1.1
    /// default; `Connection: close` opts out).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One parsed HTTP response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of the (lowercased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

fn timed_out(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, detail.to_owned())
}

fn deadline_exceeded(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Whether `e` is the kernel read-timeout error (`SO_RCVTIMEO` expiring
/// surfaces as `WouldBlock` on Unix, `TimedOut` elsewhere).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
/// `Ok(None)` means clean EOF before any byte. A socket timeout before
/// any byte of the line propagates verbatim (an idle peer); a timeout —
/// or the deadline expiring — after partial progress is a typed
/// [`io::ErrorKind::TimedOut`] (a stalled peer mid-message).
fn read_line<R: BufRead>(r: &mut R, deadline: Option<Instant>) -> io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if deadline_exceeded(deadline) {
            return Err(timed_out("deadline exceeded mid-line"));
        }
        let available = match r.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) && !line.is_empty() => {
                return Err(timed_out("peer stalled mid-line"));
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(bad("unexpected EOF mid-line"));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        line.extend_from_slice(&available[..take]);
        r.consume(take);
        if line.len() > MAX_LINE + 1 {
            return Err(bad("header line too long"));
        }
        if newline.is_some() {
            break;
        }
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| bad("non-UTF-8 header line"))
}

/// Fills `body` from `r`, turning EOF into
/// [`io::ErrorKind::UnexpectedEof`] (truncated body) and stalls into
/// [`io::ErrorKind::TimedOut`].
fn read_body<R: BufRead>(r: &mut R, body: &mut [u8], deadline: Option<Instant>) -> io::Result<()> {
    let mut filled = 0;
    while filled < body.len() {
        if deadline_exceeded(deadline) {
            return Err(timed_out("deadline exceeded mid-body"));
        }
        match r.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "unexpected EOF mid-body",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(timed_out("peer stalled mid-body")),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Lowercased header pairs in arrival order.
type Headers = Vec<(String, String)>;

/// Reads headers and a `Content-Length` body after the start line. A
/// stall anywhere in here is mid-message by definition, so socket
/// timeouts map to [`io::ErrorKind::TimedOut`].
fn read_headers_and_body<R: BufRead>(
    r: &mut R,
    deadline: Option<Instant>,
) -> io::Result<(Headers, Vec<u8>)> {
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, deadline) {
            Ok(Some(line)) => line,
            Ok(None) => return Err(bad("EOF in headers")),
            Err(e) if is_timeout(&e) => return Err(timed_out("peer stalled in headers")),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("header without ':'"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    let len: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse().map_err(|_| bad("bad Content-Length"))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(bad("body exceeds cap"));
    }
    let mut body = vec![0u8; len];
    read_body(r, &mut body, deadline)?;
    Ok((headers, body))
}

/// Reads one request. `Ok(None)` on clean EOF (peer closed between
/// requests). A socket timeout *before* the first byte propagates with
/// its original kind (an idle keep-alive peer — the server closes
/// quietly); any stall after that is [`io::ErrorKind::TimedOut`] (the
/// server answers 408).
pub fn read_request<R: BufRead>(
    r: &mut R,
    deadline: Option<Instant>,
) -> io::Result<Option<Request>> {
    let Some(start) = read_line(r, deadline)? else {
        return Ok(None);
    };
    let mut parts = start.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Err(bad(format!("malformed request line: {start:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported version: {version}")));
    }
    let (headers, body) = read_headers_and_body(r, deadline)?;
    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    }))
}

/// Reads one response (client side). `Ok(None)` on clean EOF.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Option<Response>> {
    let Some(start) = read_line(r, None)? else {
        return Ok(None);
    };
    let mut parts = start.split_ascii_whitespace();
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => {
            code.parse().map_err(|_| bad("bad status code"))?
        }
        _ => return Err(bad(format!("malformed status line: {start:?}"))),
    };
    let (headers, body) = read_headers_and_body(r, None)?;
    Ok(Some(Response {
        status,
        headers,
        body,
    }))
}

/// Writes one request with a `Content-Length` body. The whole message is
/// assembled first and written in one call — interleaving small writes
/// on a raw socket trips Nagle/delayed-ACK stalls on loopback.
pub fn write_request(w: &mut impl Write, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
    let mut msg = Vec::with_capacity(64 + body.len());
    write!(
        msg,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )?;
    msg.extend_from_slice(body);
    w.write_all(&msg)?;
    w.flush()
}

/// Writes one response in a single socket write (see [`write_request`]
/// on why). Extra headers ride along verbatim; the codec adds
/// `content-length` and, when `keep_alive` is false, `connection: close`.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut msg = Vec::with_capacity(96 + body.len());
    write!(
        msg,
        "HTTP/1.1 {status} {reason}\r\ncontent-length: {}\r\n",
        body.len()
    )?;
    for (k, v) in extra_headers {
        write!(msg, "{k}: {v}\r\n")?;
    }
    if !keep_alive {
        write!(msg, "connection: close\r\n")?;
    }
    write!(msg, "\r\n")?;
    msg.extend_from_slice(body);
    w.write_all(&msg)?;
    w.flush()
}

/// The conventional reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}
