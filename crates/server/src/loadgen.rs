//! The HTTP load generator core: N worker threads replaying recorded
//! scrape traces against a running ingest server, looping each trace with
//! a time offset so streams are arbitrarily long, honoring 429
//! backpressure, and scoring detection latency against the trace's
//! scheduled fault episodes.
//!
//! The binary `icfl-loadgen-http` is a thin flag-parsing shell over
//! [`run`]; the `serverbench` experiment and the loopback e2e test drive
//! this module in-process.

use crate::client::HttpClient;
use crate::server::IncidentsReport;
use icfl_online::FeedVerdict;
use icfl_scenario::trace::{encode_scrape_line, ScrapeTrace};
use icfl_sim::Rng;
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// How scrapes are packed into `POST /ingest` batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One scrape per request — maximal request pressure.
    Single,
    /// `bulk_size` scrapes per request — maximal ingest throughput.
    Bulk,
    /// Uniformly random batch size in `1..=bulk_size` per request.
    Random,
}

impl std::str::FromStr for LoadMode {
    type Err = String;

    fn from_str(s: &str) -> Result<LoadMode, String> {
        match s {
            "single" => Ok(LoadMode::Single),
            "bulk" => Ok(LoadMode::Bulk),
            "random" => Ok(LoadMode::Random),
            other => Err(format!("unknown mode '{other}' (single|bulk|random)")),
        }
    }
}

/// One load-generation campaign.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Recorded traces to replay; worker `w` replays `traces[w % len]`.
    pub traces: Vec<ScrapeTrace>,
    /// Total scrapes to send across all workers.
    pub total: u64,
    /// Concurrent worker threads, each its own tenant and connection.
    pub concurrency: usize,
    /// Batch size cap (exact size in bulk mode, upper bound in random).
    pub bulk_size: usize,
    /// Batch packing mode.
    pub mode: LoadMode,
    /// Per-worker send rate in scrapes/second; `0.0` means unthrottled.
    pub rate: f64,
    /// Seed for random-mode batch sizing.
    pub seed: u64,
    /// Tenant names are `<app>:<prefix>w<worker>`; the prefix keeps
    /// repeated campaigns against one server from colliding.
    pub tenant_prefix: String,
    /// Transport errors tolerated per request before giving up: on an
    /// I/O failure the worker reconnects and re-sends the same batch
    /// (safe — the server acknowledges exact re-sends idempotently).
    /// `0` fails fast, the right setting against a healthy server.
    pub max_transport_retries: u32,
    /// 4xx rejects tolerated per request before giving up. Only useful
    /// when a chaos proxy may corrupt frames in flight — a clean resend
    /// then succeeds; `0` treats every reject as fatal.
    pub max_reject_retries: u32,
}

/// One worker's tally.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    scrapes_sent: u64,
    batches_ok: u64,
    batches_retried: u64,
    transport_retries: u64,
    reject_retries: u64,
    /// Last stream timestamp sent, nanoseconds.
    last_sent_nanos: u64,
    loops_started: u64,
}

/// Per-tenant outcome after the drain barrier.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant name this worker streamed as.
    pub tenant: String,
    /// Scrapes the server acknowledged for this tenant.
    pub scrapes_accepted: u64,
    /// Fault-episode instances fully contained in what was sent.
    pub incidents_expected: u64,
    /// Every verdict the tenant's session produced.
    pub verdicts: Vec<FeedVerdict>,
    /// Confirmation latency per verdict: seconds from the most recent
    /// scheduled episode start at or before the confirmation.
    pub detect_latencies_secs: Vec<f64>,
}

/// The campaign result.
#[derive(Debug, Clone)]
pub struct LoadgenSummary {
    /// Scrapes sent (and acknowledged) across all workers.
    pub scrapes_sent: u64,
    /// Accepted ingest batches.
    pub batches_ok: u64,
    /// 429 rejections that were retried (each eventually accepted).
    pub batches_retried: u64,
    /// Transport failures survived by reconnect-and-resend.
    pub transport_retries: u64,
    /// Chaos-induced 4xx rejects survived by a clean resend.
    pub reject_retries: u64,
    /// Wall-clock of the send phase: from the post-registration barrier
    /// (all tenants registered, models loaded) to the last ingest ack.
    pub send_wall: Duration,
    /// Wall-clock including the drain barrier and verdict fetch.
    pub total_wall: Duration,
    /// Per-tenant outcomes, worker order.
    pub tenants: Vec<TenantOutcome>,
}

impl LoadgenSummary {
    /// Sustained send throughput, scrapes per second.
    pub fn scrapes_per_sec(&self) -> f64 {
        if self.send_wall.is_zero() {
            return 0.0;
        }
        self.scrapes_sent as f64 / self.send_wall.as_secs_f64()
    }

    /// Episode instances expected across all tenants.
    pub fn incidents_expected(&self) -> u64 {
        self.tenants.iter().map(|t| t.incidents_expected).sum()
    }

    /// Incidents actually confirmed across all tenants.
    pub fn incidents_detected(&self) -> u64 {
        self.tenants.iter().map(|t| t.verdicts.len() as u64).sum()
    }

    /// The `q`-quantile of detection latency across all tenants, in
    /// milliseconds (`None` until something was detected).
    pub fn detect_p(&self, q: f64) -> Option<f64> {
        let mut lat: Vec<f64> = self
            .tenants
            .iter()
            .flat_map(|t| t.detect_latencies_secs.iter().copied())
            .collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).max(1) - 1;
        Some(lat[rank.min(lat.len() - 1)] * 1000.0)
    }

    /// The lithair-style one-line summary the binary prints.
    pub fn one_line(&self) -> String {
        let fmt_p = |q| match self.detect_p(q) {
            Some(ms) => format!("{ms:.0}ms"),
            None => "n/a".to_owned(),
        };
        let chaos = if self.transport_retries + self.reject_retries > 0 {
            format!(
                " | chaos retries transport={} reject={}",
                self.transport_retries, self.reject_retries
            )
        } else {
            String::new()
        };
        format!(
            "{} scrapes in {:.2}s ({:.0} scrapes/s) | batches ok={} retried={} | incidents {}/{} detected | detect p50={} p99={}{chaos}",
            self.scrapes_sent,
            self.send_wall.as_secs_f64(),
            self.scrapes_per_sec(),
            self.batches_ok,
            self.batches_retried,
            self.incidents_detected(),
            self.incidents_expected(),
            fmt_p(0.50),
            fmt_p(0.99),
        )
    }
}

/// A non-transport failure during the campaign.
#[derive(Debug)]
pub enum LoadgenError {
    /// The server answered something other than 200/429 where 200 was
    /// required.
    Http(String),
    /// Transport failure.
    Io(std::io::Error),
    /// The configuration cannot run (no traces, zero concurrency, …).
    Config(String),
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Http(e) => write!(f, "unexpected response: {e}"),
            LoadgenError::Io(e) => write!(f, "transport: {e}"),
            LoadgenError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

impl From<std::io::Error> for LoadgenError {
    fn from(e: std::io::Error) -> LoadgenError {
        LoadgenError::Io(e)
    }
}

/// Runs one campaign to completion: register every tenant, stream the
/// scrape budget, drain, and fetch verdicts.
///
/// # Errors
///
/// [`LoadgenError`] on bad configuration, transport failure, or any
/// server response outside the accept/backpressure protocol.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenSummary, LoadgenError> {
    if cfg.traces.is_empty() {
        return Err(LoadgenError::Config("no traces to replay".into()));
    }
    if cfg.concurrency == 0 || cfg.total == 0 {
        return Err(LoadgenError::Config(
            "concurrency and total must be > 0".into(),
        ));
    }
    if cfg.bulk_size == 0 {
        return Err(LoadgenError::Config("bulk-size must be > 0".into()));
    }
    if cfg.traces.iter().any(|t| t.scrapes.is_empty()) {
        return Err(LoadgenError::Config("a trace has no scrapes".into()));
    }

    let started = Instant::now();
    let worker_count = cfg.concurrency;
    // Workers rendezvous after registering their tenants (model load is
    // the expensive part of setup), so `send_wall` measures sustained
    // ingest throughput, not registry parsing.
    let send_gate = Barrier::new(worker_count);
    let send_started = Mutex::new(None::<Instant>);
    let results: Vec<Result<(String, WorkerStats), LoadgenError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count)
            .map(|w| {
                // Spread the budget: the first `total % workers` workers
                // take one extra scrape.
                let share = cfg.total / worker_count as u64
                    + u64::from((w as u64) < cfg.total % worker_count as u64);
                let send_gate = &send_gate;
                let send_started = &send_started;
                scope.spawn(move || worker(cfg, w, share, send_gate, send_started))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let send_wall = send_started
        .lock()
        .expect("send clock lock")
        .map_or_else(|| started.elapsed(), |t| t.elapsed());

    let mut stats_by_tenant = Vec::new();
    let mut scrapes_sent = 0;
    let mut batches_ok = 0;
    let mut batches_retried = 0;
    let mut transport_retries = 0;
    let mut reject_retries = 0;
    for res in results {
        let (tenant, stats) = res?;
        scrapes_sent += stats.scrapes_sent;
        batches_ok += stats.batches_ok;
        batches_retried += stats.batches_retried;
        transport_retries += stats.transport_retries;
        reject_retries += stats.reject_retries;
        stats_by_tenant.push((tenant, stats));
    }

    // Drain barrier + verdict fetch, one tenant at a time.
    let mut client = HttpClient::connect(cfg.addr.clone());
    let mut rng = Rng::seeded(cfg.seed ^ 0xd7a1_9e00);
    let mut tenants = Vec::new();
    for (w, (tenant, stats)) in stats_by_tenant.iter().enumerate() {
        get_ok(&mut client, &format!("/drain/{tenant}"), cfg, &mut rng)
            .map_err(|e| prefixed(e, &format!("drain {tenant}")))?;
        let resp = get_ok(&mut client, &format!("/incidents/{tenant}"), cfg, &mut rng)
            .map_err(|e| prefixed(e, &format!("incidents {tenant}")))?;
        let report: IncidentsReport = serde_json::from_str(&resp.text())
            .map_err(|e| LoadgenError::Http(format!("incidents {tenant}: bad JSON: {e}")))?;
        if let Some(err) = report.worker_error {
            return Err(LoadgenError::Http(format!(
                "tenant {tenant} poisoned: {err}"
            )));
        }
        let trace = &cfg.traces[w % cfg.traces.len()];
        let (incidents_expected, detect_latencies_secs) = score(trace, stats, &report.verdicts);
        tenants.push(TenantOutcome {
            tenant: tenant.clone(),
            scrapes_accepted: report.scrapes_accepted,
            incidents_expected,
            verdicts: report.verdicts,
            detect_latencies_secs,
        });
    }

    Ok(LoadgenSummary {
        scrapes_sent,
        batches_ok,
        batches_retried,
        transport_retries,
        reject_retries,
        send_wall,
        total_wall: started.elapsed(),
        tenants,
    })
}

/// Reattributes an error to a specific request for the campaign report.
fn prefixed(e: LoadgenError, what: &str) -> LoadgenError {
    match e {
        LoadgenError::Http(msg) => LoadgenError::Http(format!("{what}: {msg}")),
        other => other,
    }
}

/// Jittered backoff for retry loops: `base_ms` plus a seeded uniform
/// spread of up to half of it, so synchronized workers de-correlate
/// instead of re-arriving as a retry storm.
fn backoff(rng: &mut Rng, base_ms: u64) -> Duration {
    Duration::from_millis(base_ms + rng.below(base_ms / 2 + 1))
}

/// `GET path` expecting 200, surviving up to the configured transport
/// failures (reconnect) and chaos-induced 4xx rejects (clean resend).
fn get_ok(
    client: &mut HttpClient,
    path: &str,
    cfg: &LoadgenConfig,
    rng: &mut Rng,
) -> Result<crate::http::Response, LoadgenError> {
    let mut transport = 0u32;
    let mut rejects = 0u32;
    loop {
        match client.get(path) {
            Ok(resp) if resp.status == 200 => return Ok(resp),
            Ok(resp) if resp.status >= 400 && rejects < cfg.max_reject_retries => {
                rejects += 1;
                std::thread::sleep(backoff(rng, 10));
            }
            Ok(resp) => {
                return Err(LoadgenError::Http(format!(
                    "{} {}",
                    resp.status,
                    resp.text().trim()
                )));
            }
            Err(_) if transport < cfg.max_transport_retries => {
                transport += 1;
                std::thread::sleep(backoff(rng, 20));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Time shift applied to loop `l` of a trace so timestamps keep strictly
/// increasing across loops.
fn loop_offset_nanos(trace: &ScrapeTrace, l: u64) -> u64 {
    let last = trace.scrapes.last().map_or(0, |&(t, _)| t);
    l * (last + trace.meta.interval_nanos)
}

/// Expected incidents and per-verdict detection latency for one tenant:
/// an episode instance counts as expected once its whole `[start, end]`
/// span was sent; a verdict's latency is measured from the most recent
/// episode start at or before its confirmation.
fn score(trace: &ScrapeTrace, stats: &WorkerStats, verdicts: &[FeedVerdict]) -> (u64, Vec<f64>) {
    let mut starts_secs = Vec::new();
    let mut expected = 0;
    for l in 0..stats.loops_started {
        let offset = loop_offset_nanos(trace, l);
        for ep in &trace.meta.episodes {
            let start = ep.start_nanos + offset;
            let end = ep.end_nanos + offset;
            starts_secs.push(start as f64 / 1e9);
            if end <= stats.last_sent_nanos {
                expected += 1;
            }
        }
    }
    starts_secs.sort_by(f64::total_cmp);
    let latencies = verdicts
        .iter()
        .filter_map(|v| {
            let at = v.confirmed_at_secs;
            starts_secs.iter().rev().find(|&&s| s <= at).map(|s| at - s)
        })
        .collect();
    (expected, latencies)
}

/// Registers `tenant`, surviving the configured transport failures and
/// chaos-induced rejects. A 409 "already registered" after a retry is
/// success: the first attempt reached the server but its ack was lost.
fn register(
    client: &mut HttpClient,
    tenant: &str,
    trace: &ScrapeTrace,
    cfg: &LoadgenConfig,
    rng: &mut Rng,
) -> Result<(), LoadgenError> {
    let meta = serde_json::to_string(&trace.meta).expect("meta serializes");
    let mut transport = 0u32;
    let mut rejects = 0u32;
    loop {
        match client.post(&format!("/session/{tenant}"), meta.as_bytes()) {
            Ok(resp) if resp.status == 200 => return Ok(()),
            Ok(resp)
                if resp.status == 409
                    && cfg.max_transport_retries > 0
                    && resp.text().contains("already registered") =>
            {
                // A lost ack on an applied registration: the client's
                // transparent reconnect (or our retry) re-posted it.
                return Ok(());
            }
            Ok(resp) if resp.status >= 400 && rejects < cfg.max_reject_retries => {
                rejects += 1;
                std::thread::sleep(backoff(rng, 10));
            }
            Ok(resp) => {
                return Err(LoadgenError::Http(format!(
                    "session {tenant}: {} {}",
                    resp.status,
                    resp.text().trim()
                )));
            }
            Err(_) if transport < cfg.max_transport_retries => {
                transport += 1;
                std::thread::sleep(backoff(rng, 20));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn worker(
    cfg: &LoadgenConfig,
    w: usize,
    share: u64,
    send_gate: &Barrier,
    send_started: &Mutex<Option<Instant>>,
) -> Result<(String, WorkerStats), LoadgenError> {
    let trace = &cfg.traces[w % cfg.traces.len()];
    let tenant = format!("{}:{}w{w}", trace.meta.app, cfg.tenant_prefix);
    let mut client = HttpClient::connect(cfg.addr.clone());
    let mut rng = Rng::seeded(cfg.seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));

    // Register the tenant; the server loads the model keyed by the app
    // prefix of the tenant name. Every worker reaches the barrier even on
    // failure — a missing peer would deadlock the rest.
    let registered = register(&mut client, &tenant, trace, cfg, &mut rng);
    if send_gate.wait().is_leader() {
        *send_started.lock().expect("send clock lock") = Some(Instant::now());
    }
    registered?;

    let mut stats = WorkerStats::default();
    let throttle_start = Instant::now();
    let mut cursor = 0usize; // index into trace.scrapes within the current loop
    let mut loop_idx = 0u64;
    stats.loops_started = 1;

    while stats.scrapes_sent < share {
        let remaining = (share - stats.scrapes_sent) as usize;
        let want = match cfg.mode {
            LoadMode::Single => 1,
            LoadMode::Bulk => cfg.bulk_size,
            LoadMode::Random => rng.range_inclusive(1, cfg.bulk_size as u64) as usize,
        }
        .min(remaining)
        // Batches never straddle a loop boundary, so timestamps within a
        // batch are always strictly increasing.
        .min(trace.scrapes.len() - cursor);

        let offset = loop_offset_nanos(trace, loop_idx);
        let mut body = String::new();
        for (t, row) in &trace.scrapes[cursor..cursor + want] {
            body.push_str(&encode_scrape_line(t + offset, row));
            body.push('\n');
        }
        let last_in_batch = trace.scrapes[cursor + want - 1].0 + offset;

        // Send, honoring 429 backpressure with the server's retry hint
        // (millisecond header, falling back to the spec's integral
        // `retry-after` seconds) plus seeded jitter, so workers that were
        // rejected together don't re-arrive together as a retry storm.
        let mut transport = 0u32;
        let mut rejects = 0u32;
        loop {
            let resp = match client.post(&format!("/ingest/{tenant}"), body.as_bytes()) {
                Ok(resp) => resp,
                Err(_) if transport < cfg.max_transport_retries => {
                    // Reconnect and re-send the same batch: if the lost
                    // ack was for an accepted batch, the server dedupes
                    // the re-send instead of rejecting it.
                    transport += 1;
                    stats.transport_retries += 1;
                    std::thread::sleep(backoff(&mut rng, 20));
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            match resp.status {
                200 => break,
                429 => {
                    stats.batches_retried += 1;
                    let ms = resp
                        .header("x-retry-after-ms")
                        .and_then(|v| v.parse::<u64>().ok())
                        .or_else(|| {
                            resp.header("retry-after")
                                .and_then(|v| v.parse::<u64>().ok())
                                .map(|secs| secs * 1000)
                        })
                        .unwrap_or(50);
                    std::thread::sleep(backoff(&mut rng, ms.clamp(1, 1000)));
                }
                status if (400..500).contains(&status) && rejects < cfg.max_reject_retries => {
                    // Under a chaos proxy a corrupted frame draws a typed
                    // 4xx; the batch was not applied, so a clean resend
                    // is safe and usually succeeds.
                    rejects += 1;
                    stats.reject_retries += 1;
                    std::thread::sleep(backoff(&mut rng, 10));
                }
                status => {
                    return Err(LoadgenError::Http(format!(
                        "ingest {tenant}: {status} {}",
                        resp.text().trim()
                    )));
                }
            }
        }
        stats.batches_ok += 1;
        stats.scrapes_sent += want as u64;
        stats.last_sent_nanos = last_in_batch;
        cursor += want;
        if cursor == trace.scrapes.len() {
            cursor = 0;
            loop_idx += 1;
            stats.loops_started += 1;
        }

        if cfg.rate > 0.0 {
            // Pace against the ideal schedule rather than sleeping a fixed
            // amount, so parse/transport time doesn't skew the rate.
            let due =
                throttle_start + Duration::from_secs_f64(stats.scrapes_sent as f64 / cfg.rate);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
    }

    Ok((tenant, stats))
}
