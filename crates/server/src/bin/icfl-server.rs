//! The ingest server binary: bind, recover, serve, run until killed.
//!
//! ```text
//! icfl-server --addr 127.0.0.1:7171 --models results/models \
//!             [--state-dir DIR] [--checkpoint-every N] [--fsync-every N] \
//!             [--max-worker-restarts N] [--queue-cap 64] [--http-workers 16] \
//!             [--retry-after-ms 25] [--port-file FILE] [--log info]
//! ```
//!
//! With `--state-dir`, accepted batches are write-ahead logged and
//! decision state checkpointed there; on the next start the server
//! recovers every tenant from that directory before accepting traffic.
//! `--port-file` writes the actual bound address (useful with port 0) so
//! a supervisor can find the server after an ephemeral-port restart.

use icfl_server::{IcflServer, ServerConfig};

const USAGE: &str = "usage: icfl-server [--addr HOST:PORT] [--models DIR] \
[--state-dir DIR] [--checkpoint-every N] [--fsync-every N] [--max-worker-restarts N] \
[--queue-cap N] [--http-workers N] [--retry-after-ms MS] [--port-file FILE] [--log LEVEL] \
[--quiet] [-v] [-vv]";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::quick("results/models");
    cfg.addr = "127.0.0.1:7171".to_owned();
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--models" => cfg.registry_root = value("--models").into(),
            "--state-dir" => cfg.state_dir = Some(value("--state-dir").into()),
            "--checkpoint-every" => {
                cfg.checkpoint_every_ticks = value("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| fail("--checkpoint-every must be a positive integer"));
            }
            "--fsync-every" => {
                cfg.fsync_every_batches = value("--fsync-every")
                    .parse()
                    .unwrap_or_else(|_| fail("--fsync-every must be a positive integer"));
            }
            "--max-worker-restarts" => {
                cfg.max_worker_restarts = value("--max-worker-restarts")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-worker-restarts must be an integer"));
            }
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue-cap must be a positive integer"));
            }
            "--http-workers" => {
                cfg.http_workers = value("--http-workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--http-workers must be a positive integer"));
            }
            "--retry-after-ms" => {
                cfg.retry_after_ms = value("--retry-after-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--retry-after-ms must be an integer"));
            }
            "--port-file" => port_file = Some(value("--port-file")),
            "--log" => {
                let name = value("--log");
                match icfl_obs::Level::parse(&name) {
                    Some(level) => icfl_obs::logger::set_level(level),
                    None => fail(&format!("unknown log level '{name}'")),
                }
            }
            "--quiet" | "-q" => icfl_obs::logger::set_level(icfl_obs::Level::Error),
            "-v" => icfl_obs::logger::set_level(icfl_obs::Level::Debug),
            "-vv" => icfl_obs::logger::set_level(icfl_obs::Level::Trace),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if cfg.queue_cap == 0 || cfg.http_workers == 0 {
        fail("--queue-cap and --http-workers must be > 0");
    }

    let handle = match IcflServer::start(cfg.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            icfl_obs::error!("icfl-server: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = port_file {
        // Written after recovery + bind, so a reader that sees the file
        // knows the server is accepting traffic. Atomic rename keeps a
        // concurrent reader from seeing a half-written address.
        let tmp = format!("{path}.tmp");
        let write = std::fs::write(&tmp, handle.addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            icfl_obs::error!("icfl-server: write --port-file {path}: {e}");
            std::process::exit(1);
        }
    }
    icfl_obs::info!(
        "icfl-server listening on {} (models: {}, state: {}, queue cap {}, {} http workers)",
        handle.addr(),
        cfg.registry_root.display(),
        cfg.state_dir
            .as_ref()
            .map_or_else(|| "none".to_owned(), |p| p.display().to_string()),
        cfg.queue_cap,
        cfg.http_workers
    );
    // Serve until the process is killed; all work happens on the server's
    // own threads.
    loop {
        std::thread::park();
    }
}
