//! The ingest server binary: bind, serve, run until killed.
//!
//! ```text
//! icfl-server --addr 127.0.0.1:7171 --models results/models \
//!             [--queue-cap 64] [--http-workers 16] \
//!             [--retry-after-ms 25] [--log info]
//! ```

use icfl_server::{IcflServer, ServerConfig};

const USAGE: &str = "usage: icfl-server [--addr HOST:PORT] [--models DIR] \
[--queue-cap N] [--http-workers N] [--retry-after-ms MS] [--log LEVEL]";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::quick("results/models");
    cfg.addr = "127.0.0.1:7171".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--models" => cfg.registry_root = value("--models").into(),
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue-cap must be a positive integer"));
            }
            "--http-workers" => {
                cfg.http_workers = value("--http-workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--http-workers must be a positive integer"));
            }
            "--retry-after-ms" => {
                cfg.retry_after_ms = value("--retry-after-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--retry-after-ms must be an integer"));
            }
            "--log" => {
                let name = value("--log");
                match icfl_obs::Level::parse(&name) {
                    Some(level) => icfl_obs::logger::set_level(level),
                    None => fail(&format!("unknown log level '{name}'")),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if cfg.queue_cap == 0 || cfg.http_workers == 0 {
        fail("--queue-cap and --http-workers must be > 0");
    }

    let handle = match IcflServer::start(cfg.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("icfl-server: {e}");
            std::process::exit(1);
        }
    };
    icfl_obs::info!(
        "icfl-server listening on {} (models: {}, queue cap {}, {} http workers)",
        handle.addr(),
        cfg.registry_root.display(),
        cfg.queue_cap,
        cfg.http_workers
    );
    // Serve until the process is killed; all work happens on the server's
    // own threads.
    loop {
        std::thread::park();
    }
}
