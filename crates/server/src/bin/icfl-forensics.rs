//! Incident forensics renderer: turns an [`EvidenceChain`] (the JSON
//! served by `GET /explain/<tenant>/<incident-id>`) into a human-readable
//! incident timeline, optionally correlated with the recorded trace's
//! ground truth, the tenant's WAL/checkpoint state, and the obs journal.
//!
//! ```text
//! curl -s http://127.0.0.1:7171/explain/pattern1:t1/0 > chain.json
//! icfl-forensics --chain chain.json \
//!                [--trace trace.jsonl]            # ground-truth episode
//!                [--state-dir state --tenant pattern1:t1]  # WAL summary
//!                [--journal metrics.jsonl]        # obs journal excerpt
//!                [--slack-secs 40] [--json]
//! ```
//!
//! With `--json` the assembled timeline is printed as one JSON object
//! instead of text (same facts, machine-readable). `--state-dir` runs the
//! recovery scan read-mostly, but it opens the WAL for append and
//! truncates a torn tail exactly like server boot would — point it at a
//! stopped server's state directory or a copy, never a live one.

use icfl_online::{DetectorEvent, EvidenceChain};
use icfl_scenario::trace::ScrapeTrace;
use icfl_server::wal;
use serde::Serialize;
use std::path::Path;

const USAGE: &str = "usage: icfl-forensics --chain FILE [--trace FILE] \
[--state-dir DIR --tenant NAME] [--journal FILE] [--slack-secs N] [--json] \
[--log LEVEL] [--quiet] [-v]";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

/// One timeline entry, stream-ordered.
#[derive(Debug, Serialize)]
struct TimelineEvent {
    at_secs: f64,
    kind: String,
    detail: String,
}

/// One candidate's verdict row with its score accounting.
#[derive(Debug, Serialize)]
struct VerdictRow {
    target: String,
    replica: bool,
    score: f64,
    /// Sum of the per-metric deltas — equals `score` exactly.
    delta_sum: f64,
    contributions: Vec<String>,
}

/// The ground-truth episode the incident falls into, if a trace is given.
#[derive(Debug, Serialize)]
struct GroundTruth {
    start_secs: f64,
    end_secs: f64,
    services: Vec<String>,
    top1_correct: Option<bool>,
}

/// Durability summary of the tenant's WAL/checkpoint state.
#[derive(Debug, Serialize)]
struct WalSummary {
    tenant: String,
    checkpoint_seq: Option<u64>,
    checkpoint_scrapes: Option<u64>,
    replay_batches: usize,
    replay_scrapes: usize,
    last_seq: u64,
    total_scrapes: u64,
}

/// The full assembled timeline (the `--json` output shape).
#[derive(Debug, Serialize)]
struct Timeline {
    incident: u32,
    model_key: String,
    model_version: u32,
    confirmed_at_secs: f64,
    localized_at_secs: Option<f64>,
    events: Vec<TimelineEvent>,
    candidates: Vec<String>,
    verdict: Vec<VerdictRow>,
    ground_truth: Option<GroundTruth>,
    wal: Option<WalSummary>,
    journal: Vec<String>,
}

fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

fn event_name(e: DetectorEvent) -> &'static str {
    match e {
        DetectorEvent::Suspected => "suspected",
        DetectorEvent::Confirmed => "confirmed",
        DetectorEvent::Dismissed => "dismissed",
        DetectorEvent::Resolved => "resolved",
    }
}

fn assemble(
    chain: &EvidenceChain,
    trace: Option<&ScrapeTrace>,
    wal_summary: Option<WalSummary>,
    journal: Vec<String>,
    slack_nanos: u64,
) -> Timeline {
    // Merge windows, transitions, and incident milestones into one
    // stream-ordered event list. Sort on nanoseconds (exact), with a
    // kind rank so coincident entries order deterministically:
    // windows < transitions < milestones.
    let mut raw: Vec<(u64, u8, String, String)> = Vec::new();
    for w in &chain.windows {
        raw.push((
            w.end_nanos,
            0,
            "window".to_owned(),
            format!("{:?}", w.validity),
        ));
    }
    for t in &chain.transitions {
        let shifted: Vec<String> = t.shifted.iter().map(|(m, s)| format!("{m}→{s}")).collect();
        raw.push((
            t.tick_nanos,
            1,
            format!("detector:{}", event_name(t.event)),
            shifted.join(", "),
        ));
    }
    raw.push((
        chain.confirmed_at_nanos,
        2,
        "incident:confirmed".to_owned(),
        format!("incident {}", chain.incident),
    ));
    if let Some(at) = chain.localized_at_nanos {
        raw.push((
            at,
            2,
            "incident:localized".to_owned(),
            chain.candidates.join(", "),
        ));
    }
    raw.sort_by_key(|e| (e.0, e.1));
    let events = raw
        .into_iter()
        .map(|(nanos, _, kind, detail)| TimelineEvent {
            at_secs: secs(nanos),
            kind,
            detail,
        })
        .collect();

    let verdict: Vec<VerdictRow> = chain
        .breakdowns
        .iter()
        .map(|b| VerdictRow {
            target: b.target.clone(),
            replica: b.replica,
            score: b.score,
            delta_sum: b.contributions.iter().map(|c| c.delta).sum(),
            contributions: b
                .contributions
                .iter()
                .map(|c| {
                    format!(
                        "{} Δ{:.4} matched[{}] |C|={}",
                        c.metric,
                        c.delta,
                        c.matched.join(","),
                        c.causal_set_size
                    )
                })
                .collect(),
        })
        .collect();

    let ground_truth = trace.and_then(|t| {
        t.meta
            .episode_covering(chain.confirmed_at_nanos, slack_nanos)
            .map(|ep| GroundTruth {
                start_secs: secs(ep.start_nanos),
                end_secs: secs(ep.end_nanos),
                services: ep.services.clone(),
                top1_correct: verdict.first().map(|top| ep.services.contains(&top.target)),
            })
    });

    Timeline {
        incident: chain.incident,
        model_key: chain.model.key.clone(),
        model_version: chain.model.version,
        confirmed_at_secs: secs(chain.confirmed_at_nanos),
        localized_at_secs: chain.localized_at_nanos.map(secs),
        events,
        candidates: chain.candidates.clone(),
        verdict,
        ground_truth,
        wal: wal_summary,
        journal,
    }
}

fn render_text(t: &Timeline) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "incident {} (model {} v{})",
        t.incident, t.model_key, t.model_version
    ));
    line(format!(
        "confirmed at {:.1}s, localized {}",
        t.confirmed_at_secs,
        t.localized_at_secs
            .map_or_else(|| "pending".to_owned(), |s| format!("at {s:.1}s")),
    ));
    if let Some(gt) = &t.ground_truth {
        line(format!(
            "ground truth: [{}] faulted {:.1}s..{:.1}s → top-1 {}",
            gt.services.join(", "),
            gt.start_secs,
            gt.end_secs,
            match gt.top1_correct {
                Some(true) => "CORRECT",
                Some(false) => "WRONG",
                None => "n/a",
            }
        ));
    }
    line(String::new());
    line("timeline:".to_owned());
    for e in &t.events {
        line(format!(
            "  {:>9.1}s  {:<20} {}",
            e.at_secs, e.kind, e.detail
        ));
    }
    line(String::new());
    line(format!("candidates: [{}]", t.candidates.join(", ")));
    for v in &t.verdict {
        line(format!(
            "  {}{}  score {:.4} (Σδ {:.4})",
            v.target,
            if v.replica { " [replica]" } else { "" },
            v.score,
            v.delta_sum
        ));
        for c in &v.contributions {
            line(format!("    {c}"));
        }
    }
    if let Some(w) = &t.wal {
        line(String::new());
        line(format!(
            "wal: tenant {} last_seq {} scrapes {} (checkpoint: {}, replay tail: {} batches / {} scrapes)",
            w.tenant,
            w.last_seq,
            w.total_scrapes,
            w.checkpoint_seq
                .map_or_else(|| "none".to_owned(), |s| format!("seq {s}")),
            w.replay_batches,
            w.replay_scrapes
        ));
    }
    if !t.journal.is_empty() {
        line(String::new());
        line("journal:".to_owned());
        for j in &t.journal {
            line(format!("  {j}"));
        }
    }
    out
}

/// Journal metric names worth echoing in a forensics report.
fn journal_relevant(line: &str) -> bool {
    [
        "icfl_detector_events_total",
        "icfl_forensics",
        "icfl_server_explain",
        "icfl_server_ingest_to_verdict",
    ]
    .iter()
    .any(|n| line.contains(n))
}

fn main() {
    let mut chain_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut tenant: Option<String> = None;
    let mut slack_secs: u64 = 40;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--chain" => chain_path = Some(value("--chain")),
            "--trace" => trace_path = Some(value("--trace")),
            "--journal" => journal_path = Some(value("--journal")),
            "--state-dir" => state_dir = Some(value("--state-dir")),
            "--tenant" => tenant = Some(value("--tenant")),
            "--slack-secs" => {
                slack_secs = value("--slack-secs")
                    .parse()
                    .unwrap_or_else(|_| fail("--slack-secs must be an integer"));
            }
            "--json" => json = true,
            "--log" => {
                let name = value("--log");
                match icfl_obs::Level::parse(&name) {
                    Some(level) => icfl_obs::logger::set_level(level),
                    None => fail(&format!("unknown log level '{name}'")),
                }
            }
            "--quiet" | "-q" => icfl_obs::logger::set_level(icfl_obs::Level::Error),
            "-v" => icfl_obs::logger::set_level(icfl_obs::Level::Debug),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    let Some(chain_path) = chain_path else {
        fail("--chain is required");
    };
    if state_dir.is_some() != tenant.is_some() {
        fail("--state-dir and --tenant go together");
    }

    let chain: EvidenceChain = match std::fs::read_to_string(&chain_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
    {
        Ok(chain) => chain,
        Err(e) => {
            icfl_obs::error!("icfl-forensics: read chain {chain_path}: {e}");
            std::process::exit(1);
        }
    };

    let trace = trace_path.map(|p| match ScrapeTrace::load(Path::new(&p)) {
        Ok(t) => t,
        Err(e) => {
            icfl_obs::error!("icfl-forensics: load trace {p}: {e}");
            std::process::exit(1);
        }
    });

    let wal_summary =
        state_dir.zip(tenant).map(
            |(dir, tenant)| match wal::recover(Path::new(&dir), &tenant) {
                Ok(rec) => WalSummary {
                    tenant,
                    checkpoint_seq: rec.checkpoint.as_ref().map(|c| c.wal_seq),
                    checkpoint_scrapes: rec.checkpoint.as_ref().map(|c| c.scrapes),
                    replay_batches: rec.replay.len(),
                    replay_scrapes: rec.replay.iter().map(|(_, b)| b.len()).sum(),
                    last_seq: rec.last_seq,
                    total_scrapes: rec.total_scrapes,
                },
                Err(e) => {
                    icfl_obs::error!("icfl-forensics: recover {tenant}: {e}");
                    std::process::exit(1);
                }
            },
        );

    let journal = journal_path
        .map(|p| match std::fs::read_to_string(&p) {
            Ok(text) => text
                .lines()
                .filter(|l| journal_relevant(l))
                .map(str::to_owned)
                .collect(),
            Err(e) => {
                icfl_obs::error!("icfl-forensics: read journal {p}: {e}");
                std::process::exit(1);
            }
        })
        .unwrap_or_default();

    let timeline = assemble(
        &chain,
        trace.as_ref(),
        wal_summary,
        journal,
        slack_secs.saturating_mul(1_000_000_000),
    );
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timeline).expect("timeline serializes")
        );
    } else {
        print!("{}", render_text(&timeline));
    }
}
