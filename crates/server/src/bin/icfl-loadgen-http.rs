//! The HTTP load generator binary: replay recorded scrape traces against
//! a running `icfl-server`, then print the one-line campaign summary.
//!
//! ```text
//! icfl-loadgen-http --addr 127.0.0.1:7171 --trace results/traces/fig2.jsonl \
//!                   --total 20000 --concurrency 4 --bulk-size 64 \
//!                   --mode bulk [--rate 0] [--seed 42] [--tenant-prefix run1-]
//! ```
//!
//! `--trace` repeats; worker `w` replays trace `w % traces`. Exit code 1
//! if any expected incident went undetected.

use icfl_scenario::ScrapeTrace;
use icfl_server::chaos::{ChaosConfig, ChaosProxy};
use icfl_server::loadgen::{run, LoadMode, LoadgenConfig};

const USAGE: &str = "usage: icfl-loadgen-http --addr HOST:PORT --trace FILE [--trace FILE ...] \
[--total N] [--concurrency N] [--bulk-size N] [--mode single|bulk|random] \
[--rate PER_SEC] [--seed N] [--tenant-prefix S] [--log LEVEL] [--quiet] [-v] [-vv] \
[--transport-retries N] [--reject-retries N] \
[--chaos] [--chaos-delay-prob P] [--chaos-delay-ms MS] [--chaos-corrupt-prob P] \
[--chaos-sever-prob P]";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut cfg = LoadgenConfig {
        addr: String::new(),
        traces: Vec::new(),
        total: 10_000,
        concurrency: 4,
        bulk_size: 64,
        mode: LoadMode::Bulk,
        rate: 0.0,
        seed: 42,
        tenant_prefix: String::new(),
        max_transport_retries: 0,
        max_reject_retries: 0,
    };
    let mut trace_paths = Vec::new();
    let mut chaos_on = false;
    let mut delay_prob = None;
    let mut delay_ms = None;
    let mut corrupt_prob = None;
    let mut sever_prob = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--trace" => trace_paths.push(value("--trace")),
            "--total" => {
                cfg.total = value("--total")
                    .parse()
                    .unwrap_or_else(|_| fail("--total must be a positive integer"));
            }
            "--concurrency" => {
                cfg.concurrency = value("--concurrency")
                    .parse()
                    .unwrap_or_else(|_| fail("--concurrency must be a positive integer"));
            }
            "--bulk-size" => {
                cfg.bulk_size = value("--bulk-size")
                    .parse()
                    .unwrap_or_else(|_| fail("--bulk-size must be a positive integer"));
            }
            "--mode" => {
                cfg.mode = value("--mode").parse().unwrap_or_else(|e: String| fail(&e));
            }
            "--rate" => {
                cfg.rate = value("--rate")
                    .parse()
                    .unwrap_or_else(|_| fail("--rate must be a number"));
            }
            "--seed" => {
                cfg.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed must be an integer"));
            }
            "--tenant-prefix" => cfg.tenant_prefix = value("--tenant-prefix"),
            "--transport-retries" => {
                cfg.max_transport_retries = value("--transport-retries")
                    .parse()
                    .unwrap_or_else(|_| fail("--transport-retries must be an integer"));
            }
            "--reject-retries" => {
                cfg.max_reject_retries = value("--reject-retries")
                    .parse()
                    .unwrap_or_else(|_| fail("--reject-retries must be an integer"));
            }
            "--chaos" => chaos_on = true,
            "--chaos-delay-prob" => {
                chaos_on = true;
                delay_prob = Some(
                    value("--chaos-delay-prob")
                        .parse()
                        .unwrap_or_else(|_| fail("--chaos-delay-prob must be a number")),
                );
            }
            "--chaos-delay-ms" => {
                chaos_on = true;
                delay_ms = Some(
                    value("--chaos-delay-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--chaos-delay-ms must be an integer")),
                );
            }
            "--chaos-corrupt-prob" => {
                chaos_on = true;
                corrupt_prob = Some(
                    value("--chaos-corrupt-prob")
                        .parse()
                        .unwrap_or_else(|_| fail("--chaos-corrupt-prob must be a number")),
                );
            }
            "--chaos-sever-prob" => {
                chaos_on = true;
                sever_prob = Some(
                    value("--chaos-sever-prob")
                        .parse()
                        .unwrap_or_else(|_| fail("--chaos-sever-prob must be a number")),
                );
            }
            "--log" => {
                let name = value("--log");
                match icfl_obs::Level::parse(&name) {
                    Some(level) => icfl_obs::logger::set_level(level),
                    None => fail(&format!("unknown log level '{name}'")),
                }
            }
            "--quiet" | "-q" => icfl_obs::logger::set_level(icfl_obs::Level::Error),
            "-v" => icfl_obs::logger::set_level(icfl_obs::Level::Debug),
            "-vv" => icfl_obs::logger::set_level(icfl_obs::Level::Trace),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if cfg.addr.is_empty() {
        fail("--addr is required");
    }
    if trace_paths.is_empty() {
        fail("at least one --trace is required");
    }
    for path in &trace_paths {
        match ScrapeTrace::load(std::path::Path::new(path)) {
            Ok(trace) => cfg.traces.push(trace),
            Err(e) => {
                icfl_obs::error!("icfl-loadgen-http: load {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // With chaos enabled, interpose the seeded fault-injecting proxy
    // between the workers and the real server, and give the workers
    // enough retry budget to survive the faults they'll draw.
    let _proxy = if chaos_on {
        let mut chaos_cfg = ChaosConfig::mild(cfg.seed);
        if let Some(p) = delay_prob {
            chaos_cfg.delay_prob = p;
        }
        if let Some(ms) = delay_ms {
            chaos_cfg.delay_ms = ms;
        }
        if let Some(p) = corrupt_prob {
            chaos_cfg.corrupt_prob = p;
        }
        if let Some(p) = sever_prob {
            chaos_cfg.sever_prob = p;
        }
        let proxy = match ChaosProxy::start(cfg.addr.clone(), chaos_cfg) {
            Ok(proxy) => proxy,
            Err(e) => {
                icfl_obs::error!("icfl-loadgen-http: chaos proxy: {e}");
                std::process::exit(1);
            }
        };
        cfg.addr = proxy.addr().to_string();
        if cfg.max_transport_retries == 0 {
            cfg.max_transport_retries = 16;
        }
        if cfg.max_reject_retries == 0 {
            cfg.max_reject_retries = 16;
        }
        Some(proxy)
    } else {
        None
    };

    match run(&cfg) {
        Ok(summary) => {
            println!("{}", summary.one_line());
            if summary.incidents_detected() < summary.incidents_expected() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            icfl_obs::error!("icfl-loadgen-http: {e}");
            std::process::exit(1);
        }
    }
}
