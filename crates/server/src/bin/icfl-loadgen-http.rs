//! The HTTP load generator binary: replay recorded scrape traces against
//! a running `icfl-server`, then print the one-line campaign summary.
//!
//! ```text
//! icfl-loadgen-http --addr 127.0.0.1:7171 --trace results/traces/fig2.jsonl \
//!                   --total 20000 --concurrency 4 --bulk-size 64 \
//!                   --mode bulk [--rate 0] [--seed 42] [--tenant-prefix run1-]
//! ```
//!
//! `--trace` repeats; worker `w` replays trace `w % traces`. Exit code 1
//! if any expected incident went undetected.

use icfl_scenario::ScrapeTrace;
use icfl_server::loadgen::{run, LoadMode, LoadgenConfig};

const USAGE: &str = "usage: icfl-loadgen-http --addr HOST:PORT --trace FILE [--trace FILE ...] \
[--total N] [--concurrency N] [--bulk-size N] [--mode single|bulk|random] \
[--rate PER_SEC] [--seed N] [--tenant-prefix S] [--log LEVEL]";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut cfg = LoadgenConfig {
        addr: String::new(),
        traces: Vec::new(),
        total: 10_000,
        concurrency: 4,
        bulk_size: 64,
        mode: LoadMode::Bulk,
        rate: 0.0,
        seed: 42,
        tenant_prefix: String::new(),
    };
    let mut trace_paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--trace" => trace_paths.push(value("--trace")),
            "--total" => {
                cfg.total = value("--total")
                    .parse()
                    .unwrap_or_else(|_| fail("--total must be a positive integer"));
            }
            "--concurrency" => {
                cfg.concurrency = value("--concurrency")
                    .parse()
                    .unwrap_or_else(|_| fail("--concurrency must be a positive integer"));
            }
            "--bulk-size" => {
                cfg.bulk_size = value("--bulk-size")
                    .parse()
                    .unwrap_or_else(|_| fail("--bulk-size must be a positive integer"));
            }
            "--mode" => {
                cfg.mode = value("--mode").parse().unwrap_or_else(|e: String| fail(&e));
            }
            "--rate" => {
                cfg.rate = value("--rate")
                    .parse()
                    .unwrap_or_else(|_| fail("--rate must be a number"));
            }
            "--seed" => {
                cfg.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed must be an integer"));
            }
            "--tenant-prefix" => cfg.tenant_prefix = value("--tenant-prefix"),
            "--log" => {
                let name = value("--log");
                match icfl_obs::Level::parse(&name) {
                    Some(level) => icfl_obs::logger::set_level(level),
                    None => fail(&format!("unknown log level '{name}'")),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if cfg.addr.is_empty() {
        fail("--addr is required");
    }
    if trace_paths.is_empty() {
        fail("at least one --trace is required");
    }
    for path in &trace_paths {
        match ScrapeTrace::load(std::path::Path::new(path)) {
            Ok(trace) => cfg.traces.push(trace),
            Err(e) => {
                eprintln!("icfl-loadgen-http: load {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    match run(&cfg) {
        Ok(summary) => {
            println!("{}", summary.one_line());
            if summary.incidents_detected() < summary.incidents_expected() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("icfl-loadgen-http: {e}");
            std::process::exit(1);
        }
    }
}
