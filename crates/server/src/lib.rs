//! `icfl-server` — the networked face of online fault localization: a TCP
//! ingest server that runs one [`FeedSession`](icfl_online::FeedSession)
//! per tenant over newline-delimited scrape batches, and the HTTP load
//! generator that pressure-tests it with recorded scenario traces.
//!
//! # Architecture
//!
//! ```text
//!  icfl-loadgen-http                      icfl-server
//!  ┌──────────────┐   POST /ingest/<t>   ┌────────────────────────────┐
//!  │ worker 0 ────┼──────────────────────┼→ accept → http workers     │
//!  │ worker 1 ────┼───  429 + retry  ←───┼   │ parse + validate       │
//!  │   ...        │                      │   ▼                        │
//!  │ (loops a     │                      │ bounded tenant queue ──────┼─ full → 429
//!  │  recorded    │   GET /incidents     │   ▼                        │
//!  │  trace)      │ ←────────────────────┼ FeedSession worker         │
//!  └──────────────┘      verdicts        │  (windows → detect →       │
//!                                        │   localize, deterministic) │
//!                                        └────────────────────────────┘
//! ```
//!
//! Everything is `std::net` + blocking threads — no async runtime. The
//! accept loop hands sockets to a bounded worker pool (saturation answers
//! 503 inline); each tenant owns a bounded batch queue drained by a
//! dedicated worker thread, so backpressure is per-tenant and explicit:
//! a full queue rejects the batch with 429 and a client-visible retry
//! hint, never a silent drop.
//!
//! Because [`FeedSession`](icfl_online::FeedSession) shares its decision
//! core with the in-process [`OnlineSession`](icfl_online::OnlineSession),
//! verdicts served over the wire are byte-identical to an in-process
//! replay of the same trace — the loopback test pins exactly that.
//!
//! # Crash safety
//!
//! With a `--state-dir`, every accepted batch is appended to a per-tenant
//! write-ahead log before it is acknowledged, and the decision state is
//! checkpointed every few ticks. A killed server restarted on the same
//! state dir recovers every tenant from checkpoint + WAL replay and
//! serves `/incidents` output byte-equal to an uninterrupted run; re-sent
//! batches are detected by sequence fingerprint and acknowledged
//! idempotently. See [`wal`] for the on-disk format and [`tenant`] for
//! the supervised worker restart policy.
//!
//! | Module | What lives there |
//! |---|---|
//! | [`http`] | Minimal blocking HTTP/1.1 codec (requests, responses, keep-alive, deadlines). |
//! | [`tenant`] | Per-tenant pipeline: bounded queue, supervised worker, dedupe, reject taxonomy. |
//! | [`wal`] | Per-tenant write-ahead log + checkpoint store, recovery scan. |
//! | [`server`] | Listener, worker pool, route table, recovery at boot, [`ServerConfig`]. |
//! | [`client`] | Blocking keep-alive [`HttpClient`]. |
//! | [`loadgen`] | Campaign runner: trace-replaying workers, 429 honoring, chaos retries, latency scoring. |
//! | [`chaos`] | Deterministic seeded chaos proxy (delay / corrupt / sever). |

pub mod chaos;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod tenant;
pub mod wal;

pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::HttpClient;
pub use loadgen::{LoadMode, LoadgenConfig, LoadgenError, LoadgenSummary, TenantOutcome};
pub use server::{IcflServer, IncidentsReport, ServerConfig, ServerHandle};
pub use tenant::{Accepted, Batch, PipelineOptions, Reject, TenantPipeline};
pub use wal::{StoreConfig, StoredCheckpoint, StoredMeta, TenantStore};
