//! Per-tenant ingest pipelines: a bounded batch queue in front of one
//! [`FeedSession`] worker.
//!
//! Every tenant (one registered stream of one application's telemetry)
//! owns a queue of scrape batches bounded at `queue_cap`. Submission is
//! synchronous and *never silent*: a batch is either accepted (enqueued,
//! acked, eventually processed in order) or rejected with a typed reason
//! — queue full (the client sees 429 + retry-after), out-of-order, or
//! malformed — and a journal counter records every outcome. The worker
//! thread drains the queue into the tenant's [`FeedSession`] and
//! timestamps ingest-to-verdict latency into the wall-clock histogram
//! whenever a push confirms or localizes an incident.

use icfl_micro::Counters;
use icfl_online::{FeedProgress, FeedSession};
use icfl_sim::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One scrape batch as accepted from the wire: `(time_nanos, row)` pairs,
/// strictly increasing in time.
pub type Batch = Vec<(u64, Vec<Counters>)>;

/// Why a batch was rejected. Every rejection is visible to the client
/// (it maps to an HTTP status) and to the journal — never a silent drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The tenant queue is at capacity; retry after the hinted delay.
    QueueFull {
        /// Client-visible retry hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// A scrape does not strictly follow the newest accepted scrape.
    OutOfOrder(String),
    /// A row's width disagrees with the tenant's service count, or the
    /// batch is empty.
    Malformed(String),
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { retry_after_ms } => {
                write!(f, "queue full, retry after {retry_after_ms}ms")
            }
            Reject::OutOfOrder(e) | Reject::Malformed(e) => f.write_str(e),
        }
    }
}

impl Reject {
    /// The journal label for this rejection.
    pub fn reason(&self) -> &'static str {
        match self {
            Reject::QueueFull { .. } => "queue_full",
            Reject::OutOfOrder(_) => "out_of_order",
            Reject::Malformed(_) => "malformed",
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<(Instant, Batch)>>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Batches accepted (enqueued) since open.
    accepted: AtomicU64,
    /// Batches fully pushed through the session.
    processed: AtomicU64,
    /// Scrapes accepted since open.
    scrapes: AtomicU64,
    /// Peak queue depth, for the proptest's never-exceeds-bound check
    /// (the journal gauge mirrors it, but global state races across
    /// concurrently running tests).
    high_water: AtomicUsize,
    /// Newest scrape time accepted into the queue (nanos); the submit
    /// path checks ordering here so clients learn synchronously.
    frontier: Mutex<Option<u64>>,
    /// First session-level error the worker hit, if any (poisoned state;
    /// subsequent submits are rejected as malformed).
    worker_error: Mutex<Option<String>>,
    session: Mutex<FeedSession>,
}

/// A bounded ingest pipeline in front of one tenant's [`FeedSession`].
pub struct TenantPipeline {
    tenant: String,
    cap: usize,
    retry_after_ms: u64,
    /// Row width (service count), cached so submission never contends on
    /// the session lock the worker holds while pushing.
    width: usize,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TenantPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantPipeline")
            .field("tenant", &self.tenant)
            .field("cap", &self.cap)
            .field("accepted", &self.accepted())
            .field("processed", &self.processed())
            .finish()
    }
}

impl TenantPipeline {
    /// Opens a pipeline for `tenant`: a queue bounded at `queue_cap`
    /// batches and a worker thread draining it into `session`.
    pub fn open(
        tenant: &str,
        session: FeedSession,
        queue_cap: usize,
        retry_after_ms: u64,
    ) -> TenantPipeline {
        assert!(queue_cap > 0, "queue capacity must be positive");
        let width = session.service_names().len();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
            high_water: AtomicUsize::new(0),
            frontier: Mutex::new(None),
            worker_error: Mutex::new(None),
            session: Mutex::new(session),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let tenant = tenant.to_owned();
            std::thread::Builder::new()
                .name(format!("icfl-tenant-{tenant}"))
                .spawn(move || worker_loop(&tenant, &shared))
                .expect("spawn tenant worker")
        };
        TenantPipeline {
            tenant: tenant.to_owned(),
            cap: queue_cap,
            retry_after_ms,
            width,
            shared,
            worker: Some(worker),
        }
    }

    /// Offers one batch. On `Ok` the batch is queued and will be pushed
    /// in order; on `Err` nothing was taken and the journal recorded the
    /// rejection.
    pub fn submit(&self, batch: Batch) -> Result<(), Reject> {
        let outcome = self.try_submit(batch);
        match &outcome {
            Ok(scrapes) => {
                icfl_obs::counter_add(
                    "icfl_server_batches_accepted_total",
                    &[("tenant", &self.tenant)],
                    1,
                );
                icfl_obs::counter_add(
                    "icfl_server_scrapes_ingested_total",
                    &[("tenant", &self.tenant)],
                    *scrapes,
                );
            }
            Err(reject) => icfl_obs::counter_add(
                "icfl_server_batches_rejected_total",
                &[("tenant", &self.tenant), ("reason", reject.reason())],
                1,
            ),
        }
        outcome.map(|_| ())
    }

    fn try_submit(&self, batch: Batch) -> Result<u64, Reject> {
        if batch.is_empty() {
            return Err(Reject::Malformed("empty batch".to_owned()));
        }
        let width = self.width;
        let mut prev: Option<u64> = None;
        for (at, row) in &batch {
            if row.len() != width {
                return Err(Reject::Malformed(format!(
                    "{} services in row at {at}, tenant has {width}",
                    row.len()
                )));
            }
            if prev.is_some_and(|p| *at <= p) {
                return Err(Reject::OutOfOrder(format!(
                    "scrape at {at}ns does not follow {}ns within the batch",
                    prev.expect("checked")
                )));
            }
            prev = Some(*at);
        }
        if let Some(err) = self
            .shared
            .worker_error
            .lock()
            .expect("tenant error lock")
            .clone()
        {
            return Err(Reject::Malformed(format!("session failed: {err}")));
        }
        let first = batch[0].0;
        let scrapes = batch.len() as u64;
        // Frontier and queue are checked under one queue lock so two
        // racing submits cannot both pass the ordering check or both
        // squeeze into the last queue slot.
        let mut queue = self.shared.queue.lock().expect("tenant queue lock");
        let mut frontier = self.shared.frontier.lock().expect("tenant frontier lock");
        if frontier.is_some_and(|f| first <= f) {
            return Err(Reject::OutOfOrder(format!(
                "batch starts at {first}ns, stream frontier is {}ns",
                frontier.expect("checked")
            )));
        }
        if queue.len() >= self.cap {
            return Err(Reject::QueueFull {
                retry_after_ms: self.retry_after_ms,
            });
        }
        *frontier = Some(batch[batch.len() - 1].0);
        queue.push_back((Instant::now(), batch));
        let depth = queue.len();
        drop(frontier);
        drop(queue);
        let peak = self
            .shared
            .high_water
            .fetch_max(depth, Ordering::Relaxed)
            .max(depth);
        icfl_obs::gauge_max(
            "icfl_server_queue_depth_high_water",
            &[("tenant", &self.tenant)],
            peak as u64,
        );
        self.shared.accepted.fetch_add(1, Ordering::SeqCst);
        self.shared.scrapes.fetch_add(scrapes, Ordering::Relaxed);
        self.shared.wake.notify_one();
        Ok(scrapes)
    }

    /// Batches accepted since open.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::SeqCst)
    }

    /// Batches fully pushed through the session.
    pub fn processed(&self) -> u64 {
        self.shared.processed.load(Ordering::SeqCst)
    }

    /// Scrapes accepted since open.
    pub fn scrapes_accepted(&self) -> u64 {
        self.shared.scrapes.load(Ordering::Relaxed)
    }

    /// Peak queue depth observed.
    pub fn queue_high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }

    /// Whether every accepted batch has been processed.
    pub fn drained(&self) -> bool {
        self.processed() == self.accepted()
    }

    /// The first session-level error the worker hit, if any.
    pub fn worker_error(&self) -> Option<String> {
        self.shared
            .worker_error
            .lock()
            .expect("tenant error lock")
            .clone()
    }

    /// Runs `f` against the tenant's session (e.g. to collect verdicts).
    /// Prefer calling this only when [`TenantPipeline::drained`] — the
    /// worker contends on the same lock.
    pub fn with_session<T>(&self, f: impl FnOnce(&FeedSession) -> T) -> T {
        f(&self.shared.session.lock().expect("tenant session lock"))
    }
}

impl Drop for TenantPipeline {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(tenant: &str, shared: &Shared) {
    loop {
        let next = {
            let mut queue = shared.queue.lock().expect("tenant queue lock");
            loop {
                if let Some(entry) = queue.pop_front() {
                    break Some(entry);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.wake.wait(queue).expect("tenant queue lock poisoned");
            }
        };
        let Some((enqueued_at, batch)) = next else {
            return;
        };
        let mut session = shared.session.lock().expect("tenant session lock");
        let mut failed = false;
        for (at, row) in batch {
            match session.push(SimTime::from_nanos(at), row) {
                Ok(progress) => observe_latency(tenant, enqueued_at, progress),
                Err(e) => {
                    // Submission validates ordering and width, so this is
                    // a statistical/internal failure: poison the tenant
                    // (subsequent submits are rejected, the error is
                    // visible on /incidents) rather than dropping quietly.
                    *shared.worker_error.lock().expect("tenant error lock") = Some(e.to_string());
                    icfl_obs::counter_add(
                        "icfl_server_worker_errors_total",
                        &[("tenant", tenant)],
                        1,
                    );
                    failed = true;
                    break;
                }
            }
        }
        drop(session);
        icfl_obs::histogram_observe(
            "icfl_server_batch_process_latency",
            &[("tenant", tenant)],
            enqueued_at.elapsed(),
        );
        shared.processed.fetch_add(1, Ordering::SeqCst);
        if failed {
            // Drain and count everything queued behind the failure.
            let mut queue = shared.queue.lock().expect("tenant queue lock");
            while queue.pop_front().is_some() {
                shared.processed.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Observes ingest-to-verdict latency for every incident milestone the
/// push produced, measured from the batch's enqueue instant — the
/// client-visible "how stale was the verdict" number.
fn observe_latency(tenant: &str, enqueued_at: Instant, progress: FeedProgress) {
    let elapsed = enqueued_at.elapsed();
    for _ in 0..progress.confirmed {
        icfl_obs::histogram_observe(
            "icfl_server_ingest_to_verdict_latency",
            &[("tenant", tenant), ("milestone", "confirmed")],
            elapsed,
        );
    }
    for _ in 0..progress.localized {
        icfl_obs::histogram_observe(
            "icfl_server_ingest_to_verdict_latency",
            &[("tenant", tenant), ("milestone", "localized")],
            elapsed,
        );
    }
}
