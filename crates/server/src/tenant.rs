//! Per-tenant ingest pipelines: a bounded batch queue in front of one
//! supervised [`FeedSession`] worker, with optional write-ahead logging
//! and checkpoint/restart recovery.
//!
//! Every tenant (one registered stream of one application's telemetry)
//! owns a queue of scrape batches bounded at `queue_cap`. Submission is
//! synchronous and *never silent*: a batch is either accepted (sequence-
//! stamped, WAL-appended when a store is attached, enqueued, acked,
//! eventually processed in order), acknowledged as an exact duplicate of
//! an already-accepted batch (idempotent re-sends after a client retry or
//! a server restart), or rejected with a typed reason — queue full (429 +
//! retry-after), out-of-order, malformed, draining, or an internal
//! durability fault — and a journal counter records every outcome.
//!
//! The worker thread drains the queue into the tenant's [`FeedSession`]
//! under a panic supervisor: a panicking push is caught with
//! [`std::panic::catch_unwind`], the session is restored from the newest
//! in-memory checkpoint, the accepted-but-uncheckpointed tail is
//! replayed, and the worker resumes — bounded by
//! [`PipelineOptions::max_worker_restarts`], after which the tenant is
//! poisoned (visible on `/incidents`) instead of flapping. Checkpoints
//! are taken every [`PipelineOptions::checkpoint_every_ticks`] decision
//! ticks (and whenever the replay tail grows past a hard bound) and, when
//! a [`TenantStore`] is attached, persisted with an atomic rename so a
//! `kill -9` recovers byte-identically.

use crate::wal::{BatchFingerprint, StoredCheckpoint, TenantStore};
use icfl_micro::Counters;
use icfl_online::{FeedCheckpoint, FeedProgress, FeedSession};
use icfl_sim::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One scrape batch as accepted from the wire: `(time_nanos, row)` pairs,
/// strictly increasing in time.
pub type Batch = Vec<(u64, Vec<Counters>)>;

/// Hard bound on accepted-but-uncheckpointed batches held for in-memory
/// restart replay; crossing it forces a checkpoint regardless of tick
/// cadence, so restart cost and tail memory stay bounded.
const MAX_TAIL_BATCHES: usize = 256;

/// Newest batch fingerprints kept for duplicate detection. Re-sends older
/// than this window fall back to the out-of-order reject — a client would
/// have to lag 65k accepted batches for that to matter.
const MAX_FINGERPRINTS: usize = 65_536;

/// Tuning of one [`TenantPipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Queue bound, in batches.
    pub queue_cap: usize,
    /// Client-visible retry hint on queue-full, in milliseconds.
    pub retry_after_ms: u64,
    /// Decision ticks between session checkpoints.
    pub checkpoint_every_ticks: u32,
    /// Panic restarts tolerated before the tenant is poisoned.
    pub max_worker_restarts: u32,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            queue_cap: 64,
            retry_after_ms: 25,
            checkpoint_every_ticks: 8,
            max_worker_restarts: 3,
        }
    }
}

/// Why a batch was rejected. Every rejection is visible to the client
/// (it maps to an HTTP status) and to the journal — never a silent drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The tenant queue is at capacity; retry after the hinted delay.
    QueueFull {
        /// Client-visible retry hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// A scrape does not strictly follow the newest accepted scrape.
    OutOfOrder(String),
    /// A row's width disagrees with the tenant's service count, or the
    /// batch is empty.
    Malformed(String),
    /// The tenant is draining: a client raced `/drain` and must not
    /// extend the stream.
    Draining,
    /// A server-side durability fault (WAL append failed) or a crashed
    /// pipeline; the batch was not accepted.
    Internal(String),
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { retry_after_ms } => {
                write!(f, "queue full, retry after {retry_after_ms}ms")
            }
            Reject::OutOfOrder(e) | Reject::Malformed(e) => f.write_str(e),
            Reject::Draining => f.write_str("tenant is draining"),
            Reject::Internal(e) => write!(f, "internal: {e}"),
        }
    }
}

impl Reject {
    /// The journal label for this rejection.
    pub fn reason(&self) -> &'static str {
        match self {
            Reject::QueueFull { .. } => "queue_full",
            Reject::OutOfOrder(_) => "out_of_order",
            Reject::Malformed(_) => "malformed",
            Reject::Draining => "draining",
            Reject::Internal(_) => "internal",
        }
    }
}

/// How a batch was accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accepted {
    /// A new batch: sequence-stamped, logged, and queued for the worker.
    Fresh {
        /// Scrapes in the batch.
        scrapes: u64,
    },
    /// An exact re-send of an already-accepted batch (same first/last
    /// timestamps and scrape count): acknowledged idempotently, nothing
    /// re-applied.
    Duplicate {
        /// Scrapes in the (already-applied) batch.
        scrapes: u64,
    },
}

impl Accepted {
    /// Scrapes covered by the acknowledgement.
    pub fn scrapes(&self) -> u64 {
        match self {
            Accepted::Fresh { scrapes } | Accepted::Duplicate { scrapes } => *scrapes,
        }
    }

    /// Whether this acknowledged a re-send without applying it.
    pub fn is_duplicate(&self) -> bool {
        matches!(self, Accepted::Duplicate { .. })
    }
}

/// The identity of one accepted batch, for duplicate detection. Keyed by
/// the batch's first scrape timestamp in [`Inner::fingerprints`].
#[derive(Debug, Clone, Copy)]
struct Fp {
    last: u64,
    n: u32,
}

/// The newest checkpoint, kept in memory even without a store so a panic
/// restart never needs the disk.
struct CkptState {
    seq: u64,
    scrapes: u64,
    feed: FeedCheckpoint,
}

/// Everything the submit path and the worker mutate together, under one
/// lock so ordering, capacity, duplicate, and WAL decisions are atomic
/// with respect to racing submitters.
struct Inner {
    queue: VecDeque<(Instant, u64, Arc<Batch>)>,
    /// Newest scrape time accepted (nanos); the submit path checks
    /// ordering here so clients learn synchronously.
    frontier: Option<u64>,
    /// Sequence for the next accepted batch (first batch is seq 1).
    next_seq: u64,
    /// first-timestamp → (last, n) of accepted batches, for idempotent
    /// re-send detection; trimmed to [`MAX_FINGERPRINTS`].
    fingerprints: BTreeMap<u64, Fp>,
    /// Accepted batches newer than the last checkpoint, for in-memory
    /// restart replay. Trimmed at every checkpoint.
    tail: Vec<(u64, Arc<Batch>)>,
    /// The durable store, when the server runs with `--state-dir`.
    store: Option<TenantStore>,
    last_ckpt: CkptState,
    draining: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Simulated `kill -9`: the worker exits immediately, mid-queue,
    /// without checkpointing. Only recovery from the store may follow.
    crashed: AtomicBool,
    /// Chaos hook: the worker panics before processing its next batch.
    panic_next: AtomicBool,
    /// Batches accepted (enqueued) since open (recovery primes this).
    accepted: AtomicU64,
    /// Batches fully pushed through the session.
    processed: AtomicU64,
    /// Scrapes accepted since open.
    scrapes: AtomicU64,
    /// Scrapes fully pushed through the session (checkpoint accounting).
    processed_scrapes: AtomicU64,
    /// Worker panic restarts so far.
    restarts: AtomicU32,
    /// Peak queue depth, for the proptest's never-exceeds-bound check
    /// (the journal gauge mirrors it, but global state races across
    /// concurrently running tests).
    high_water: AtomicUsize,
    /// First session-level error the worker hit, if any (poisoned state;
    /// subsequent submits are rejected as malformed).
    worker_error: Mutex<Option<String>>,
    session: Mutex<FeedSession>,
}

/// A bounded, supervised ingest pipeline in front of one tenant's
/// [`FeedSession`].
pub struct TenantPipeline {
    tenant: String,
    cap: usize,
    retry_after_ms: u64,
    /// Row width (service count), cached so submission never contends on
    /// the session lock the worker holds while pushing.
    width: usize,
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for TenantPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantPipeline")
            .field("tenant", &self.tenant)
            .field("cap", &self.cap)
            .field("accepted", &self.accepted())
            .field("processed", &self.processed())
            .finish()
    }
}

/// Counters and stream position to prime a recovered pipeline with, so
/// `/incidents` accounting continues exactly where the crashed process
/// left off.
pub struct RecoveredCounters {
    /// Newest WAL sequence (accepted == processed after replay).
    pub last_seq: u64,
    /// Scrapes across the whole WAL.
    pub total_scrapes: u64,
    /// Fingerprints of every recorded batch, oldest first.
    pub fingerprints: Vec<BatchFingerprint>,
}

impl TenantPipeline {
    /// Opens a pipeline for `tenant`: a queue bounded at `queue_cap`
    /// batches and a supervised worker thread draining it into `session`.
    /// No durable store — state lives (and dies) with the process, but
    /// panic restarts still recover from the in-memory checkpoint.
    pub fn open(
        tenant: &str,
        session: FeedSession,
        queue_cap: usize,
        retry_after_ms: u64,
    ) -> TenantPipeline {
        TenantPipeline::open_with(
            tenant,
            session,
            PipelineOptions {
                queue_cap,
                retry_after_ms,
                ..PipelineOptions::default()
            },
            None,
        )
    }

    /// Opens a pipeline with full tuning and an optional durable store
    /// (WAL + checkpoints under the server's `--state-dir`).
    pub fn open_with(
        tenant: &str,
        session: FeedSession,
        opts: PipelineOptions,
        store: Option<TenantStore>,
    ) -> TenantPipeline {
        TenantPipeline::build(tenant, session, opts, store, None)
    }

    /// Opens a pipeline over a session that has already been restored
    /// from a checkpoint and WAL replay, priming counters, the ordering
    /// frontier, and the duplicate-detection index so the stream
    /// continues exactly where the previous process left off.
    pub fn open_recovered(
        tenant: &str,
        session: FeedSession,
        opts: PipelineOptions,
        store: TenantStore,
        counters: RecoveredCounters,
    ) -> TenantPipeline {
        TenantPipeline::build(tenant, session, opts, Some(store), Some(counters))
    }

    fn build(
        tenant: &str,
        session: FeedSession,
        opts: PipelineOptions,
        mut store: Option<TenantStore>,
        recovered: Option<RecoveredCounters>,
    ) -> TenantPipeline {
        assert!(opts.queue_cap > 0, "queue capacity must be positive");
        let width = session.service_names().len();
        let (last_seq, total_scrapes, mut fingerprints) = match recovered {
            Some(r) => {
                let mut map = BTreeMap::new();
                for fp in r.fingerprints {
                    map.insert(
                        fp.first,
                        Fp {
                            last: fp.last,
                            n: fp.n,
                        },
                    );
                }
                (r.last_seq, r.total_scrapes, map)
            }
            None => (0, 0, BTreeMap::new()),
        };
        while fingerprints.len() > MAX_FINGERPRINTS {
            fingerprints.pop_first();
        }
        let frontier = fingerprints.last_key_value().map(|(_, fp)| fp.last);
        // The recovery-point checkpoint: persisting it now means the next
        // recovery replays nothing, and a panic restart has a base even
        // before the first cadence checkpoint.
        let ckpt = CkptState {
            seq: last_seq,
            scrapes: total_scrapes,
            feed: session.checkpoint(),
        };
        if let Some(store) = store.as_mut() {
            if let Err(e) = store.write_checkpoint(&StoredCheckpoint {
                wal_seq: ckpt.seq,
                scrapes: ckpt.scrapes,
                feed: ckpt.feed.clone(),
            }) {
                icfl_obs::counter_add(
                    "icfl_server_checkpoint_errors_total",
                    &[("tenant", tenant)],
                    1,
                );
                icfl_obs::warn!("tenant {tenant}: initial checkpoint failed: {e}");
            }
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                frontier,
                next_seq: last_seq + 1,
                fingerprints,
                tail: Vec::new(),
                store,
                last_ckpt: ckpt,
                draining: false,
            }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            panic_next: AtomicBool::new(false),
            accepted: AtomicU64::new(last_seq),
            processed: AtomicU64::new(last_seq),
            scrapes: AtomicU64::new(total_scrapes),
            processed_scrapes: AtomicU64::new(total_scrapes),
            restarts: AtomicU32::new(0),
            high_water: AtomicUsize::new(0),
            worker_error: Mutex::new(None),
            session: Mutex::new(session),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let tenant = tenant.to_owned();
            std::thread::Builder::new()
                .name(format!("icfl-tenant-{tenant}"))
                .spawn(move || supervised_worker(&tenant, &shared, opts))
                .expect("spawn tenant worker")
        };
        TenantPipeline {
            tenant: tenant.to_owned(),
            cap: opts.queue_cap,
            retry_after_ms: opts.retry_after_ms,
            width,
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Offers one batch. On `Ok` the batch is either queued for in-order
    /// processing ([`Accepted::Fresh`]) or recognized as an exact re-send
    /// of an already-accepted batch ([`Accepted::Duplicate`]); on `Err`
    /// nothing was taken and the journal recorded the rejection.
    pub fn submit(&self, batch: Batch) -> Result<Accepted, Reject> {
        let outcome = self.try_submit(batch);
        match &outcome {
            Ok(Accepted::Fresh { scrapes }) => {
                icfl_obs::counter_add(
                    "icfl_server_batches_accepted_total",
                    &[("tenant", &self.tenant)],
                    1,
                );
                icfl_obs::counter_add(
                    "icfl_server_scrapes_ingested_total",
                    &[("tenant", &self.tenant)],
                    *scrapes,
                );
            }
            Ok(Accepted::Duplicate { .. }) => {
                icfl_obs::counter_add(
                    "icfl_server_batches_deduped_total",
                    &[("tenant", &self.tenant)],
                    1,
                );
            }
            Err(reject) => icfl_obs::counter_add(
                "icfl_server_batches_rejected_total",
                &[("tenant", &self.tenant), ("reason", reject.reason())],
                1,
            ),
        }
        outcome
    }

    fn try_submit(&self, batch: Batch) -> Result<Accepted, Reject> {
        if batch.is_empty() {
            return Err(Reject::Malformed("empty batch".to_owned()));
        }
        let width = self.width;
        let mut prev: Option<u64> = None;
        for (at, row) in &batch {
            if row.len() != width {
                return Err(Reject::Malformed(format!(
                    "{} services in row at {at}, tenant has {width}",
                    row.len()
                )));
            }
            if prev.is_some_and(|p| *at <= p) {
                return Err(Reject::OutOfOrder(format!(
                    "scrape at {at}ns does not follow {}ns within the batch",
                    prev.expect("checked")
                )));
            }
            prev = Some(*at);
        }
        if self.shared.crashed.load(Ordering::SeqCst) {
            return Err(Reject::Internal("pipeline crashed".to_owned()));
        }
        if let Some(err) = self
            .shared
            .worker_error
            .lock()
            .expect("tenant error lock")
            .clone()
        {
            return Err(Reject::Malformed(format!("session failed: {err}")));
        }
        let first = batch[0].0;
        let last = batch[batch.len() - 1].0;
        let scrapes = batch.len() as u64;
        // Ordering, duplicate, capacity, and WAL decisions happen under
        // one lock, so two racing submits cannot both pass the ordering
        // check, both squeeze into the last queue slot, or interleave
        // their WAL appends out of sequence order.
        let mut inner = self.shared.inner.lock().expect("tenant inner lock");
        if inner.draining {
            return Err(Reject::Draining);
        }
        if let Some(fp) = inner.fingerprints.get(&first) {
            // An exact re-send of an accepted batch (client retry after a
            // lost ack, or a replay across a server restart): acknowledge
            // idempotently without re-applying.
            if fp.last == last && u64::from(fp.n) == scrapes {
                return Ok(Accepted::Duplicate { scrapes });
            }
            return Err(Reject::OutOfOrder(format!(
                "batch at {first}ns conflicts with an accepted batch ({} scrapes through {}ns)",
                fp.n, fp.last
            )));
        }
        if inner.frontier.is_some_and(|f| first <= f) {
            return Err(Reject::OutOfOrder(format!(
                "batch starts at {first}ns, stream frontier is {}ns",
                inner.frontier.expect("checked")
            )));
        }
        if inner.queue.len() >= self.cap {
            return Err(Reject::QueueFull {
                retry_after_ms: self.retry_after_ms,
            });
        }
        let seq = inner.next_seq;
        let batch = Arc::new(batch);
        if let Some(store) = inner.store.as_mut() {
            // Durability before acknowledgement: an acked batch is always
            // recoverable. Appending under the lock keeps WAL order equal
            // to sequence order.
            if let Err(e) = store.append(seq, &batch) {
                icfl_obs::counter_add(
                    "icfl_server_wal_errors_total",
                    &[("tenant", &self.tenant)],
                    1,
                );
                return Err(Reject::Internal(format!("wal append failed: {e}")));
            }
        }
        inner.next_seq += 1;
        inner.frontier = Some(last);
        inner.fingerprints.insert(
            first,
            Fp {
                last,
                n: batch.len() as u32,
            },
        );
        while inner.fingerprints.len() > MAX_FINGERPRINTS {
            inner.fingerprints.pop_first();
        }
        inner.tail.push((seq, Arc::clone(&batch)));
        inner.queue.push_back((Instant::now(), seq, batch));
        let depth = inner.queue.len();
        drop(inner);
        let peak = self
            .shared
            .high_water
            .fetch_max(depth, Ordering::Relaxed)
            .max(depth);
        icfl_obs::gauge_max(
            "icfl_server_queue_depth_high_water",
            &[("tenant", &self.tenant)],
            peak as u64,
        );
        self.shared.accepted.fetch_add(1, Ordering::SeqCst);
        self.shared.scrapes.fetch_add(scrapes, Ordering::Relaxed);
        self.shared.wake.notify_one();
        Ok(Accepted::Fresh { scrapes })
    }

    /// Batches accepted since the stream began (survives recovery).
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::SeqCst)
    }

    /// Batches fully pushed through the session.
    pub fn processed(&self) -> u64 {
        self.shared.processed.load(Ordering::SeqCst)
    }

    /// Scrapes accepted since the stream began (survives recovery).
    pub fn scrapes_accepted(&self) -> u64 {
        self.shared.scrapes.load(Ordering::Relaxed)
    }

    /// Peak queue depth observed.
    pub fn queue_high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }

    /// Whether every accepted batch has been processed.
    pub fn drained(&self) -> bool {
        self.processed() == self.accepted()
    }

    /// Marks the tenant as draining: every subsequent submit is rejected
    /// with [`Reject::Draining`], so the verdict set observed after the
    /// queue empties is complete — no batch can race past the drain.
    pub fn begin_drain(&self) {
        let mut inner = self.shared.inner.lock().expect("tenant inner lock");
        if !inner.draining {
            inner.draining = true;
            icfl_obs::counter_add(
                "icfl_server_drains_started_total",
                &[("tenant", &self.tenant)],
                1,
            );
        }
    }

    /// Worker panic restarts so far.
    pub fn worker_restarts(&self) -> u32 {
        self.shared.restarts.load(Ordering::SeqCst)
    }

    /// The newest checkpointed sequence (0 before the first checkpoint).
    pub fn checkpointed_seq(&self) -> u64 {
        self.shared
            .inner
            .lock()
            .expect("tenant inner lock")
            .last_ckpt
            .seq
    }

    /// Chaos hook: the worker panics before processing its next batch,
    /// exercising the supervised restart path.
    pub fn inject_worker_panic(&self) {
        self.shared.panic_next.store(true, Ordering::SeqCst);
    }

    /// Simulates `kill -9` for this pipeline: the worker exits
    /// immediately — mid-queue, without a final checkpoint or WAL sync —
    /// and every later submit is rejected. In-memory state is abandoned
    /// exactly as a process death would abandon it; only store-based
    /// recovery may follow.
    pub fn crash(&self) {
        self.shared.crashed.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        let handle = self.worker.lock().expect("tenant worker lock").take();
        if let Some(worker) = handle {
            let _ = worker.join();
        }
    }

    /// The first session-level error the worker hit, if any.
    pub fn worker_error(&self) -> Option<String> {
        self.shared
            .worker_error
            .lock()
            .expect("tenant error lock")
            .clone()
    }

    /// Runs `f` against the tenant's session (e.g. to collect verdicts).
    /// Prefer calling this only when [`TenantPipeline::drained`] — the
    /// worker contends on the same lock.
    pub fn with_session<T>(&self, f: impl FnOnce(&FeedSession) -> T) -> T {
        f(&self.shared.session.lock().expect("tenant session lock"))
    }
}

impl Drop for TenantPipeline {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        let handle = self.worker.lock().expect("tenant worker lock").take();
        if let Some(worker) = handle {
            let _ = worker.join();
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// The worker supervisor: runs [`worker_loop`], and on panic restores the
/// session from the newest in-memory checkpoint, replays the accepted
/// tail, and restarts the loop — up to `opts.max_worker_restarts` times,
/// after which the tenant is poisoned rather than left flapping.
fn supervised_worker(tenant: &str, shared: &Arc<Shared>, opts: PipelineOptions) {
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| worker_loop(tenant, shared, opts)));
        let payload = match run {
            Ok(()) => return, // clean shutdown (or simulated crash)
            Err(payload) => payload,
        };
        let restarts = shared.restarts.fetch_add(1, Ordering::SeqCst) + 1;
        icfl_obs::counter_add(
            "icfl_server_worker_restarts_total",
            &[("tenant", tenant)],
            1,
        );
        let msg = panic_message(payload.as_ref());
        icfl_obs::warn!("tenant {tenant}: worker panicked ({msg}); restart {restarts}");
        if restarts > opts.max_worker_restarts {
            poison(
                tenant,
                shared,
                format!("worker panicked {restarts} times, giving up: {msg}"),
            );
            return;
        }
        if let Err(e) = restore_from_checkpoint(shared) {
            poison(tenant, shared, format!("restart replay failed: {e}"));
            return;
        }
    }
}

/// Poisons the tenant: records the sticky error, clears any mutex
/// poisoning so readers keep working, and empties the queue so a pending
/// drain observes completion (of a now-failed stream) instead of hanging.
fn poison(tenant: &str, shared: &Shared, error: String) {
    shared.worker_error.clear_poison();
    shared.inner.clear_poison();
    shared.session.clear_poison();
    *shared.worker_error.lock().expect("tenant error lock") = Some(error);
    icfl_obs::counter_add("icfl_server_worker_errors_total", &[("tenant", tenant)], 1);
    let mut inner = shared.inner.lock().expect("tenant inner lock");
    inner.queue.clear();
    // Settle the accounting (the batch popped by the panicking worker was
    // never counted as processed) so a pending drain observes completion
    // of the now-failed stream instead of hanging.
    shared
        .processed
        .store(shared.accepted.load(Ordering::SeqCst), Ordering::SeqCst);
}

/// Repairs state after a worker panic: clears mutex poisoning, restores
/// the session from the newest in-memory checkpoint, and replays every
/// accepted batch past it (the tail holds them all, queued or popped).
/// Afterwards the session has absorbed every accepted batch, so the queue
/// is cleared and `processed` jumps to `accepted`.
fn restore_from_checkpoint(shared: &Shared) -> Result<(), String> {
    shared.session.clear_poison();
    shared.inner.clear_poison();
    shared.worker_error.clear_poison();
    let mut session = shared.session.lock().expect("tenant session lock");
    let mut inner = shared.inner.lock().expect("tenant inner lock");
    session.restore(inner.last_ckpt.feed.clone());
    for (seq, batch) in &inner.tail {
        for (at, row) in batch.iter() {
            session
                .push(SimTime::from_nanos(*at), row.clone())
                .map_err(|e| format!("seq {seq} at {at}ns: {e}"))?;
        }
    }
    inner.queue.clear();
    shared
        .processed
        .store(shared.accepted.load(Ordering::SeqCst), Ordering::SeqCst);
    shared
        .processed_scrapes
        .store(shared.scrapes.load(Ordering::Relaxed), Ordering::Relaxed);
    Ok(())
}

/// Takes a checkpoint at `seq` (the worker's last fully processed batch):
/// snapshots the session, trims the replay tail, and — when a store is
/// attached — persists it with an atomic rename.
fn take_checkpoint(tenant: &str, shared: &Shared, session: &FeedSession, seq: u64) {
    let feed = session.checkpoint();
    let scrapes = shared.processed_scrapes.load(Ordering::Relaxed);
    let mut inner = shared.inner.lock().expect("tenant inner lock");
    inner.tail.retain(|(s, _)| *s > seq);
    if let Some(store) = inner.store.as_mut() {
        if let Err(e) = store.write_checkpoint(&StoredCheckpoint {
            wal_seq: seq,
            scrapes,
            feed: feed.clone(),
        }) {
            icfl_obs::counter_add(
                "icfl_server_checkpoint_errors_total",
                &[("tenant", tenant)],
                1,
            );
            icfl_obs::warn!("tenant {tenant}: checkpoint at seq {seq} failed: {e}");
        }
    }
    inner.last_ckpt = CkptState { seq, scrapes, feed };
}

fn worker_loop(tenant: &str, shared: &Arc<Shared>, opts: PipelineOptions) {
    let mut ticks_since_ckpt: u64 = 0;
    let mut last_processed_seq: u64 = 0;
    loop {
        let next = {
            let mut inner = shared.inner.lock().expect("tenant inner lock");
            loop {
                if shared.crashed.load(Ordering::SeqCst) {
                    return; // simulated kill -9: abandon everything
                }
                if let Some(entry) = inner.queue.pop_front() {
                    break Some((entry, inner.tail.len()));
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                inner = shared.wake.wait(inner).expect("tenant inner lock poisoned");
            }
        };
        let Some(((enqueued_at, seq, batch), tail_len)) = next else {
            // Clean shutdown: leave a final checkpoint so the next start
            // restores instead of replaying the whole tail.
            if last_processed_seq > 0 {
                let session = shared.session.lock().expect("tenant session lock");
                take_checkpoint(tenant, shared, &session, last_processed_seq);
            }
            return;
        };
        if shared.panic_next.swap(false, Ordering::SeqCst) {
            panic!("injected worker panic (tenant {tenant}, seq {seq})");
        }
        let mut session = shared.session.lock().expect("tenant session lock");
        let mut failed = false;
        for (at, row) in batch.iter() {
            match session.push(SimTime::from_nanos(*at), row.clone()) {
                Ok(progress) => {
                    ticks_since_ckpt += u64::from(progress.ticks);
                    observe_latency(tenant, enqueued_at, progress, &session);
                }
                Err(e) => {
                    // Submission validates ordering and width, so this is
                    // a statistical/internal failure: poison the tenant
                    // (subsequent submits are rejected, the error is
                    // visible on /incidents) rather than dropping quietly.
                    *shared.worker_error.lock().expect("tenant error lock") = Some(e.to_string());
                    icfl_obs::counter_add(
                        "icfl_server_worker_errors_total",
                        &[("tenant", tenant)],
                        1,
                    );
                    failed = true;
                    break;
                }
            }
        }
        shared
            .processed_scrapes
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        last_processed_seq = seq;
        if !failed
            && (ticks_since_ckpt >= u64::from(opts.checkpoint_every_ticks)
                || tail_len >= MAX_TAIL_BATCHES)
        {
            take_checkpoint(tenant, shared, &session, seq);
            ticks_since_ckpt = 0;
        }
        drop(session);
        icfl_obs::histogram_observe(
            "icfl_server_batch_process_latency",
            &[("tenant", tenant)],
            enqueued_at.elapsed(),
        );
        shared.processed.fetch_add(1, Ordering::SeqCst);
        if failed {
            // Drain and count everything queued behind the failure.
            let mut inner = shared.inner.lock().expect("tenant inner lock");
            while inner.queue.pop_front().is_some() {
                shared.processed.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Observes ingest-to-verdict latency for every incident milestone the
/// push produced, measured from the batch's enqueue instant — the
/// client-visible "how stale was the verdict" number.
fn observe_latency(
    tenant: &str,
    enqueued_at: Instant,
    progress: FeedProgress,
    session: &FeedSession,
) {
    let elapsed = enqueued_at.elapsed();
    if progress.confirmed > 0 {
        // Newly confirmed incidents are the last `progress.confirmed`
        // tracked: exemplars link each latency bucket to the incident id
        // that `/explain/<tenant>/<id>` resolves.
        let total = session.chains().len();
        let newly = total.saturating_sub(progress.confirmed as usize);
        for incident in newly..total {
            icfl_obs::histogram_observe_exemplar(
                "icfl_server_ingest_to_verdict_latency",
                &[("tenant", tenant), ("milestone", "confirmed")],
                elapsed,
                &format!("{tenant}/{incident}"),
            );
        }
    }
    if progress.localized > 0 {
        let localized: Vec<u32> = session
            .chains()
            .iter()
            .filter(|c| c.localized_at_nanos.is_some())
            .map(|c| c.incident)
            .collect();
        let newly = localized.len().saturating_sub(progress.localized as usize);
        for incident in &localized[newly..] {
            icfl_obs::histogram_observe_exemplar(
                "icfl_server_ingest_to_verdict_latency",
                &[("tenant", tenant), ("milestone", "localized")],
                elapsed,
                &format!("{tenant}/{incident}"),
            );
        }
    }
}
