//! Per-tenant durable state: a write-ahead log of accepted scrape
//! batches, an atomically-renamed session checkpoint, and the recovery
//! scan that rebuilds a tenant after a crash.
//!
//! # State-dir layout
//!
//! ```text
//! <state-dir>/
//!   <tenant>/               one directory per registered tenant
//!     meta.json             tenant name + service names (written once,
//!                           atomic rename) — enough to rebuild the
//!                           FeedSession from the model registry
//!     wal.jsonl             append-only batch log (see below)
//!     ckpt.json             newest checkpoint (atomic rename):
//!                           {"wal_seq":N,"scrapes":S,"feed":{...}}
//! ```
//!
//! # WAL format
//!
//! Every line is valid JSON. A batch record is one header object
//!
//! ```text
//! {"seq":12,"n":3,"first":100000,"last":300000}
//! ```
//!
//! followed by exactly `n` scrape lines in the compact
//! [`encode_scrape_line`] form (`[t,[[c0,...,c10],...]]`). The whole
//! record is appended with a single `write` and fsynced every
//! [`StoreConfig::fsync_every_batches`] batches (and at every
//! checkpoint), so a torn record can only sit at the tail. Recovery
//! truncates the torn tail — the batch it held was never acknowledged, so
//! the client re-sends it and the sequence numbering continues unchanged.
//!
//! # Recovery semantics
//!
//! [`recover`] loads `ckpt.json` if present, then replays every WAL
//! record with `seq > ckpt.wal_seq` through the restored session. Records
//! at or before the checkpoint are *not* re-parsed scrape-by-scrape —
//! their headers alone rebuild the duplicate-detection fingerprint index
//! and the accepted-scrape totals. The result is byte-identical session
//! state to an uninterrupted run: same verdicts, same window counts, same
//! ingest accounting.

use crate::tenant::Batch;
use icfl_online::FeedCheckpoint;
use icfl_scenario::trace::{encode_scrape_line, parse_scrape_line};
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Durability tuning of one tenant store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Batches between WAL fsyncs (`1` = every batch). A process crash
    /// (`kill -9`) never loses buffered appends — only a machine/power
    /// failure can, bounded by this window.
    pub fsync_every_batches: u32,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync_every_batches: 16,
        }
    }
}

/// The `meta.json` contents: everything needed to rebuild the tenant's
/// `FeedSession` shell (the model itself comes from the registry, keyed
/// by the tenant name's app prefix).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredMeta {
    /// The tenant name as registered.
    pub tenant: String,
    /// Service names in row order, as supplied at registration.
    pub service_names: Vec<String>,
}

/// The `ckpt.json` contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredCheckpoint {
    /// The WAL sequence the checkpointed session has fully absorbed;
    /// recovery replays every record past it.
    pub wal_seq: u64,
    /// Scrapes absorbed through `wal_seq` (cumulative).
    pub scrapes: u64,
    /// The session state itself.
    pub feed: FeedCheckpoint,
}

/// One batch record's header line.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct WalHeader {
    seq: u64,
    n: u32,
    first: u64,
    last: u64,
}

/// The identity of one accepted batch, for idempotent re-sends: a
/// re-sent batch matching a recorded `(first, last, n)` is acknowledged
/// without being re-applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFingerprint {
    /// First scrape timestamp, nanoseconds.
    pub first: u64,
    /// Last scrape timestamp, nanoseconds.
    pub last: u64,
    /// Scrapes in the batch.
    pub n: u32,
    /// The WAL sequence the batch was accepted under.
    pub seq: u64,
}

/// An open append handle on one tenant's durable state.
#[derive(Debug)]
pub struct TenantStore {
    dir: PathBuf,
    wal: File,
    cfg: StoreConfig,
    unsynced: u32,
}

/// Writes `bytes` to `path` via a temp file + fsync + atomic rename, so
/// a crash mid-write can never leave a half-written file under `path`.
fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(".tmp-write");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

impl TenantStore {
    /// Creates (or wipes and recreates) the state directory for `tenant`
    /// and writes its `meta.json`.
    ///
    /// # Errors
    ///
    /// Filesystem failures as `io::Error`.
    pub fn create(state_dir: &Path, meta: &StoredMeta) -> io::Result<TenantStore> {
        let dir = state_dir.join(&meta.tenant);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        fs::create_dir_all(&dir)?;
        let bytes = serde_json::to_string(meta)
            .map_err(io::Error::other)?
            .into_bytes();
        write_atomic(&dir, &dir.join("meta.json"), &bytes)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("wal.jsonl"))?;
        Ok(TenantStore {
            dir,
            wal,
            cfg: StoreConfig::default(),
            unsynced: 0,
        })
    }

    /// Sets the durability tuning, returning `self`.
    #[must_use]
    pub fn with_config(mut self, cfg: StoreConfig) -> TenantStore {
        self.cfg = cfg;
        self
    }

    /// Appends one accepted batch under `seq` as a single write, fsyncing
    /// every [`StoreConfig::fsync_every_batches`] appends.
    ///
    /// # Errors
    ///
    /// Filesystem failures as `io::Error`.
    pub fn append(&mut self, seq: u64, batch: &Batch) -> io::Result<()> {
        let header = WalHeader {
            seq,
            n: batch.len() as u32,
            first: batch[0].0,
            last: batch[batch.len() - 1].0,
        };
        let mut record = serde_json::to_string(&header)
            .map_err(io::Error::other)?
            .into_bytes();
        record.push(b'\n');
        for (at, row) in batch {
            record.extend_from_slice(encode_scrape_line(*at, row).as_bytes());
            record.push(b'\n');
        }
        self.wal.write_all(&record)?;
        self.unsynced += 1;
        if self.unsynced >= self.cfg.fsync_every_batches {
            self.sync()?;
        }
        icfl_obs::counter_add("icfl_server_wal_appended_batches_total", &[], 1);
        icfl_obs::counter_add("icfl_server_wal_bytes_total", &[], record.len() as u64);
        Ok(())
    }

    /// Forces buffered WAL appends to disk now.
    ///
    /// # Errors
    ///
    /// Filesystem failures as `io::Error`.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.wal.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Persists a checkpoint atomically (temp file + fsync + rename),
    /// syncing the WAL first so the checkpoint never references appends
    /// that could be lost behind it.
    ///
    /// # Errors
    ///
    /// Filesystem failures as `io::Error`.
    pub fn write_checkpoint(&mut self, ckpt: &StoredCheckpoint) -> io::Result<()> {
        self.sync()?;
        let bytes = serde_json::to_string(ckpt)
            .map_err(io::Error::other)?
            .into_bytes();
        write_atomic(&self.dir, &self.dir.join("ckpt.json"), &bytes)?;
        icfl_obs::counter_add("icfl_server_checkpoints_total", &[], 1);
        icfl_obs::counter_add(
            "icfl_server_checkpoint_bytes_total",
            &[],
            bytes.len() as u64,
        );
        Ok(())
    }
}

/// Everything [`recover`] rebuilds from one tenant's state directory.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// The registration metadata.
    pub meta: StoredMeta,
    /// An append handle positioned past the last complete record (a torn
    /// tail has already been truncated away).
    pub store: TenantStore,
    /// The newest persisted checkpoint, if one was ever written.
    pub checkpoint: Option<StoredCheckpoint>,
    /// WAL batches past the checkpoint, in sequence order — these must be
    /// replayed through the restored session.
    pub replay: Vec<(u64, Batch)>,
    /// Fingerprints of every recorded batch (checkpointed and replayed),
    /// for idempotent re-send detection.
    pub fingerprints: Vec<BatchFingerprint>,
    /// The newest recorded sequence (0 if the WAL is empty).
    pub last_seq: u64,
    /// Scrapes accepted across the whole WAL.
    pub total_scrapes: u64,
}

/// Tenant directory names under `state_dir`, sorted (deterministic
/// recovery order).
///
/// # Errors
///
/// Filesystem failures as `io::Error`; a missing `state_dir` is an empty
/// listing, not an error.
pub fn list_tenants(state_dir: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    let entries = match fs::read_dir(state_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(names),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
    }
    names.sort();
    Ok(names)
}

fn corrupt(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

/// Rebuilds one tenant from its state directory: loads `meta.json` and
/// `ckpt.json`, scans the WAL (headers only up to the checkpoint, full
/// scrape parses past it), truncates any torn tail, and reopens the WAL
/// for append.
///
/// # Errors
///
/// Missing/corrupt `meta.json` or `ckpt.json`, or a WAL record that is
/// malformed *before* the tail (tail tears are expected and recovered
/// from), as `io::Error`.
pub fn recover(state_dir: &Path, tenant_dir: &str) -> io::Result<RecoveredTenant> {
    let dir = state_dir.join(tenant_dir);
    let meta: StoredMeta = serde_json::from_str(&fs::read_to_string(dir.join("meta.json"))?)
        .map_err(|e| corrupt(format!("meta.json: {e}")))?;
    let checkpoint: Option<StoredCheckpoint> = match fs::read_to_string(dir.join("ckpt.json")) {
        Ok(text) => {
            Some(serde_json::from_str(&text).map_err(|e| corrupt(format!("ckpt.json: {e}")))?)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    let ckpt_seq = checkpoint.as_ref().map_or(0, |c| c.wal_seq);

    let wal_path = dir.join("wal.jsonl");
    let mut reader = BufReader::new(File::open(&wal_path)?);
    let mut line = String::new();
    // Byte offset of the end of the last *complete* record: anything past
    // it is a torn tail from a crash mid-append and gets truncated.
    let mut complete_end = 0u64;
    let mut offset = 0u64;
    let mut last_seq = 0u64;
    let mut total_scrapes = 0u64;
    let mut fingerprints = Vec::new();
    let mut replay = Vec::new();
    'scan: loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        offset += n as u64;
        let Ok(header) = serde_json::from_str::<WalHeader>(line.trim_end()) else {
            break; // torn header at the tail
        };
        if header.seq != last_seq + 1 {
            return Err(corrupt(format!(
                "wal.jsonl: record seq {} follows {last_seq}",
                header.seq
            )));
        }
        let mut batch: Batch = Vec::new();
        for _ in 0..header.n {
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 || !line.ends_with('\n') {
                break 'scan; // torn mid-record at the tail
            }
            offset += n as u64;
            if header.seq > ckpt_seq {
                // Only post-checkpoint records need their scrapes back.
                let (at, row) = parse_scrape_line(line.trim_end())
                    .map_err(|e| corrupt(format!("wal.jsonl seq {}: {e}", header.seq)))?;
                batch.push((at, row));
            }
        }
        complete_end = offset;
        last_seq = header.seq;
        total_scrapes += u64::from(header.n);
        fingerprints.push(BatchFingerprint {
            first: header.first,
            last: header.last,
            n: header.n,
            seq: header.seq,
        });
        if header.seq > ckpt_seq {
            replay.push((header.seq, batch));
        }
    }
    drop(reader);

    let file_len = fs::metadata(&wal_path)?.len();
    if file_len > complete_end {
        icfl_obs::counter_add("icfl_server_wal_torn_tails_total", &[], 1);
        let f = OpenOptions::new().write(true).open(&wal_path)?;
        f.set_len(complete_end)?;
        f.sync_all()?;
    }
    let wal = OpenOptions::new().append(true).open(&wal_path)?;
    icfl_obs::counter_add(
        "icfl_server_wal_replayed_batches_total",
        &[],
        replay.len() as u64,
    );
    Ok(RecoveredTenant {
        meta,
        store: TenantStore {
            dir,
            wal,
            cfg: StoreConfig::default(),
            unsynced: 0,
        },
        checkpoint,
        replay,
        fingerprints,
        last_seq,
        total_scrapes,
    })
}
