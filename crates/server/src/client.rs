//! A blocking keep-alive HTTP client for the ingest server — one TCP
//! connection per [`HttpClient`], reconnecting transparently if the
//! server closed it between requests.

use crate::http::{self, Response};
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

/// A persistent connection to one server address.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
}

impl HttpClient {
    /// A client for `addr` (connects lazily on the first request).
    pub fn connect(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            conn: None,
        }
    }

    fn ensure(&mut self) -> std::io::Result<&mut (TcpStream, BufReader<TcpStream>)> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some((stream, reader));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the response, retrying once on a fresh
    /// connection if the kept-alive socket turned out dead.
    ///
    /// # Errors
    ///
    /// Transport failures after the retry, as `io::Error`.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        for attempt in 0..2 {
            match self.try_request(method, path, body) {
                Ok(resp) => return Ok(resp),
                Err(e) if attempt == 0 => {
                    // Stale keep-alive (server idle-timeout, pool churn):
                    // drop the socket and retry once from scratch.
                    self.conn = None;
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on second attempt")
    }

    fn try_request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        let (stream, reader) = self.ensure()?;
        http::write_request(stream, method, path, body)?;
        match http::read_response(reader) {
            Ok(Some(resp)) => {
                if resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = None;
                }
                Ok(resp)
            }
            Ok(None) => {
                self.conn = None;
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "server closed the connection",
                ))
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, b"")
    }

    /// `POST path` with `body`.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<Response> {
        self.request("POST", path, body)
    }
}
