//! Fleet-scale topology generators (100–1000 services).
//!
//! The paper's motivation cites production call graphs of "hundreds to
//! thousands of microservices"; the generators in [`crate::synthetic`] top
//! out at a few dozen before per-request amplification makes them
//! impractically slow. These variants are tuned for fleet-size campaigns:
//! fast per-hop service times, bounded per-request fan-out, and shard-
//! aligned replication so topology size can be scaled independently of
//! call-graph shape.

use crate::app::App;
use icfl_loadgen::UserFlow;
use icfl_micro::{steps, ClusterSpec, ServiceSpec, Step};
use icfl_sim::{DurationDist, SimDuration};

/// Per-hop compute time for fleet topologies: fast enough that a request
/// traversing hundreds of services stays well inside the call timeout.
fn fleet_task_time() -> DurationDist {
    DurationDist::log_normal(SimDuration::from_micros(300), 0.2)
}

/// A complete `fan`-ary call tree of `depth` levels below the root — wide
/// fan-outs with bounded per-request amplification (each request touches
/// every node of the tree exactly once).
///
/// Total services: `1 + fan + fan² + … + fan^depth`. `fanout_app(2, 9)` is
/// a 91-service fleet; `fanout_app(2, 17)` is 307; `fanout_app(2, 31)`
/// is 993.
///
/// # Panics
///
/// Panics if `depth == 0` or `fan == 0`.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::fanout_app(2, 9);
/// assert_eq!(app.num_services(), 91);
/// assert_eq!(app.call_edges().len(), 90);
/// ```
pub fn fanout_app(depth: usize, fan: usize) -> App {
    assert!(depth > 0, "a fan-out tree needs at least one level");
    assert!(fan > 0, "fan must be positive");
    let name_of = |level: usize, idx: usize| format!("t{level}_{idx}");
    let mut spec = ClusterSpec::new(format!("fanout-{depth}x{fan}"));
    let mut fault_targets = Vec::new();
    let mut width = 1usize;
    for level in 0..=depth {
        for idx in 0..width {
            let mut program = vec![steps::compute(fleet_task_time())];
            if level < depth {
                for child in 0..fan {
                    program.push(steps::call(&name_of(level + 1, idx * fan + child), "/"));
                }
            }
            let workers = if level == 0 { 32 } else { 8 };
            spec = spec.service(
                ServiceSpec::web(name_of(level, idx))
                    .with_concurrency(workers)
                    .endpoint("/", program),
            );
            fault_targets.push(name_of(level, idx));
        }
        width *= fan;
    }
    App {
        name: format!("fanout-{depth}x{fan}"),
        spec,
        flows: vec![UserFlow::new("root", name_of(0, 0), "/")],
        fault_targets,
    }
}

/// A layered mesh: `width` services per layer across `layers` layers, each
/// calling `fan` consecutive services of the next layer (wrap-around).
/// Generalizes [`crate::layered_app`]'s fixed fan of 2 with fleet-friendly
/// service times; per-request amplification is `fan^(layers−1)`, so keep
/// `fan` small when `layers` is large.
///
/// `layered_mesh_app(5, 20, 2)` is a 100-service mesh;
/// `layered_mesh_app(5, 60, 2)` is 300; `layered_mesh_app(5, 200, 2)`
/// is 1000.
///
/// # Panics
///
/// Panics if any of `layers`, `width`, `fan` is zero.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::layered_mesh_app(5, 20, 2);
/// assert_eq!(app.num_services(), 100);
/// ```
pub fn layered_mesh_app(layers: usize, width: usize, fan: usize) -> App {
    assert!(
        layers > 0 && width > 0 && fan > 0,
        "layers, width and fan must be positive"
    );
    let fan = fan.min(width);
    let name_of = |l: usize, w: usize| format!("m{l}_{w}");
    let mut spec = ClusterSpec::new(format!("mesh-{layers}x{width}x{fan}"));
    for l in 0..layers {
        for w in 0..width {
            let mut program = vec![steps::compute(fleet_task_time())];
            if l + 1 < layers {
                for k in 0..fan {
                    program.push(steps::call(&name_of(l + 1, (w + k) % width), "/"));
                }
            }
            spec = spec.service(
                ServiceSpec::web(name_of(l, w))
                    .with_concurrency(16)
                    .endpoint("/", program),
            );
        }
    }
    let flows = (0..width)
        .map(|w| UserFlow::new(format!("f{w}"), name_of(0, w), "/"))
        .collect();
    let fault_targets = (0..layers)
        .flat_map(|l| (0..width).map(move |w| name_of(l, w)))
        .collect();
    App {
        name: format!("mesh-{layers}x{width}x{fan}"),
        spec,
        flows,
        fault_targets,
    }
}

/// Shard-aligned replication: `replicas` independent copies of `base`, each
/// service `s` becoming `s@0 … s@{replicas−1}` with every call, KV access,
/// daemon and autoscaler rewritten within its own shard. Userflows and
/// fault targets are replicated per shard, so a 12-service app with 25
/// replicas is a 300-service fleet whose call graph is 25 disjoint copies —
/// the multi-replica deployment shape with deterministic (per-shard)
/// routing.
///
/// # Panics
///
/// Panics if `replicas == 0`.
///
/// # Examples
///
/// ```
/// let base = icfl_apps::pattern1();
/// let app = icfl_apps::replicated_app(&base, 4);
/// assert_eq!(app.num_services(), base.num_services() * 4);
/// ```
pub fn replicated_app(base: &App, replicas: usize) -> App {
    assert!(replicas > 0, "replicas must be positive");
    let shard = |name: &str, k: usize| format!("{name}@{k}");
    let mut spec = ClusterSpec::new(format!("{}-x{replicas}", base.spec.name));
    spec.net_latency = base.spec.net_latency;
    spec.conn_refused_latency = base.spec.conn_refused_latency;
    spec.call_timeout = base.spec.call_timeout;
    let mut flows = Vec::with_capacity(base.flows.len() * replicas);
    let mut fault_targets = Vec::with_capacity(base.fault_targets.len() * replicas);
    for k in 0..replicas {
        for svc in &base.spec.services {
            let mut copy = svc.clone();
            copy.name = shard(&svc.name, k);
            for ep in &mut copy.endpoints {
                for step in &mut ep.steps {
                    match step {
                        Step::Call { service, .. } => *service = shard(service, k),
                        Step::Kv { store, .. } => *store = shard(store, k),
                        _ => {}
                    }
                }
            }
            spec.services.push(copy);
        }
        for d in &base.spec.daemons {
            let mut copy = d.clone();
            copy.host = shard(&d.host, k);
            copy.store = shard(&d.store, k);
            if let Some((svc, _)) = &mut copy.call_per_item {
                *svc = shard(svc, k);
            }
            spec.daemons.push(copy);
        }
        for a in &base.spec.autoscalers {
            let mut copy = a.clone();
            copy.service = shard(&a.service, k);
            spec.autoscalers.push(copy);
        }
        for f in &base.flows {
            let mut copy = f.clone();
            copy.name = format!("{}@{k}", f.name);
            copy.entry_service = shard(&f.entry_service, k);
            flows.push(copy);
        }
        fault_targets.extend(base.fault_targets.iter().map(|t| shard(t, k)));
    }
    App {
        name: format!("{}-x{replicas}", base.name),
        spec,
        flows,
        fault_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_loadgen::{start_load, LoadConfig};
    use icfl_micro::Cluster;
    use icfl_sim::{Sim, SimTime};

    fn smoke(app: &App, seed: u64, secs: u64) -> Cluster {
        let (mut cluster, _) = app.build(seed).unwrap();
        let mut sim = Sim::with_capacity(seed, cluster.pending_events_hint());
        Cluster::start(&mut sim, &mut cluster);
        start_load(
            &mut sim,
            &mut cluster,
            &LoadConfig::closed_loop(app.flows.clone()),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(secs), &mut cluster);
        cluster
    }

    #[test]
    fn fanout_tree_covers_all_levels() {
        let app = fanout_app(2, 9);
        assert_eq!(app.num_services(), 91);
        assert_eq!(app.fault_targets.len(), 91);
        let cl = smoke(&app, 5, 20);
        let deepest = cl.service_id("t2_80").unwrap();
        assert!(cl.counters(deepest).requests_received > 10);
    }

    #[test]
    fn mesh_hits_the_last_layer() {
        let app = layered_mesh_app(5, 20, 2);
        assert_eq!(app.num_services(), 100);
        let cl = smoke(&app, 6, 20);
        for w in 0..20 {
            let leaf = cl.service_id(&format!("m4_{w}")).unwrap();
            assert!(cl.counters(leaf).requests_received > 10, "m4_{w} starved");
        }
    }

    #[test]
    fn replicated_shards_are_disjoint_copies() {
        let base = crate::causalbench();
        let app = replicated_app(&base, 3);
        assert_eq!(app.num_services(), base.num_services() * 3);
        assert_eq!(app.flows.len(), base.flows.len() * 3);
        assert_eq!(app.fault_targets.len(), base.fault_targets.len() * 3);
        // Every edge stays inside its shard.
        for (from, to) in app.call_edges() {
            let shard_of = |n: &str| n.rsplit('@').next().unwrap().to_owned();
            assert_eq!(shard_of(&from), shard_of(&to), "{from} -> {to}");
        }
        // And each shard is runnable.
        let cl = smoke(&app, 7, 20);
        for k in 0..3 {
            let a = cl.service_id(&format!("A@{k}")).unwrap();
            assert!(cl.counters(a).requests_received > 10, "shard {k} starved");
        }
    }

    #[test]
    fn fleet_generators_are_deterministic() {
        assert_eq!(fanout_app(2, 5), fanout_app(2, 5));
        assert_eq!(layered_mesh_app(3, 10, 2), layered_mesh_app(3, 10, 2));
        let base = crate::pattern1();
        assert_eq!(replicated_app(&base, 2), replicated_app(&base, 2));
    }
}
