//! The [`App`] bundle: a cluster spec plus its userflows and fault targets.

use icfl_loadgen::UserFlow;
use icfl_micro::{BuildError, Cluster, ClusterSpec, ServiceId, Step};
use serde::{Deserialize, Serialize};

/// A benchmark application: topology, workload, and fault-injection targets.
///
/// `fault_targets` lists the services the Algorithm-1 campaign intervenes
/// on — every HTTP-reachable service, following the paper's "each
/// microservice covered by our userflows" protocol. Services with no
/// listening port (CausalBench's node F) cannot receive an
/// `http-service-unavailable` fault and are excluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct App {
    /// Application name.
    pub name: String,
    /// The cluster topology and handlers.
    pub spec: ClusterSpec,
    /// The userflows driven by the load generator.
    pub flows: Vec<UserFlow>,
    /// Names of services targeted by fault injection.
    pub fault_targets: Vec<String>,
}

impl App {
    /// Builds the runnable cluster and resolves the fault-target ids.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from cluster validation; also fails if a
    /// fault target is not a service of the spec.
    pub fn build(&self, seed: u64) -> Result<(Cluster, Vec<ServiceId>), BuildError> {
        let cluster = Cluster::build(&self.spec, seed)?;
        let targets = self
            .fault_targets
            .iter()
            .map(|n| {
                cluster
                    .service_id(n)
                    .ok_or_else(|| BuildError::UnknownService(n.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((cluster, targets))
    }

    /// Number of services in the topology.
    pub fn num_services(&self) -> usize {
        self.spec.services.len()
    }

    /// Static caller→callee edges implied by the handlers and daemons —
    /// the black edges of the paper's topology figures.
    pub fn call_edges(&self) -> Vec<(String, String)> {
        let mut edges = Vec::new();
        for svc in &self.spec.services {
            for ep in &svc.endpoints {
                for step in &ep.steps {
                    match step {
                        Step::Call { service, .. } => {
                            edges.push((svc.name.clone(), service.clone()));
                        }
                        Step::Kv { store, .. } => {
                            edges.push((svc.name.clone(), store.clone()));
                        }
                        _ => {}
                    }
                }
            }
        }
        for d in &self.spec.daemons {
            edges.push((d.host.clone(), d.store.clone()));
            if let Some((svc, _)) = &d.call_per_item {
                edges.push((d.host.clone(), svc.clone()));
            }
        }
        edges.sort();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{steps, ServiceSpec};

    fn tiny() -> App {
        App {
            name: "tiny".into(),
            spec: ClusterSpec::new("tiny")
                .service(ServiceSpec::web("a").endpoint("/", vec![steps::call("b", "/")]))
                .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(1)])),
            flows: vec![UserFlow::new("root", "a", "/")],
            fault_targets: vec!["a".into(), "b".into()],
        }
    }

    #[test]
    fn build_resolves_targets() {
        let app = tiny();
        let (cluster, targets) = app.build(1).unwrap();
        assert_eq!(targets.len(), 2);
        assert_eq!(cluster.service_name(targets[0]), "a");
    }

    #[test]
    fn unknown_target_is_an_error() {
        let mut app = tiny();
        app.fault_targets.push("ghost".into());
        assert_eq!(
            app.build(1).unwrap_err(),
            BuildError::UnknownService("ghost".into())
        );
    }

    #[test]
    fn call_edges_cover_calls() {
        let app = tiny();
        assert_eq!(app.call_edges(), vec![("a".to_owned(), "b".to_owned())]);
    }
}
