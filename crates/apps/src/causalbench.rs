//! CausalBench — the paper's micro-benchmark (§V-B, Fig. 4).
//!
//! Nine services:
//!
//! ```text
//!        ┌── path_bce ──► B ──► C ──► E        (E logs every 100th request)
//!        ├── path_be  ──► B ───────► E
//! user ► A
//!        ├── path_hd  ──► H ──► D (redis, counter `items`)
//!        └── path_id  ──► I ──► D (redis, counter `dummy`)
//!
//!        F (daemon) polls D:`items`, decrements, calls G per item
//! ```
//!
//! All web nodes "execute small compute tasks"; F is the stateful decoupler
//! that turns a fault upstream of `items` into an *omission* at G.

use crate::app::App;
use icfl_loadgen::UserFlow;
use icfl_micro::{steps, ClusterSpec, DaemonSpec, ServiceSpec};
use icfl_sim::{DurationDist, SimDuration};

/// Service-time distribution used by every CausalBench web handler
/// (a small base64-of-random-string compute task).
fn task_time() -> DurationDist {
    DurationDist::log_normal(SimDuration::from_millis(2), 0.25)
}

/// Builds the CausalBench application.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::causalbench();
/// assert_eq!(app.num_services(), 9);
/// assert_eq!(app.flows.len(), 4);
/// ```
pub fn causalbench() -> App {
    let spec = ClusterSpec::new("causalbench")
        .service(
            ServiceSpec::web("A")
                .with_concurrency(16)
                .endpoint(
                    "path_bce",
                    vec![steps::compute(task_time()), steps::call("B", "path_ce")],
                )
                .endpoint(
                    "path_be",
                    vec![steps::compute(task_time()), steps::call("B", "path_e")],
                )
                .endpoint(
                    "path_hd",
                    vec![steps::compute(task_time()), steps::call("H", "/")],
                )
                .endpoint(
                    "path_id",
                    vec![steps::compute(task_time()), steps::call("I", "/")],
                ),
        )
        .service(
            ServiceSpec::web("B")
                .with_concurrency(8)
                .endpoint(
                    "path_ce",
                    vec![steps::compute(task_time()), steps::call("C", "path_e")],
                )
                .endpoint(
                    "path_e",
                    vec![steps::compute(task_time()), steps::call("E", "/")],
                ),
        )
        .service(ServiceSpec::web("C").with_concurrency(8).endpoint(
            "path_e",
            vec![steps::compute(task_time()), steps::call("E", "/")],
        ))
        .service(ServiceSpec::kv_store("D"))
        .service(ServiceSpec::web("E").with_concurrency(8).endpoint(
            "/",
            vec![
                steps::compute(task_time()),
                steps::log_every_n(100, "I am okay!"),
            ],
        ))
        .service(ServiceSpec::web("F"))
        .service(
            ServiceSpec::web("G")
                .with_concurrency(8)
                .endpoint("/", vec![steps::compute(task_time())]),
        )
        .service(ServiceSpec::web("H").with_concurrency(8).endpoint(
            "/",
            vec![steps::compute(task_time()), steps::kv_incr("D", "items")],
        ))
        .service(ServiceSpec::web("I").with_concurrency(8).endpoint(
            "/",
            vec![steps::compute(task_time()), steps::kv_incr("D", "dummy")],
        ))
        .daemon(DaemonSpec::poll_loop("F", "D", "items").calling("G", "/"));

    App {
        name: "causalbench".into(),
        spec,
        flows: vec![
            UserFlow::new("path_bce", "A", "path_bce"),
            UserFlow::new("path_be", "A", "path_be"),
            UserFlow::new("path_hd", "A", "path_hd"),
            UserFlow::new("path_id", "A", "path_id"),
        ],
        // Every HTTP-reachable service; F has no port (pure worker), so the
        // paper's http-service-unavailable fault cannot target it.
        fault_targets: ["A", "B", "C", "D", "E", "G", "H", "I"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_loadgen::{start_load, LoadConfig};
    use icfl_micro::{Cluster, FaultKind};
    use icfl_sim::{Sim, SimTime};

    fn run(seed: u64, fault: Option<&str>, secs: u64) -> Cluster {
        let app = causalbench();
        let (mut cluster, _) = app.build(seed).unwrap();
        if let Some(name) = fault {
            let id = cluster.service_id(name).unwrap();
            cluster.set_fault(id, Some(FaultKind::ServiceUnavailable));
        }
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let cfg = LoadConfig::closed_loop(app.flows.clone());
        start_load(&mut sim, &mut cluster, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(secs), &mut cluster);
        cluster
    }

    #[test]
    fn topology_matches_figure_4() {
        let app = causalbench();
        let edges = app.call_edges();
        let expect = |a: &str, b: &str| {
            assert!(
                edges.contains(&(a.to_owned(), b.to_owned())),
                "missing edge {a}->{b}: {edges:?}"
            );
        };
        expect("A", "B");
        expect("A", "H");
        expect("A", "I");
        expect("B", "C");
        expect("B", "E");
        expect("C", "E");
        expect("H", "D");
        expect("I", "D");
        expect("F", "D");
        expect("F", "G");
        assert_eq!(edges.len(), 10);
    }

    #[test]
    fn healthy_run_exercises_every_service() {
        let cl = run(1, None, 60);
        for name in ["A", "B", "C", "D", "E", "G", "H", "I"] {
            let id = cl.service_id(name).unwrap();
            assert!(
                cl.counters(id).requests_received > 0,
                "{name} received no traffic"
            );
        }
        // The indirect H→D→F→G path flows.
        let g = cl.service_id("G").unwrap();
        let h = cl.service_id("H").unwrap();
        let g_rx = cl.counters(g).requests_received;
        let h_rx = cl.counters(h).requests_received;
        let ratio = g_rx as f64 / h_rx as f64;
        assert!((0.85..1.1).contains(&ratio), "G/H ratio {ratio}");
    }

    #[test]
    fn e_logs_every_hundredth_request() {
        let cl = run(2, None, 120);
        let e = cl.service_id("E").unwrap();
        let c = cl.counters(e);
        let expected = c.requests_received / 100;
        let got = c.logs_info;
        assert!(
            got == expected || got + 1 == expected,
            "E rx={} logs={got}",
            c.requests_received
        );
    }

    #[test]
    fn fault_on_b_matches_section_6b_causal_worlds() {
        // §VI-B: msg-rate world of a B fault includes A (error logs) and E
        // (omission of "I am okay!"); CPU world includes C and E (traffic
        // stops).
        let normal = run(3, None, 120);
        let faulty = run(3, Some("B"), 120);
        let get = |cl: &Cluster, n: &str| cl.counters(cl.service_id(n).unwrap());

        // A now logs errors.
        assert_eq!(get(&normal, "A").logs_error, 0);
        assert!(get(&faulty, "A").logs_error > 50);
        // C and E stop receiving requests.
        assert!(get(&normal, "C").requests_received > 100);
        assert_eq!(get(&faulty, "C").requests_received, 0);
        assert_eq!(get(&faulty, "E").requests_received, 0);
        // E's info logs vanish (the omission fault on the msg metric).
        assert!(get(&normal, "E").logs_info > 0);
        assert_eq!(get(&faulty, "E").logs_info, 0);
        // The H/I/D side is unaffected.
        let h_normal = get(&normal, "H").requests_received as f64;
        let h_faulty = get(&faulty, "H").requests_received as f64;
        assert!(h_faulty > h_normal * 0.9, "H unaffected");
    }

    #[test]
    fn fault_on_d_starves_g_and_surfaces_at_h_and_f() {
        let normal = run(4, None, 120);
        let faulty = run(4, Some("D"), 120);
        let get = |cl: &Cluster, n: &str| cl.counters(cl.service_id(n).unwrap());
        // H errors (it calls D); F logs connection errors.
        assert!(get(&faulty, "H").logs_error > 50);
        assert!(get(&faulty, "F").logs_error > 50);
        // G is starved — the omission fault of Fig. 1 pattern 2.
        assert!(get(&normal, "G").requests_received > 100);
        assert_eq!(get(&faulty, "G").requests_received, 0);
    }

    #[test]
    fn fault_on_h_starves_g_without_errors_at_g() {
        let normal = run(5, None, 120);
        let faulty = run(5, Some("H"), 120);
        let get = |cl: &Cluster, n: &str| cl.counters(cl.service_id(n).unwrap());
        // A sees errors on path_hd.
        assert!(get(&faulty, "A").logs_error > 50);
        // G starves (no items produced), but logs nothing itself.
        assert!(get(&normal, "G").requests_received > 100);
        assert_eq!(get(&faulty, "G").requests_received, 0);
        assert_eq!(get(&faulty, "G").logs_total, 0);
    }
}
