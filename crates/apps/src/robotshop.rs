//! Robot-shop — the open-source e-commerce storefront used as the paper's
//! second benchmark (twelve deployed microservices across a polyglot stack:
//! AngularJS/Nginx web, NodeJS catalogue/user/cart, Java shipping, Python
//! payment, Golang dispatch, PHP ratings, MongoDB, MySQL, Redis, RabbitMQ).
//!
//! The simulation keeps the service graph and the asynchronous
//! payment → RabbitMQ → dispatch pipeline; the polyglot runtimes are
//! represented by differing service-time distributions.

use crate::app::App;
use icfl_loadgen::UserFlow;
use icfl_micro::{steps, ClusterSpec, DaemonSpec, ServiceSpec};
use icfl_sim::{DurationDist, SimDuration};

fn svc_time(ms: u64) -> DurationDist {
    DurationDist::log_normal(SimDuration::from_millis(ms), 0.3)
}

/// Builds the Robot-shop application model (12 services).
///
/// # Examples
///
/// ```
/// let app = icfl_apps::robot_shop();
/// assert_eq!(app.num_services(), 12);
/// assert!(app.flows.len() >= 5);
/// ```
pub fn robot_shop() -> App {
    let spec = ClusterSpec::new("robot-shop")
        // Front-end proxy: one endpoint per user action.
        .service(
            ServiceSpec::web("web")
                .with_concurrency(32)
                .endpoint(
                    "/browse",
                    vec![
                        steps::compute(svc_time(1)),
                        steps::call("catalogue", "/products"),
                    ],
                )
                .endpoint(
                    "/login",
                    vec![steps::compute(svc_time(1)), steps::call("user", "/login")],
                )
                .endpoint(
                    "/cart",
                    vec![steps::compute(svc_time(1)), steps::call("cart", "/add")],
                )
                .endpoint(
                    "/buy",
                    vec![steps::compute(svc_time(1)), steps::call("payment", "/pay")],
                )
                .endpoint(
                    "/shipping",
                    vec![
                        steps::compute(svc_time(1)),
                        steps::call("shipping", "/calc"),
                    ],
                )
                .endpoint(
                    "/ratings",
                    vec![steps::compute(svc_time(1)), steps::call("ratings", "/rate")],
                ),
        )
        .service(ServiceSpec::web("catalogue").with_concurrency(8).endpoint(
            "/products",
            vec![
                steps::compute(svc_time(2)),
                steps::call("mongodb", "/query"),
            ],
        ))
        .service(ServiceSpec::web("user").with_concurrency(8).endpoint(
            "/login",
            vec![
                steps::compute(svc_time(2)),
                steps::call("mongodb", "/query"),
                steps::kv_incr("redis", "sessions"),
            ],
        ))
        .service(
            ServiceSpec::web("cart")
                .with_concurrency(8)
                .endpoint(
                    "/add",
                    vec![
                        steps::compute(svc_time(2)),
                        steps::kv_incr("redis", "cart_items"),
                        steps::call("catalogue", "/products"),
                    ],
                )
                .endpoint("/get", vec![steps::compute(svc_time(1))]),
        )
        .service(ServiceSpec::web("shipping").with_concurrency(8).endpoint(
            "/calc",
            // Java service: slower, heavier CPU.
            vec![steps::compute(svc_time(5)), steps::call("mysql", "/query")],
        ))
        .service(ServiceSpec::web("payment").with_concurrency(8).endpoint(
            "/pay",
            vec![
                steps::compute(svc_time(3)),
                steps::call("cart", "/get"),
                // Publish the order for asynchronous dispatch.
                steps::kv_incr("rabbitmq", "orders"),
            ],
        ))
        // Golang dispatch worker: consumes the order queue.
        .service(ServiceSpec::web("dispatch"))
        .service(ServiceSpec::web("ratings").with_concurrency(8).endpoint(
            "/rate",
            vec![steps::compute(svc_time(2)), steps::call("mysql", "/query")],
        ))
        .service(
            ServiceSpec::web("mongodb")
                .with_concurrency(8)
                .endpoint("/query", vec![steps::compute(svc_time(2))]),
        )
        .service(
            ServiceSpec::web("mysql")
                .with_concurrency(8)
                .endpoint("/query", vec![steps::compute(svc_time(3))]),
        )
        .service(ServiceSpec::kv_store("redis"))
        .service(ServiceSpec::kv_store("rabbitmq"))
        .daemon(DaemonSpec::poll_loop("dispatch", "rabbitmq", "orders"));

    App {
        name: "robot-shop".into(),
        spec,
        flows: vec![
            UserFlow::new("browse", "web", "/browse").with_weight(3.0),
            UserFlow::new("login", "web", "/login"),
            UserFlow::new("add-to-cart", "web", "/cart"),
            UserFlow::new("checkout", "web", "/buy"),
            UserFlow::new("shipping", "web", "/shipping"),
            UserFlow::new("ratings", "web", "/ratings"),
        ],
        // dispatch is a pure queue consumer with no HTTP port.
        fault_targets: [
            "web",
            "catalogue",
            "user",
            "cart",
            "shipping",
            "payment",
            "ratings",
            "mongodb",
            "mysql",
            "redis",
            "rabbitmq",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_loadgen::{start_load, LoadConfig};
    use icfl_micro::{Cluster, FaultKind};
    use icfl_sim::{Sim, SimTime};

    fn run(seed: u64, fault: Option<&str>, secs: u64) -> Cluster {
        let app = robot_shop();
        let (mut cluster, _) = app.build(seed).unwrap();
        if let Some(name) = fault {
            let id = cluster.service_id(name).unwrap();
            cluster.set_fault(id, Some(FaultKind::ServiceUnavailable));
        }
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        start_load(
            &mut sim,
            &mut cluster,
            &LoadConfig::closed_loop(app.flows.clone()),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(secs), &mut cluster);
        cluster
    }

    #[test]
    fn twelve_services_and_sane_edges() {
        let app = robot_shop();
        assert_eq!(app.num_services(), 12);
        let edges = app.call_edges();
        for (a, b) in [
            ("web", "catalogue"),
            ("web", "payment"),
            ("catalogue", "mongodb"),
            ("cart", "redis"),
            ("payment", "rabbitmq"),
            ("dispatch", "rabbitmq"),
            ("shipping", "mysql"),
            ("ratings", "mysql"),
        ] {
            assert!(
                edges.contains(&(a.to_owned(), b.to_owned())),
                "missing {a}->{b}"
            );
        }
    }

    #[test]
    fn healthy_run_reaches_every_service() {
        let cl = run(1, None, 60);
        for name in [
            "web",
            "catalogue",
            "user",
            "cart",
            "shipping",
            "payment",
            "ratings",
            "mongodb",
            "mysql",
            "redis",
            "rabbitmq",
        ] {
            let id = cl.service_id(name).unwrap();
            assert!(cl.counters(id).requests_received > 0, "{name} starved");
        }
        // Dispatch drains the order queue.
        assert!(cl.daemon_items_processed(0) > 10);
        let rmq = cl.service_id("rabbitmq").unwrap();
        assert!(cl.kv_value(rmq, "orders") < 5);
    }

    #[test]
    fn mysql_outage_hits_shipping_and_ratings_only() {
        let cl = run(2, Some("mysql"), 60);
        let errs = |n: &str| cl.counters(cl.service_id(n).unwrap()).logs_error;
        assert!(errs("shipping") > 10);
        assert!(errs("ratings") > 10);
        assert_eq!(errs("catalogue"), 0);
        assert_eq!(errs("payment"), 0);
    }

    #[test]
    fn rabbitmq_outage_starves_dispatch_and_errors_payment() {
        let normal = run(3, None, 60);
        let faulty = run(3, Some("rabbitmq"), 60);
        assert!(normal.daemon_items_processed(0) > 10);
        assert_eq!(faulty.daemon_items_processed(0), 0);
        let errs = |cl: &Cluster, n: &str| cl.counters(cl.service_id(n).unwrap()).logs_error;
        assert!(errs(&faulty, "payment") > 10);
        assert!(errs(&faulty, "dispatch") > 10);
    }

    #[test]
    fn payment_outage_is_isolated_to_checkout_path() {
        let cl = run(4, Some("payment"), 60);
        let get = |n: &str| cl.counters(cl.service_id(n).unwrap());
        assert!(get("web").logs_error > 10);
        // Browsing still works.
        assert!(get("catalogue").responses_ok > 100);
        // No orders flow.
        assert_eq!(cl.daemon_items_processed(0), 0);
    }
}
