//! Synthetic topology generators for scalability studies.
//!
//! The paper motivates the problem with applications of "hundreds to
//! thousands of microservices" whose call graphs are heavy-tailed (10 % of
//! Alibaba's call graphs span more than 40 services). These generators
//! produce parameterized topologies so Algorithm 1/2 cost and accuracy can
//! be measured as the service count grows.

use crate::app::App;
use icfl_loadgen::UserFlow;
use icfl_micro::{steps, ClusterSpec, ServiceSpec};
use icfl_sim::{DurationDist, SimDuration};

fn task_time() -> DurationDist {
    DurationDist::log_normal(SimDuration::from_millis(2), 0.25)
}

/// A linear chain `s0 → s1 → … → s{depth−1}` with one userflow hitting the
/// head — the deepest call graphs the paper's motivation cites.
///
/// # Panics
///
/// Panics if `depth == 0`.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::chain_app(40);
/// assert_eq!(app.num_services(), 40);
/// assert_eq!(app.call_edges().len(), 39);
/// ```
pub fn chain_app(depth: usize) -> App {
    assert!(depth > 0, "a chain needs at least one service");
    let mut spec = ClusterSpec::new(format!("chain-{depth}"));
    for i in 0..depth {
        let mut svc = ServiceSpec::web(format!("s{i}")).with_concurrency(8);
        let steps = if i + 1 < depth {
            vec![
                steps::compute(task_time()),
                steps::call(&format!("s{}", i + 1), "/"),
            ]
        } else {
            vec![steps::compute(task_time())]
        };
        svc = svc.endpoint("/", steps);
        spec = spec.service(svc);
    }
    App {
        name: format!("chain-{depth}"),
        spec,
        flows: vec![UserFlow::new("chain", "s0", "/")],
        fault_targets: (0..depth).map(|i| format!("s{i}")).collect(),
    }
}

/// A hub-and-spoke star: a front door with one endpoint per leaf, one
/// weighted userflow per leaf — wide, shallow fan-out.
///
/// # Panics
///
/// Panics if `leaves == 0`.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::star_app(12);
/// assert_eq!(app.num_services(), 13); // hub + 12 leaves
/// assert_eq!(app.flows.len(), 12);
/// ```
pub fn star_app(leaves: usize) -> App {
    assert!(leaves > 0, "a star needs at least one leaf");
    let mut hub = ServiceSpec::web("hub").with_concurrency(32);
    let mut flows = Vec::with_capacity(leaves);
    for i in 0..leaves {
        let ep = format!("/leaf{i}");
        hub = hub.endpoint(
            &ep,
            vec![
                steps::compute(task_time()),
                steps::call(&format!("leaf{i}"), "/"),
            ],
        );
        flows.push(UserFlow::new(format!("f{i}"), "hub", ep));
    }
    let mut spec = ClusterSpec::new(format!("star-{leaves}")).service(hub);
    for i in 0..leaves {
        spec = spec.service(
            ServiceSpec::web(format!("leaf{i}"))
                .with_concurrency(8)
                .endpoint("/", vec![steps::compute(task_time())]),
        );
    }
    let mut fault_targets = vec!["hub".to_owned()];
    fault_targets.extend((0..leaves).map(|i| format!("leaf{i}")));
    App {
        name: format!("star-{leaves}"),
        spec,
        flows,
        fault_targets,
    }
}

/// A layered DAG: `width` services per layer across `layers` layers; each
/// service calls the same-index and next-index services of the next layer
/// (wrap-around), with one userflow per layer-0 service. This is the
/// "typical microservice tier" shape (frontend → middle tiers → leaves).
///
/// # Panics
///
/// Panics if `layers == 0` or `width == 0`.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::layered_app(3, 4);
/// assert_eq!(app.num_services(), 12);
/// ```
pub fn layered_app(layers: usize, width: usize) -> App {
    assert!(layers > 0 && width > 0, "layers and width must be positive");
    let name_of = |l: usize, w: usize| format!("l{l}w{w}");
    let mut spec = ClusterSpec::new(format!("layered-{layers}x{width}"));
    for l in 0..layers {
        for w in 0..width {
            let mut steps_vec = vec![steps::compute(task_time())];
            if l + 1 < layers {
                steps_vec.push(steps::call(&name_of(l + 1, w), "/"));
                if width > 1 {
                    steps_vec.push(steps::call(&name_of(l + 1, (w + 1) % width), "/"));
                }
            }
            spec = spec.service(
                ServiceSpec::web(name_of(l, w))
                    .with_concurrency(16)
                    .endpoint("/", steps_vec),
            );
        }
    }
    let flows = (0..width)
        .map(|w| UserFlow::new(format!("f{w}"), name_of(0, w), "/"))
        .collect();
    let fault_targets = (0..layers)
        .flat_map(|l| (0..width).map(move |w| name_of(l, w)))
        .collect();
    App {
        name: format!("layered-{layers}x{width}"),
        spec,
        flows,
        fault_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_loadgen::{start_load, LoadConfig};
    use icfl_micro::Cluster;
    use icfl_sim::{Sim, SimTime};

    fn smoke(app: &App, seed: u64) -> Cluster {
        let (mut cluster, _) = app.build(seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        start_load(
            &mut sim,
            &mut cluster,
            &LoadConfig::closed_loop(app.flows.clone()),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(20), &mut cluster);
        cluster
    }

    #[test]
    fn chain_reaches_the_tail() {
        let app = chain_app(10);
        let cl = smoke(&app, 1);
        let tail = cl.service_id("s9").unwrap();
        assert!(cl.counters(tail).requests_received > 50);
    }

    #[test]
    fn star_spreads_traffic_over_all_leaves() {
        let app = star_app(8);
        let cl = smoke(&app, 2);
        for i in 0..8 {
            let leaf = cl.service_id(&format!("leaf{i}")).unwrap();
            assert!(cl.counters(leaf).requests_received > 10, "leaf{i} starved");
        }
    }

    #[test]
    fn layered_dag_covers_every_service() {
        let app = layered_app(4, 3);
        let cl = smoke(&app, 3);
        for id in cl.service_ids() {
            assert!(
                cl.counters(id).requests_received > 10,
                "{} starved",
                cl.service_name(id)
            );
        }
        // Fan-out doubles per layer until saturation: the edge count is
        // width × 2 per non-final layer (with wrap-around).
        assert_eq!(app.call_edges().len(), 3 * 2 * 3);
    }

    #[test]
    #[should_panic(expected = "at least one service")]
    fn empty_chain_panics() {
        chain_app(0);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(chain_app(5), chain_app(5));
        assert_eq!(star_app(5), star_app(5));
        assert_eq!(layered_app(2, 2), layered_app(2, 2));
    }
}
