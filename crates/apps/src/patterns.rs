//! The illustrative topologies of the paper's Fig. 1 (metric-dependent
//! causal worlds) and Fig. 2 (load as an intervention-dependent confounder).

use crate::app::App;
use icfl_loadgen::UserFlow;
use icfl_micro::{steps, ClusterSpec, DaemonSpec, ServiceSpec};
use icfl_sim::{DurationDist, SimDuration};

fn task_time() -> DurationDist {
    DurationDist::log_normal(SimDuration::from_millis(2), 0.25)
}

/// Fig. 1 pattern 1 — a stateless call chain `A → B → C`.
///
/// Error logs surface only on the *response* path (A when B fails), while
/// request counts drop only *downstream* (C when B fails): two different
/// causal worlds for the same fault.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::pattern1();
/// assert_eq!(app.num_services(), 3);
/// ```
pub fn pattern1() -> App {
    let spec = ClusterSpec::new("pattern1")
        .service(ServiceSpec::web("A").with_concurrency(8).endpoint(
            "/",
            vec![steps::compute(task_time()), steps::call("B", "/")],
        ))
        .service(ServiceSpec::web("B").with_concurrency(8).endpoint(
            "/",
            vec![steps::compute(task_time()), steps::call("C", "/")],
        ))
        .service(
            ServiceSpec::web("C")
                .with_concurrency(8)
                .endpoint("/", vec![steps::compute(task_time())]),
        );
    App {
        name: "pattern1".into(),
        spec,
        flows: vec![UserFlow::new("chain", "A", "/")],
        fault_targets: vec!["A".into(), "B".into(), "C".into()],
    }
}

/// Pattern 1 with `replicas` instances of B behind its load balancer — the
/// gray-failure benchmark topology.
///
/// A [`DegradedReplica`](icfl_micro::FaultKind::DegradedReplica) fault on
/// one instance of B dilutes to a `1/replicas` shift in B's
/// service-aggregated counters, but stands out undiluted in per-replica
/// telemetry rows — the scenario instance-granularity localization exists
/// for. Fault targets are the same three services as
/// [`pattern1`]; instance campaigns enumerate rows via
/// `Cluster::row_targets`.
///
/// # Panics
///
/// Panics if `replicas == 0`.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::gray_app(3);
/// assert_eq!(app.num_services(), 3);
/// let (cluster, _) = app.build(1).unwrap();
/// assert_eq!(cluster.num_rows(), 5); // A + 3×B + C
/// ```
pub fn gray_app(replicas: usize) -> App {
    assert!(replicas > 0, "replicas must be positive");
    let spec = ClusterSpec::new("gray")
        .service(ServiceSpec::web("A").with_concurrency(8).endpoint(
            "/",
            vec![steps::compute(task_time()), steps::call("B", "/")],
        ))
        .service(
            ServiceSpec::web("B")
                .with_concurrency(8)
                .with_replicas(replicas)
                .endpoint(
                    "/",
                    vec![steps::compute(task_time()), steps::call("C", "/")],
                ),
        )
        .service(
            ServiceSpec::web("C")
                .with_concurrency(8)
                .endpoint("/", vec![steps::compute(task_time())]),
        );
    App {
        name: format!("gray-b{replicas}"),
        spec,
        flows: vec![UserFlow::new("chain", "A", "/")],
        fault_targets: vec!["A".into(), "B".into(), "C".into()],
    }
}

/// Fig. 1 pattern 2 — the stateful decoupling `H → D ⇐ F → G`.
///
/// H increments a counter in the store D; the daemon F drains it and calls
/// G once per item. A fault on D (or H) silently starves G — the omission
/// fault only visible through request counts, never through G's own logs.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::pattern2();
/// assert_eq!(app.num_services(), 4);
/// ```
pub fn pattern2() -> App {
    let spec = ClusterSpec::new("pattern2")
        .service(ServiceSpec::web("H").with_concurrency(8).endpoint(
            "/",
            vec![steps::compute(task_time()), steps::kv_incr("D", "items")],
        ))
        .service(ServiceSpec::kv_store("D"))
        .service(ServiceSpec::web("F"))
        .service(
            ServiceSpec::web("G")
                .with_concurrency(8)
                .endpoint("/", vec![steps::compute(task_time())]),
        )
        .daemon(DaemonSpec::poll_loop("F", "D", "items").calling("G", "/"));
    App {
        name: "pattern2".into(),
        spec,
        flows: vec![UserFlow::new("produce", "H", "/")],
        fault_targets: vec!["H".into(), "D".into(), "G".into()],
    }
}

/// The Fig. 2 topology — two user request types sharing the front door:
///
/// ```text
/// user ► A ── path_bc ──► B ──► C ──► E
///        ├── path_be ──► B ────────► E
///        └── path_i  ──► I
/// ```
///
/// Under closed-loop load, failing C makes `path_bc` users fail fast and
/// re-draw sooner, *raising* the request rate observed at I — the spurious
/// C→I "causal" edge discussed in §III-C.
///
/// # Examples
///
/// ```
/// let app = icfl_apps::fig2_topology();
/// assert_eq!(app.num_services(), 5);
/// ```
pub fn fig2_topology() -> App {
    let spec = ClusterSpec::new("fig2")
        .service(
            ServiceSpec::web("A")
                .with_concurrency(16)
                .endpoint(
                    "path_bc",
                    vec![steps::compute(task_time()), steps::call("B", "path_c")],
                )
                .endpoint(
                    "path_be",
                    vec![steps::compute(task_time()), steps::call("B", "path_e")],
                )
                .endpoint(
                    "path_i",
                    vec![steps::compute(task_time()), steps::call("I", "/")],
                ),
        )
        .service(
            ServiceSpec::web("B")
                .with_concurrency(8)
                .endpoint(
                    "path_c",
                    vec![steps::compute(task_time()), steps::call("C", "/")],
                )
                .endpoint(
                    "path_e",
                    vec![steps::compute(task_time()), steps::call("E", "/")],
                ),
        )
        .service(ServiceSpec::web("C").with_concurrency(8).endpoint(
            "/",
            // C is the expensive hop: failing it fast frees A's users
            // ~40 ms per iteration, which is what shifts load onto I.
            vec![
                steps::compute(DurationDist::log_normal(SimDuration::from_millis(40), 0.2)),
                steps::call("E", "/"),
            ],
        ))
        .service(
            ServiceSpec::web("E")
                .with_concurrency(8)
                .endpoint("/", vec![steps::compute(task_time())]),
        )
        .service(ServiceSpec::web("I").with_concurrency(8).endpoint(
            "/",
            // I is also slow so the symmetric confounder (fault on I
            // raising C's rate) is observable.
            vec![steps::compute(DurationDist::log_normal(
                SimDuration::from_millis(30),
                0.2,
            ))],
        ));
    App {
        name: "fig2".into(),
        spec,
        flows: vec![
            UserFlow::new("path_bc", "A", "path_bc"),
            UserFlow::new("path_be", "A", "path_be"),
            UserFlow::new("path_i", "A", "path_i"),
        ],
        fault_targets: vec!["A".into(), "B".into(), "C".into(), "E".into(), "I".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_loadgen::{start_load, LoadConfig};
    use icfl_micro::{Cluster, FaultKind};
    use icfl_sim::{Sim, SimTime};

    fn drive(app: &App, seed: u64, fault: Option<&str>, secs: u64) -> Cluster {
        let (mut cluster, _) = app.build(seed).unwrap();
        if let Some(name) = fault {
            let id = cluster.service_id(name).unwrap();
            cluster.set_fault(id, Some(FaultKind::ServiceUnavailable));
        }
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        start_load(
            &mut sim,
            &mut cluster,
            &LoadConfig::closed_loop(app.flows.clone()),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(secs), &mut cluster);
        cluster
    }

    #[test]
    fn pattern1_fault_on_b_splits_metric_worlds() {
        let app = pattern1();
        let cl = drive(&app, 1, Some("B"), 60);
        let get = |n: &str| cl.counters(cl.service_id(n).unwrap());
        // Error-log world: only A shows errors.
        assert!(get("A").logs_error > 50);
        assert_eq!(get("C").logs_error, 0);
        // Request-count world: only C loses traffic (to zero).
        assert_eq!(get("C").requests_received, 0);
        assert!(get("A").requests_received > 100);
    }

    #[test]
    fn pattern2_fault_on_d_starves_g() {
        let app = pattern2();
        let normal = drive(&app, 2, None, 60);
        let faulty = drive(&app, 2, Some("D"), 60);
        let g_normal = normal
            .counters(normal.service_id("G").unwrap())
            .requests_received;
        let g_faulty = faulty
            .counters(faulty.service_id("G").unwrap())
            .requests_received;
        assert!(g_normal > 50);
        assert_eq!(g_faulty, 0);
    }

    #[test]
    fn fig2_fault_on_c_raises_rate_at_i() {
        let app = fig2_topology();
        let normal = drive(&app, 3, None, 60);
        let faulty = drive(&app, 3, Some("C"), 60);
        let i_rate =
            |cl: &Cluster| cl.counters(cl.service_id("I").unwrap()).requests_received as f64 / 60.0;
        let n = i_rate(&normal);
        let f = i_rate(&faulty);
        assert!(f > n * 1.02, "confounder absent: normal={n} faulty={f}");
    }

    #[test]
    fn fig2_fault_on_i_raises_rate_at_c() {
        // The symmetric spurious edge: the confounder is intervention-
        // dependent (Fig. 2's caption).
        let app = fig2_topology();
        let normal = drive(&app, 4, None, 60);
        let faulty = drive(&app, 4, Some("I"), 60);
        let c_rate =
            |cl: &Cluster| cl.counters(cl.service_id("C").unwrap()).requests_received as f64 / 60.0;
        let n = c_rate(&normal);
        let f = c_rate(&faulty);
        assert!(f > n * 1.02, "confounder absent: normal={n} faulty={f}");
    }
}
