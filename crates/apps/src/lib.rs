//! # icfl-apps — benchmark applications for the ICFL reproduction
//!
//! Declarative models of every application evaluated or illustrated in the
//! paper, built on `icfl-micro`'s spec DSL:
//!
//! * [`causalbench`] — the paper's 9-service micro-benchmark (§V-B, Fig. 4);
//! * [`robot_shop`] — the 12-service open-source e-commerce storefront;
//! * [`pattern1`] / [`pattern2`] — Fig. 1's two communication patterns;
//! * [`fig2_topology`] — the Fig. 2 queueing-confounder topology;
//! * [`chain_app`] / [`star_app`] / [`layered_app`] — parameterized
//!   synthetic topologies for scalability studies;
//! * [`fanout_app`] / [`layered_mesh_app`] / [`replicated_app`] —
//!   fleet-scale topologies (100–1000 services) for sharded campaigns.
//!
//! Each returns an [`App`] bundling the topology, the Locust-style
//! userflows, and the services targeted by fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod causalbench;
mod fleet;
mod patterns;
mod robotshop;
mod synthetic;

pub use app::App;
pub use causalbench::causalbench;
pub use fleet::{fanout_app, layered_mesh_app, replicated_app};
pub use patterns::{fig2_topology, gray_app, pattern1, pattern2};
pub use robotshop::robot_shop;
pub use synthetic::{chain_app, layered_app, star_app};
