//! Property-based tests for the campaign scheduler: timeline geometry is
//! exact for any configuration, and armed campaigns always clean up.

use icfl_faults::{Campaign, CampaignConfig, InterventionTrace, PhaseLabel};
use icfl_micro::{Cluster, ClusterSpec, ServiceId, ServiceSpec};
use icfl_sim::{Sim, SimDuration, SimTime};
use proptest::prelude::*;

fn config(warmup: u64, baseline: u64, fault: u64, cooldown: u64) -> CampaignConfig {
    CampaignConfig {
        warmup: SimDuration::from_secs(warmup),
        baseline: SimDuration::from_secs(baseline),
        fault_duration: SimDuration::from_secs(fault),
        cooldown: SimDuration::from_secs(cooldown),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plans are contiguous, correctly labeled and total-duration exact for
    /// any configuration and target count.
    #[test]
    fn plan_geometry_is_exact(
        warmup in 0u64..100,
        baseline in 1u64..1_000,
        fault in 1u64..1_000,
        cooldown in 0u64..100,
        n_targets in 0usize..12,
        start_s in 0u64..10_000,
    ) {
        let targets: Vec<ServiceId> = (0..n_targets).map(ServiceId::from_index).collect();
        let campaign = Campaign::service_unavailable_sweep(
            &targets,
            config(warmup, baseline, fault, cooldown),
        );
        let start = SimTime::from_secs(start_s);
        let plan = campaign.plan(start);
        prop_assert_eq!(plan.len(), 2 + 2 * n_targets);
        prop_assert_eq!(plan[0].label, PhaseLabel::Warmup);
        prop_assert_eq!(plan[1].label, PhaseLabel::Baseline);
        prop_assert_eq!(plan[0].start, start);
        for pair in plan.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
        prop_assert_eq!(
            plan.last().unwrap().end,
            start + campaign.total_duration()
        );
        // Fault phases cover targets in order with the configured length.
        let fault_phases: Vec<_> = plan
            .iter()
            .filter(|w| matches!(w.label, PhaseLabel::Fault(_)))
            .collect();
        prop_assert_eq!(fault_phases.len(), n_targets);
        for (w, &t) in fault_phases.iter().zip(&targets) {
            prop_assert_eq!(w.label, PhaseLabel::Fault(t));
            prop_assert_eq!(w.duration(), SimDuration::from_secs(fault));
        }
    }

    /// Arming and running any campaign leaves no fault active and records
    /// one trace entry per fault phase with exact bounds.
    #[test]
    fn armed_campaign_traces_and_cleans_up(
        seed in any::<u64>(),
        n_targets in 1usize..6,
        fault in 1u64..60,
        cooldown in 0u64..20,
    ) {
        let mut spec = ClusterSpec::new("prop");
        for i in 0..n_targets {
            spec = spec.service(ServiceSpec::web(format!("s{i}")));
        }
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let targets = cluster.service_ids();
        let campaign =
            Campaign::service_unavailable_sweep(&targets, config(1, 5, fault, cooldown));
        let trace = InterventionTrace::new();
        let plan = campaign.arm(&mut sim, SimTime::ZERO, &trace);
        sim.run_until(plan.last().unwrap().end, &mut cluster);

        let entries = trace.entries();
        prop_assert_eq!(entries.len(), n_targets);
        let fault_windows: Vec<_> = plan
            .iter()
            .filter(|w| matches!(w.label, PhaseLabel::Fault(_)))
            .collect();
        for (e, w) in entries.iter().zip(fault_windows) {
            prop_assert_eq!(e.start, w.start);
            prop_assert_eq!(e.end, w.end);
            prop_assert_eq!(&e.fault, "service-unavailable");
        }
        for id in cluster.service_ids() {
            prop_assert!(cluster.fault(id).is_none(), "fault leaked on {id}");
        }
    }
}
