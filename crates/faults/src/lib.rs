//! # icfl-faults — the fault injection platform
//!
//! Stands in for the paper's fault-injection platform \[34\]: it owns *when*
//! faults are active, while `icfl-micro` owns *what* an active fault does.
//!
//! * [`FaultInjector`] — schedule point injections/clears on a simulation;
//! * [`Campaign`] — the Algorithm-1 experiment plan: a baseline phase
//!   followed by one fault phase per target service with cooldowns, exactly
//!   the protocol of §V ("inject one fault at a time …, run the userflows
//!   for ten minutes, remove the fault before injecting the next");
//! * [`PhaseWindow`] / [`PhaseLabel`] — the time ranges handed to the
//!   telemetry layer to slice `D_0` and `D_s` datasets;
//! * [`InterventionTrace`] — a runtime audit log of what was actually
//!   injected when, persistable as JSON;
//! * [`CascadeRule`] / [`arm_cascade`] — overload-triggered secondary
//!   faults (queue overflow at one service knocks over another).
//!
//! Injections address a [`TargetId`](icfl_micro::TargetId): a whole service
//! or one replica of it (gray failures).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod cascade;
mod injector;
mod trace;

pub use campaign::{Campaign, CampaignConfig, PhaseLabel, PhaseWindow};
pub use cascade::{arm_cascade, CascadeRule};
pub use injector::FaultInjector;
pub use trace::{InterventionTrace, TraceEntry};
