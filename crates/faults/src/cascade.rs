//! Overload-triggered cascade faults.
//!
//! A [`CascadeRule`] watches one service's queue-overflow counter and, when
//! the cumulative drop count since arming crosses a threshold, injects a
//! secondary fault into another target — the "retry storm knocks over the
//! neighbour" failure mode where the *observed* symptom starts at a service
//! that is only a victim. The watcher is a deterministic poll loop driven by
//! simulation time (no RNG draws), so armed cascades never perturb the
//! event-stream identity of runs where they do not fire.

use crate::trace::InterventionTrace;
use icfl_micro::{Cluster, FaultKind, ServiceId, TargetId};
use icfl_sim::{Sim, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// When to trigger a secondary fault, and what to inject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeRule {
    /// The service whose queue overflow is watched.
    pub watch: ServiceId,
    /// Cumulative `queue_dropped` growth (since arming) that fires the
    /// cascade.
    pub drop_threshold: u64,
    /// Where the secondary fault lands.
    pub target: TargetId,
    /// The secondary fault.
    pub fault: FaultKind,
    /// How long the secondary fault stays active once triggered.
    pub duration: SimDuration,
    /// How often the watcher samples the overflow counter.
    pub poll_interval: SimDuration,
}

impl CascadeRule {
    /// A rule with a 1 s poll interval.
    pub fn new(
        watch: ServiceId,
        drop_threshold: u64,
        target: TargetId,
        fault: FaultKind,
        duration: SimDuration,
    ) -> Self {
        CascadeRule {
            watch,
            drop_threshold,
            target,
            fault,
            duration,
            poll_interval: SimDuration::from_secs(1),
        }
    }
}

/// Arms `rule` on the simulation: the watcher polls until the threshold
/// fires (injecting the secondary fault once, recorded in `trace` with its
/// trigger) or `until` passes without it firing.
///
/// The trigger is one-shot: after firing, polling stops and the secondary
/// fault is removed `rule.duration` later by the ordinary injector path.
///
/// # Panics
///
/// Panics if `rule.poll_interval` is zero.
pub fn arm_cascade(
    sim: &mut Sim<Cluster>,
    rule: CascadeRule,
    until: SimTime,
    trace: &InterventionTrace,
) {
    assert!(
        rule.poll_interval > SimDuration::ZERO,
        "cascade poll interval must be positive"
    );
    let trace = trace.clone();
    sim.schedule_now(move |sim, cl: &mut Cluster| {
        let baseline = cl.counters(rule.watch).queue_dropped;
        poll(sim, cl, rule, baseline, until, trace);
    });
}

fn poll(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    rule: CascadeRule,
    baseline: u64,
    until: SimTime,
    trace: InterventionTrace,
) {
    let dropped = cl
        .counters(rule.watch)
        .queue_dropped
        .saturating_sub(baseline);
    if dropped >= rule.drop_threshold {
        let now = sim.now();
        let end = now + rule.duration;
        if matches!(rule.fault, FaultKind::DegradedReplica { .. }) {
            icfl_obs::counter_add("icfl_faults_gray_active", &[], 1);
        }
        icfl_obs::counter_add("icfl_faults_cascades_triggered_total", &[], 1);
        cl.set_fault_target(rule.target, Some(rule.fault.clone()));
        trace.record_cascade(rule.target, &rule.fault, rule.watch, now, end);
        let target = rule.target;
        sim.schedule_at(end, move |_, cl: &mut Cluster| {
            cl.set_fault_target(target, None);
        });
        return; // one-shot: stop polling
    }
    let next = sim.now() + rule.poll_interval;
    if next > until {
        return;
    }
    sim.schedule_at(next, move |sim, cl: &mut Cluster| {
        poll(sim, cl, rule, baseline, until, trace);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{steps, ClusterSpec, ServiceSpec, Status};

    /// A tiny cluster where `a`'s queue can be overflowed on demand.
    fn cluster(seed: u64) -> (Sim<Cluster>, Cluster) {
        let spec = ClusterSpec::new("t")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(1)
                    .with_queue_capacity(2)
                    .endpoint("/", vec![steps::compute_ms(50)]),
            )
            .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(1)]));
        let mut cl = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cl);
        (sim, cl)
    }

    /// Floods `a` at `t` with enough simultaneous requests to overflow its
    /// queue.
    fn flood(sim: &mut Sim<Cluster>, at: SimTime, n: usize) {
        for _ in 0..n {
            sim.schedule_at(at, |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, _| {});
            });
        }
    }

    #[test]
    fn cascade_fires_on_overflow_and_expires() {
        let (mut sim, mut cl) = cluster(1);
        let a = cl.service_id("a").unwrap();
        let b = cl.service_id("b").unwrap();
        let trace = InterventionTrace::new();
        let rule = CascadeRule::new(
            a,
            5,
            TargetId::Service(b),
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(5),
        );
        arm_cascade(&mut sim, rule, SimTime::from_secs(60), &trace);
        flood(&mut sim, SimTime::from_secs(10), 50);
        sim.run_until(SimTime::from_secs(12), &mut cl);
        assert!(cl.fault(b).is_some(), "cascade should have fired");
        let entries = trace.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].cascaded_from, Some(a));
        assert_eq!(entries[0].service, b);
        sim.run_until(SimTime::from_secs(20), &mut cl);
        assert!(cl.fault(b).is_none(), "cascade fault should expire");
    }

    #[test]
    fn cascade_without_overflow_never_fires() {
        let (mut sim, mut cl) = cluster(2);
        let a = cl.service_id("a").unwrap();
        let b = cl.service_id("b").unwrap();
        let trace = InterventionTrace::new();
        let rule = CascadeRule::new(
            a,
            5,
            TargetId::Service(b),
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(5),
        );
        arm_cascade(&mut sim, rule, SimTime::from_secs(30), &trace);
        // Light load: one request at a time, no overflow.
        for i in 0..20 {
            sim.schedule_at(SimTime::from_secs(i), |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, resp| {
                    assert_eq!(resp.status, Status::Ok);
                });
            });
        }
        sim.run_until(SimTime::from_secs(40), &mut cl);
        assert!(trace.is_empty());
        assert!(cl.fault(b).is_none());
    }

    #[test]
    fn cascade_can_target_one_replica() {
        let spec = ClusterSpec::new("t")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(1)
                    .with_queue_capacity(2)
                    .endpoint("/", vec![steps::compute_ms(50)]),
            )
            .service(
                ServiceSpec::web("b")
                    .with_replicas(3)
                    .endpoint("/", vec![steps::compute_ms(1)]),
            );
        let mut cl = Cluster::build(&spec, 3).unwrap();
        let mut sim = Sim::new(3);
        Cluster::start(&mut sim, &mut cl);
        let a = cl.service_id("a").unwrap();
        let b = cl.service_id("b").unwrap();
        let trace = InterventionTrace::new();
        let rule = CascadeRule::new(
            a,
            5,
            TargetId::Instance(b, 2),
            FaultKind::DegradedReplica {
                latency_factor: 10.0,
                error_prob: 0.5,
            },
            SimDuration::from_secs(5),
        );
        arm_cascade(&mut sim, rule, SimTime::from_secs(60), &trace);
        flood(&mut sim, SimTime::from_secs(10), 50);
        sim.run_until(SimTime::from_secs(12), &mut cl);
        assert_eq!(cl.fault_scope(b), Some(2));
        let entries = trace.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].replica, Some(2));
        assert_eq!(entries[0].fault, "degraded-replica");
    }
}
