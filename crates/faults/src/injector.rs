//! Point-in-time fault injection and removal.

use crate::trace::InterventionTrace;
use icfl_micro::{Cluster, FaultKind, ServiceId, TargetId};
use icfl_sim::{Sim, SimTime};

/// Schedules fault injections and removals on a simulation.
///
/// The injector is stateless; its value is the pairing of scheduling with
/// [`InterventionTrace`] audit records, mirroring how the paper's platform
/// logs every intervention alongside the collected telemetry.
///
/// # Examples
///
/// ```
/// use icfl_faults::{FaultInjector, InterventionTrace};
/// use icfl_micro::{Cluster, ClusterSpec, FaultKind, ServiceSpec, steps};
/// use icfl_sim::{Sim, SimTime};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 1)?;
/// let mut sim = Sim::new(1);
/// Cluster::start(&mut sim, &mut cluster);
///
/// let trace = InterventionTrace::new();
/// let a = cluster.service_id("a").unwrap();
/// FaultInjector::inject_between(
///     &mut sim,
///     a,
///     FaultKind::ServiceUnavailable,
///     SimTime::from_secs(10),
///     SimTime::from_secs(20),
///     &trace,
/// );
/// sim.run_until(SimTime::from_secs(30), &mut cluster);
/// assert!(cluster.fault(a).is_none());
/// assert_eq!(trace.entries().len(), 1);
/// # Ok::<(), icfl_micro::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultInjector;

impl FaultInjector {
    /// Schedules `fault` to be active on `service` during `[from, to)`,
    /// recording the intervention in `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to` or `from` is in the simulation's past when the
    /// event fires (the scheduler enforces forward-only time).
    pub fn inject_between(
        sim: &mut Sim<Cluster>,
        service: ServiceId,
        fault: FaultKind,
        from: SimTime,
        to: SimTime,
        trace: &InterventionTrace,
    ) {
        FaultInjector::inject_target_between(
            sim,
            TargetId::Service(service),
            fault,
            from,
            to,
            trace,
        );
    }

    /// Schedules `fault` to be active on `target` during `[from, to)` —
    /// service-wide for [`TargetId::Service`], scoped to one replica for
    /// [`TargetId::Instance`] — recording the intervention (with its
    /// replica scope and full parameters) in `trace`.
    ///
    /// Gray-failure injections ([`FaultKind::DegradedReplica`]) bump the
    /// `icfl_faults_gray_active` journal counter when they activate.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`, if `from` is in the simulation's past when
    /// the event fires, or (at activation time) if the target replica is
    /// out of range for its service.
    pub fn inject_target_between(
        sim: &mut Sim<Cluster>,
        target: TargetId,
        fault: FaultKind,
        from: SimTime,
        to: SimTime,
        trace: &InterventionTrace,
    ) {
        assert!(from < to, "fault window must be non-empty: {from} >= {to}");
        let trace_on = trace.clone();
        let fault_on = fault.clone();
        sim.schedule_at(from, move |sim, cl: &mut Cluster| {
            if matches!(fault_on, FaultKind::DegradedReplica { .. }) {
                icfl_obs::counter_add("icfl_faults_gray_active", &[], 1);
            }
            cl.set_fault_target(target, Some(fault_on.clone()));
            trace_on.record_target(target, &fault_on, sim.now(), to);
        });
        sim.schedule_at(to, move |_, cl: &mut Cluster| {
            cl.set_fault_target(target, None);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{ClusterSpec, ServiceSpec};
    use icfl_sim::SimDuration;

    fn cluster() -> (Sim<Cluster>, Cluster) {
        let spec = ClusterSpec::new("t").service(ServiceSpec::web("a"));
        let mut cl = Cluster::build(&spec, 1).unwrap();
        let mut sim = Sim::new(1);
        Cluster::start(&mut sim, &mut cl);
        (sim, cl)
    }

    #[test]
    fn fault_active_exactly_within_window() {
        let (mut sim, mut cl) = cluster();
        let a = cl.service_id("a").unwrap();
        let trace = InterventionTrace::new();
        FaultInjector::inject_between(
            &mut sim,
            a,
            FaultKind::ServiceUnavailable,
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            &trace,
        );
        sim.run_until(SimTime::from_secs(4), &mut cl);
        assert!(cl.fault(a).is_none());
        sim.run_until(SimTime::from_secs(7), &mut cl);
        assert!(cl.fault(a).is_some());
        sim.run_until(SimTime::from_secs(11), &mut cl);
        assert!(cl.fault(a).is_none());
        let entries = trace.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].service, a);
        assert_eq!(entries[0].start, SimTime::from_secs(5));
        assert_eq!(entries[0].end, SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        let (mut sim, _cl) = cluster();
        FaultInjector::inject_between(
            &mut sim,
            ServiceId::from_index(0),
            FaultKind::ServiceUnavailable,
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            &InterventionTrace::new(),
        );
    }

    #[test]
    fn back_to_back_windows_do_not_leak() {
        let (mut sim, mut cl) = cluster();
        let a = cl.service_id("a").unwrap();
        let trace = InterventionTrace::new();
        FaultInjector::inject_between(
            &mut sim,
            a,
            FaultKind::ErrorRate(0.5),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            &trace,
        );
        FaultInjector::inject_between(
            &mut sim,
            a,
            FaultKind::ServiceUnavailable,
            SimTime::from_secs(2),
            SimTime::from_secs(3),
            &trace,
        );
        sim.run_until(SimTime::from_secs(2) + SimDuration::from_millis(1), &mut cl);
        assert_eq!(cl.fault(a), Some(&FaultKind::ServiceUnavailable));
        sim.run_until(SimTime::from_secs(4), &mut cl);
        assert!(cl.fault(a).is_none());
        assert_eq!(trace.entries().len(), 2);
    }
}
