//! Runtime audit log of interventions.

use icfl_micro::{FaultKind, ReplicaIdx, ServiceId, TargetId};
use icfl_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One recorded intervention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The targeted service.
    pub service: ServiceId,
    /// Stable label of the injected fault (e.g. `"service-unavailable"`).
    pub fault: String,
    /// When the fault became active.
    pub start: SimTime,
    /// When the fault was (or will be) removed.
    pub end: SimTime,
    /// The targeted replica, when the fault was scoped to one instance of
    /// the service (absent = service-wide).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub replica: Option<ReplicaIdx>,
    /// The full fault description, so a saved trace round-trips parameters
    /// (rates, factors, distributions) and not just the label.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kind: Option<FaultKind>,
    /// For cascade-triggered injections: the service whose overload
    /// triggered this secondary fault.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cascaded_from: Option<ServiceId>,
}

impl TraceEntry {
    /// The intervention target as a [`TargetId`].
    pub fn target(&self) -> TargetId {
        match self.replica {
            Some(r) => TargetId::Instance(self.service, r),
            None => TargetId::Service(self.service),
        }
    }
}

/// A shared, append-only log of interventions actually performed.
///
/// Cloning shares the underlying log (the injector and the experiment
/// harness hold the same trace). The log is `Send + Sync` so traces can
/// cross the parallel campaign executor's worker threads; each simulation
/// remains single-threaded, so the lock is uncontended in practice.
#[derive(Debug, Clone, Default)]
pub struct InterventionTrace {
    entries: Arc<Mutex<Vec<TraceEntry>>>,
}

impl InterventionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an intervention record for a service-wide fault.
    pub fn record(&self, service: ServiceId, fault: &FaultKind, start: SimTime, end: SimTime) {
        self.record_target(TargetId::Service(service), fault, start, end);
    }

    /// Appends an intervention record for a [`TargetId`] (service-wide or
    /// one replica), keeping the full fault parameters.
    pub fn record_target(&self, target: TargetId, fault: &FaultKind, start: SimTime, end: SimTime) {
        self.push(TraceEntry {
            service: target.service(),
            fault: fault.label().to_owned(),
            start,
            end,
            replica: target.replica(),
            kind: Some(fault.clone()),
            cascaded_from: None,
        });
    }

    /// Appends a cascade-triggered intervention record: `fault` was
    /// injected into `target` because `trigger` overloaded.
    pub fn record_cascade(
        &self,
        target: TargetId,
        fault: &FaultKind,
        trigger: ServiceId,
        start: SimTime,
        end: SimTime,
    ) {
        self.push(TraceEntry {
            service: target.service(),
            fault: fault.label().to_owned(),
            start,
            end,
            replica: target.replica(),
            kind: Some(fault.clone()),
            cascaded_from: Some(trigger),
        });
    }

    /// Appends an already-built entry — used to merge per-run traces into
    /// one campaign-ordered log.
    pub fn push(&self, entry: TraceEntry) {
        self.entries.lock().expect("trace lock").push(entry);
    }

    /// A snapshot of all recorded interventions, in record order.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.lock().expect("trace lock").clone()
    }

    /// Number of interventions recorded.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().expect("trace lock").is_empty()
    }

    /// Serializes the current entries as a JSON array.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (entries are plain data; it cannot).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.entries()).expect("trace entries serialize")
    }

    /// Rebuilds a trace from [`InterventionTrace::to_json`] output. Traces
    /// saved before replica-scoped faults existed load with `replica`,
    /// `kind` and `cascaded_from` absent.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error for malformed input.
    pub fn from_json(json: &str) -> Result<InterventionTrace, serde_json::Error> {
        let entries: Vec<TraceEntry> = serde_json::from_str(json)?;
        Ok(InterventionTrace {
            entries: Arc::new(Mutex::new(entries)),
        })
    }

    /// Writes [`InterventionTrace::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a trace previously written by [`InterventionTrace::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed JSON surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<InterventionTrace> {
        let json = std::fs::read_to_string(path)?;
        InterventionTrace::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_log() {
        let t1 = InterventionTrace::new();
        let t2 = t1.clone();
        assert!(t1.is_empty());
        t2.record(
            ServiceId::from_index(1),
            &FaultKind::ServiceUnavailable,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(t1.len(), 1);
        assert_eq!(t1.entries()[0].fault, "service-unavailable");
    }

    #[test]
    fn save_load_roundtrips_every_fault_kind() {
        use icfl_sim::{DurationDist, SimDuration};
        // Every FaultKind variant, service-wide and replica-scoped, plus a
        // cascade record: the full shape of a modern trace.
        let kinds = [
            FaultKind::ServiceUnavailable,
            FaultKind::ExtraLatency(DurationDist::constant(SimDuration::from_millis(25))),
            FaultKind::ErrorRate(0.25),
            FaultKind::PacketLoss(0.1),
            FaultKind::CpuStress(3.5),
            FaultKind::DegradedReplica {
                latency_factor: 4.0,
                error_prob: 0.125,
            },
        ];
        let trace = InterventionTrace::new();
        for (i, kind) in kinds.iter().enumerate() {
            let start = SimTime::from_secs(10 * i as u64);
            let end = start + SimDuration::from_secs(5);
            trace.record(ServiceId::from_index(i), kind, start, end);
            trace.record_target(
                TargetId::Instance(ServiceId::from_index(i), 2),
                kind,
                start,
                end,
            );
        }
        trace.record_cascade(
            TargetId::Instance(ServiceId::from_index(1), 0),
            &kinds[5],
            ServiceId::from_index(0),
            SimTime::from_secs(100),
            SimTime::from_secs(110),
        );

        let path =
            std::env::temp_dir().join(format!("icfl-trace-roundtrip-{}.json", std::process::id()));
        trace.save(&path).unwrap();
        let loaded = InterventionTrace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let before = trace.entries();
        let after = loaded.entries();
        assert_eq!(before, after);
        assert_eq!(after.len(), kinds.len() * 2 + 1);
        // Full kinds (with parameters) survived, not just labels.
        for (entry, kind) in after.chunks(2).zip(kinds.iter()) {
            assert_eq!(entry[0].kind.as_ref(), Some(kind));
            assert_eq!(entry[0].replica, None);
            assert_eq!(entry[0].target(), TargetId::Service(entry[0].service));
            assert_eq!(entry[1].replica, Some(2));
            assert_eq!(entry[1].target(), TargetId::Instance(entry[1].service, 2));
        }
        let cascade = after.last().unwrap();
        assert_eq!(cascade.cascaded_from, Some(ServiceId::from_index(0)));
    }

    #[test]
    fn legacy_json_without_new_fields_loads() {
        // A pre-replica trace had only the original four fields; build one
        // by stripping the new optional fields from modern output and check
        // they default on load.
        let modern = InterventionTrace::new();
        modern.record(
            ServiceId::from_index(0),
            &FaultKind::ServiceUnavailable,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let mut v: Vec<serde::Value> = serde_json::from_str(&modern.to_json()).unwrap();
        let serde::Value::Obj(fields) = &mut v[0] else {
            panic!("trace entry should serialize as an object");
        };
        fields.retain(|(k, _)| !matches!(k.as_str(), "kind" | "replica" | "cascaded_from"));
        let legacy = serde_json::to_string(&v).unwrap();
        let t = InterventionTrace::from_json(&legacy).unwrap();
        let es = t.entries();
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].fault, "service-unavailable");
        assert_eq!(es[0].kind, None);
        assert_eq!(es[0].replica, None);
        assert_eq!(es[0].cascaded_from, None);
        assert_eq!(es[0].target(), TargetId::Service(ServiceId::from_index(0)));
    }

    #[test]
    fn entries_preserve_order() {
        let t = InterventionTrace::new();
        for i in 0..3 {
            t.record(
                ServiceId::from_index(i),
                &FaultKind::ErrorRate(0.1),
                SimTime::from_secs(i as u64),
                SimTime::from_secs(i as u64 + 1),
            );
        }
        let es = t.entries();
        assert_eq!(es.len(), 3);
        assert!(es.windows(2).all(|w| w[0].start < w[1].start));
    }
}
