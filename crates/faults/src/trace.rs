//! Runtime audit log of interventions.

use icfl_micro::{FaultKind, ServiceId};
use icfl_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One recorded intervention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The targeted service.
    pub service: ServiceId,
    /// Stable label of the injected fault (e.g. `"service-unavailable"`).
    pub fault: String,
    /// When the fault became active.
    pub start: SimTime,
    /// When the fault was (or will be) removed.
    pub end: SimTime,
}

/// A shared, append-only log of interventions actually performed.
///
/// Cloning shares the underlying log (the injector and the experiment
/// harness hold the same trace). The log is `Send + Sync` so traces can
/// cross the parallel campaign executor's worker threads; each simulation
/// remains single-threaded, so the lock is uncontended in practice.
#[derive(Debug, Clone, Default)]
pub struct InterventionTrace {
    entries: Arc<Mutex<Vec<TraceEntry>>>,
}

impl InterventionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an intervention record.
    pub fn record(&self, service: ServiceId, fault: &FaultKind, start: SimTime, end: SimTime) {
        self.push(TraceEntry {
            service,
            fault: fault.label().to_owned(),
            start,
            end,
        });
    }

    /// Appends an already-built entry — used to merge per-run traces into
    /// one campaign-ordered log.
    pub fn push(&self, entry: TraceEntry) {
        self.entries.lock().expect("trace lock").push(entry);
    }

    /// A snapshot of all recorded interventions, in record order.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.lock().expect("trace lock").clone()
    }

    /// Number of interventions recorded.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().expect("trace lock").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_log() {
        let t1 = InterventionTrace::new();
        let t2 = t1.clone();
        assert!(t1.is_empty());
        t2.record(
            ServiceId::from_index(1),
            &FaultKind::ServiceUnavailable,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(t1.len(), 1);
        assert_eq!(t1.entries()[0].fault, "service-unavailable");
    }

    #[test]
    fn entries_preserve_order() {
        let t = InterventionTrace::new();
        for i in 0..3 {
            t.record(
                ServiceId::from_index(i),
                &FaultKind::ErrorRate(0.1),
                SimTime::from_secs(i as u64),
                SimTime::from_secs(i as u64 + 1),
            );
        }
        let es = t.entries();
        assert_eq!(es.len(), 3);
        assert!(es.windows(2).all(|w| w[0].start < w[1].start));
    }
}
