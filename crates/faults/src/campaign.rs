//! The Algorithm-1 fault campaign: one baseline phase, then one fault phase
//! per target service, separated by cooldowns.

use crate::injector::FaultInjector;
use crate::trace::InterventionTrace;
use icfl_micro::{Cluster, FaultKind, ServiceId, TargetId};
use icfl_sim::{Sim, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Durations shaping a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Settling time before the baseline phase starts (queues fill, daemons
    /// reach steady state). Excluded from all datasets.
    pub warmup: SimDuration,
    /// Length of the no-fault observation phase (`T_0`; paper: 10 min).
    pub baseline: SimDuration,
    /// Length of each fault phase (`T_s`; paper: 10 min).
    pub fault_duration: SimDuration,
    /// Recovery gap between phases, excluded from datasets.
    pub cooldown: SimDuration,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            warmup: SimDuration::from_secs(30),
            baseline: SimDuration::from_secs(600),
            fault_duration: SimDuration::from_secs(600),
            cooldown: SimDuration::from_secs(30),
        }
    }
}

impl CampaignConfig {
    /// A scaled-down config for fast tests (`seconds`-long phases).
    pub fn quick(phase_secs: u64) -> Self {
        CampaignConfig {
            warmup: SimDuration::from_secs(10),
            baseline: SimDuration::from_secs(phase_secs),
            fault_duration: SimDuration::from_secs(phase_secs),
            cooldown: SimDuration::from_secs(10),
        }
    }
}

/// What a phase window contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseLabel {
    /// Settling time; not used for learning.
    Warmup,
    /// The no-fault phase `T_0`.
    Baseline,
    /// A fault phase `T_s` with the fault active on the given service.
    Fault(ServiceId),
    /// Recovery time; not used for learning.
    Cooldown,
}

/// A labeled `[start, end]` time range of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseWindow {
    /// What was active.
    pub label: PhaseLabel,
    /// Phase start (inclusive).
    pub start: SimTime,
    /// Phase end.
    pub end: SimTime,
}

impl PhaseWindow {
    /// Phase length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A full Algorithm-1 experiment plan over a set of target services.
///
/// # Examples
///
/// ```
/// use icfl_faults::{Campaign, CampaignConfig, PhaseLabel};
/// use icfl_micro::{FaultKind, ServiceId};
///
/// let targets: Vec<ServiceId> = (0..3).map(ServiceId::from_index).collect();
/// let campaign = Campaign::service_unavailable_sweep(&targets, CampaignConfig::quick(60));
/// let plan = campaign.plan(icfl_sim::SimTime::ZERO);
/// // warmup + baseline + 3 × (cooldown + fault)
/// assert_eq!(plan.len(), 8);
/// assert_eq!(plan[1].label, PhaseLabel::Baseline);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    config: CampaignConfig,
    faults: Vec<(ServiceId, FaultKind)>,
}

impl Campaign {
    /// A campaign injecting the given faults, one per phase, in order.
    pub fn new(faults: Vec<(ServiceId, FaultKind)>, config: CampaignConfig) -> Self {
        Campaign { config, faults }
    }

    /// The paper's protocol: `http-service-unavailable` into every target
    /// service, one at a time.
    pub fn service_unavailable_sweep(targets: &[ServiceId], config: CampaignConfig) -> Self {
        Campaign::new(
            targets
                .iter()
                .map(|&s| (s, FaultKind::ServiceUnavailable))
                .collect(),
            config,
        )
    }

    /// The configured faults, in injection order.
    pub fn faults(&self) -> &[(ServiceId, FaultKind)] {
        &self.faults
    }

    /// The campaign's timing configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Pure computation of the phase timeline starting at `start`.
    pub fn plan(&self, start: SimTime) -> Vec<PhaseWindow> {
        let c = &self.config;
        let mut out = Vec::with_capacity(2 + 2 * self.faults.len());
        let mut t = start;
        let mut push = |label: PhaseLabel, t: &mut SimTime, d: SimDuration| {
            let w = PhaseWindow {
                label,
                start: *t,
                end: *t + d,
            };
            *t = w.end;
            out.push(w);
        };
        push(PhaseLabel::Warmup, &mut t, c.warmup);
        push(PhaseLabel::Baseline, &mut t, c.baseline);
        for &(svc, _) in &self.faults {
            push(PhaseLabel::Cooldown, &mut t, c.cooldown);
            push(PhaseLabel::Fault(svc), &mut t, c.fault_duration);
        }
        out
    }

    /// Total campaign length.
    pub fn total_duration(&self) -> SimDuration {
        let c = &self.config;
        c.warmup + c.baseline + (c.cooldown + c.fault_duration) * self.faults.len() as u64
    }

    /// Schedules every injection/removal on `sim` and returns the phase
    /// timeline. Interventions are recorded in `trace` as they fire.
    pub fn arm(
        &self,
        sim: &mut Sim<Cluster>,
        start: SimTime,
        trace: &InterventionTrace,
    ) -> Vec<PhaseWindow> {
        let plan = self.plan(start);
        let mut fault_iter = self.faults.iter();
        for w in &plan {
            if let PhaseLabel::Fault(svc) = w.label {
                let (planned_svc, kind) = fault_iter.next().expect("one fault per fault phase");
                debug_assert_eq!(*planned_svc, svc);
                FaultInjector::inject_between(sim, svc, kind.clone(), w.start, w.end, trace);
            }
        }
        plan
    }

    /// Arms the campaign at *instance granularity*: each planned
    /// [`PhaseLabel::Fault`] id is interpreted as a dense **target-row
    /// index** and resolved through `targets` (row index → [`TargetId`],
    /// typically [`Cluster::row_targets`]) before injection. This keeps
    /// the campaign plan — and everything that consumes phase windows —
    /// operating on the same dense index space the instance-level causal
    /// model learns over, while injections land on single replicas.
    ///
    /// # Panics
    ///
    /// Panics if a planned fault index is out of range for `targets`.
    pub fn arm_targets(
        &self,
        sim: &mut Sim<Cluster>,
        start: SimTime,
        targets: &[TargetId],
        trace: &InterventionTrace,
    ) -> Vec<PhaseWindow> {
        let plan = self.plan(start);
        let mut fault_iter = self.faults.iter();
        for w in &plan {
            if let PhaseLabel::Fault(row) = w.label {
                let (planned, kind) = fault_iter.next().expect("one fault per fault phase");
                debug_assert_eq!(*planned, row);
                FaultInjector::inject_target_between(
                    sim,
                    targets[row.index()],
                    kind.clone(),
                    w.start,
                    w.end,
                    trace,
                );
            }
        }
        plan
    }

    /// A campaign sweeping one gray [`FaultKind::DegradedReplica`] fault
    /// over `n` dense target rows, for use with [`Campaign::arm_targets`].
    pub fn degraded_replica_sweep(
        n: usize,
        latency_factor: f64,
        error_prob: f64,
        config: CampaignConfig,
    ) -> Self {
        Campaign::new(
            (0..n)
                .map(|i| {
                    (
                        ServiceId::from_index(i),
                        FaultKind::DegradedReplica {
                            latency_factor,
                            error_prob,
                        },
                    )
                })
                .collect(),
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{ClusterSpec, ServiceSpec};

    fn targets(n: usize) -> Vec<ServiceId> {
        (0..n).map(ServiceId::from_index).collect()
    }

    #[test]
    fn plan_is_contiguous_and_ordered() {
        let c = Campaign::service_unavailable_sweep(&targets(4), CampaignConfig::default());
        let plan = c.plan(SimTime::ZERO);
        assert_eq!(plan.len(), 2 + 8);
        for w in plan.windows(2) {
            assert_eq!(w[0].end, w[1].start, "phases must be contiguous");
        }
        assert_eq!(plan.last().unwrap().end, SimTime::ZERO + c.total_duration());
    }

    #[test]
    fn plan_respects_configured_durations() {
        let cfg = CampaignConfig::quick(120);
        let c = Campaign::service_unavailable_sweep(&targets(2), cfg);
        let plan = c.plan(SimTime::from_secs(100));
        assert_eq!(plan[0].label, PhaseLabel::Warmup);
        assert_eq!(plan[0].duration(), SimDuration::from_secs(10));
        assert_eq!(plan[1].label, PhaseLabel::Baseline);
        assert_eq!(plan[1].duration(), SimDuration::from_secs(120));
        assert_eq!(plan[2].label, PhaseLabel::Cooldown);
        assert!(matches!(plan[3].label, PhaseLabel::Fault(_)));
        assert_eq!(plan[3].duration(), SimDuration::from_secs(120));
    }

    #[test]
    fn fault_phases_cover_all_targets_in_order() {
        let ts = targets(5);
        let c = Campaign::service_unavailable_sweep(&ts, CampaignConfig::quick(30));
        let plan = c.plan(SimTime::ZERO);
        let fault_order: Vec<ServiceId> = plan
            .iter()
            .filter_map(|w| match w.label {
                PhaseLabel::Fault(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(fault_order, ts);
    }

    #[test]
    fn armed_campaign_injects_per_plan() {
        let spec = ClusterSpec::new("t")
            .service(ServiceSpec::web("a"))
            .service(ServiceSpec::web("b"));
        let mut cl = Cluster::build(&spec, 1).unwrap();
        let mut sim = Sim::new(1);
        Cluster::start(&mut sim, &mut cl);
        let ids = cl.service_ids();
        let campaign = Campaign::service_unavailable_sweep(&ids, CampaignConfig::quick(20));
        let trace = InterventionTrace::new();
        let plan = campaign.arm(&mut sim, SimTime::ZERO, &trace);
        sim.run_until(plan.last().unwrap().end, &mut cl);
        let entries = trace.entries();
        assert_eq!(entries.len(), 2);
        for (entry, window) in entries.iter().zip(
            plan.iter()
                .filter(|w| matches!(w.label, PhaseLabel::Fault(_))),
        ) {
            assert_eq!(entry.start, window.start);
            assert_eq!(entry.end, window.end);
        }
        // No fault left active at the end.
        for id in cl.service_ids() {
            assert!(cl.fault(id).is_none());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = Campaign::service_unavailable_sweep(&targets(2), CampaignConfig::quick(30));
        let json = serde_json::to_string(&c).unwrap();
        let back: Campaign = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
