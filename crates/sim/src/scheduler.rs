//! The discrete-event scheduler.
//!
//! [`Sim<S>`] owns a virtual clock and a priority queue of scheduled actions.
//! Actions are boxed `FnOnce(&mut Sim<S>, &mut S)` closures over a
//! caller-supplied world state `S`; they may schedule further actions. Events
//! at equal timestamps run in insertion order (FIFO), which together with the
//! deterministic PRNG makes whole simulations reproducible.
//!
//! The queue behind the scheduler is a hierarchical bucketed calendar queue
//! ([`crate::BucketQueue`]) rather than a binary heap: pushes are `O(1)`
//! appends and pops drain sorted per-bucket runs, so throughput no longer
//! degrades with the number of far-future entries (timeouts, cancelled
//! decoys) parked in the queue. The pop order is exactly the heap's
//! `(time, seq)` order — pinned by proptests in `tests/bucket_equivalence.rs`.

use crate::bucket::BucketQueue;
use crate::hash::FastHashSet;
use crate::{QueueStats, Rng, SimDuration, SimTime};

/// An action executed by the scheduler at its scheduled time.
pub type Action<S> = Box<dyn FnOnce(&mut Sim<S>, &mut S)>;

/// A recurring tick body, re-run every period.
type Tick<S> = Box<dyn FnMut(&mut Sim<S>, &mut S)>;

/// A handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Event ids are small dense integers and the cancellation check sits on
/// the scheduler's pop path, so the set uses [`crate::FastHasher`].
type EventIdSet = FastHashSet<EventId>;

/// What a queue entry runs when it pops.
///
/// One-shot events recover their [`EventId`] from the low 64 bits of the
/// queue key (id == seq); periodic events are re-armed under fresh sequence
/// numbers while keeping their original id for cancellation, so the id rides
/// in the payload.
enum Payload<S> {
    /// A one-shot boxed closure.
    Once(Action<S>),
    /// A recurring tick: after running, the same boxed closure is re-pushed
    /// at `time + period` without a fresh allocation.
    Periodic {
        id: EventId,
        period: SimDuration,
        tick: Tick<S>,
    },
}

#[inline]
fn pack_key(time: SimTime, seq: u64) -> u128 {
    ((time.as_nanos() as u128) << 64) | seq as u128
}

#[inline]
fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

/// A deterministic discrete-event simulation engine over world state `S`.
///
/// # Examples
///
/// ```
/// use icfl_sim::{Sim, SimDuration, SimTime};
///
/// let mut sim: Sim<Vec<u32>> = Sim::new(42);
/// let mut world = Vec::new();
/// sim.schedule_after(SimDuration::from_secs(1), |_, w: &mut Vec<u32>| w.push(1));
/// sim.schedule_after(SimDuration::from_secs(2), |sim, w: &mut Vec<u32>| {
///     w.push(2);
///     sim.schedule_after(SimDuration::from_secs(1), |_, w: &mut Vec<u32>| w.push(3));
/// });
/// sim.run_until(SimTime::from_secs(10), &mut world);
/// assert_eq!(world, vec![1, 2, 3]);
/// assert_eq!(sim.now(), SimTime::from_secs(10));
/// ```
pub struct Sim<S> {
    now: SimTime,
    /// Single monotone counter: each scheduled event consumes one value as
    /// both its `EventId` and its FIFO sequence number.
    next_seq: u64,
    queue: BucketQueue<Payload<S>>,
    cancelled: EventIdSet,
    executed: u64,
    rng: Rng,
}

impl<S> std::fmt::Debug for Sim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Sim<S> {
    /// Creates an engine at time zero with the given root seed.
    pub fn new(seed: u64) -> Self {
        Self::with_capacity(seed, 0)
    }

    /// Creates an engine at time zero sized for roughly `events_hint`
    /// concurrently pending events.
    ///
    /// The hint pre-reserves queue and cancellation-set storage so large
    /// scenarios (fleet topologies, heavy load) don't regrow mid-run, while
    /// `events_hint == 0` keeps small scenarios allocation-light. Capacity
    /// never affects behaviour — only allocation timing.
    pub fn with_capacity(seed: u64, events_hint: usize) -> Self {
        let mut cancelled = EventIdSet::default();
        if events_hint > 0 {
            cancelled.reserve(events_hint / 4);
        }
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BucketQueue::with_capacity(events_hint),
            cancelled,
            executed: 0,
            rng: Rng::seeded(seed),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled-but-unpopped ones).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Behaviour counters for the bucketed event queue (occupancy high-water,
    /// resizes, cascades, rotations). Deterministic per seed, so callers may
    /// journal them alongside other run outputs.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// The engine's root RNG. Components should [`Rng::fork`] named streams
    /// from this rather than drawing from it directly.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    #[inline]
    fn push_payload(&mut self, at: SimTime, payload: Payload<S>) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule in the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.queue.push(pack_key(at, seq), payload);
        id
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: the simulation clock cannot
    /// run backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Sim<S>, &mut S) + 'static,
    ) -> EventId {
        self.push_payload(at, Payload::Once(Box::new(action)))
    }

    /// Schedules `action` after a relative delay.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim<S>, &mut S) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` to run at the current time, after all actions
    /// already queued for this instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut Sim<S>, &mut S) + 'static) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Schedules `action` every `period`, starting at `start`. The recurring
    /// closure is boxed once and re-armed in place on every tick.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the tick would livelock the clock).
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        period: SimDuration,
        action: impl FnMut(&mut Sim<S>, &mut S) + 'static,
    ) -> EventId {
        assert!(
            !period.is_zero(),
            "periodic event with zero period would livelock"
        );
        let id = EventId(self.next_seq);
        self.push_payload(
            start,
            Payload::Periodic {
                id,
                period,
                tick: Box::new(action),
            },
        )
    }

    /// Cancels a pending event. Cancelling an already-executed or unknown
    /// event is a no-op. Cancelling a periodic event stops all future ticks.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Runs a popped entry, re-arming periodic payloads.
    /// The caller has already checked the horizon.
    #[inline]
    fn dispatch(&mut self, key: u128, payload: Payload<S>, state: &mut S) {
        let id = match &payload {
            Payload::Once(_) => EventId(key as u64),
            Payload::Periodic { id, .. } => *id,
        };
        // `remove` (not `contains`) so one-shot cancellations don't pin set
        // entries forever; skip the hash entirely while no cancellations
        // are outstanding — the common case.
        if !self.cancelled.is_empty() && self.cancelled.remove(&id) {
            return;
        }
        let time = key_time(key);
        debug_assert!(time >= self.now, "event time regression");
        self.now = time;
        self.executed += 1;
        match payload {
            Payload::Once(action) => action(self, state),
            Payload::Periodic {
                id,
                period,
                mut tick,
            } => {
                tick(self, state);
                // Re-arm with a fresh seq so ticks interleave FIFO with
                // same-instant events scheduled during this tick, exactly
                // as a re-scheduled closure would. The box is reused.
                let seq = self.next_seq;
                self.next_seq += 1;
                self.queue.push(
                    pack_key(time + period, seq),
                    Payload::Periodic { id, period, tick },
                );
            }
        }
    }

    /// Runs events until the queue is exhausted or `horizon` is reached, then
    /// advances the clock to `horizon`.
    ///
    /// Events scheduled exactly at `horizon` are executed.
    pub fn run_until(&mut self, horizon: SimTime, state: &mut S) {
        let horizon_key = pack_key(horizon, u64::MAX);
        while let Some(key) = self.queue.peek_key() {
            if key > horizon_key {
                break;
            }
            let (key, payload) = self.queue.pop().expect("peeked entry exists");
            self.dispatch(key, payload, state);
        }
        if horizon > self.now {
            self.now = horizon;
        }
    }

    /// Runs every pending event (including ones newly scheduled while
    /// running) until the queue drains or `max_events` have executed.
    ///
    /// Returns `true` if the queue drained.
    pub fn run_to_completion(&mut self, max_events: u64, state: &mut S) -> bool {
        let start = self.executed;
        while self.queue.peek_key().is_some() {
            if self.executed - start >= max_events {
                return false;
            }
            let (key, payload) = self.queue.pop().expect("peeked entry exists");
            self.dispatch(key, payload, state);
        }
        true
    }
}

/// Schedules `action` every `period`, starting at `start`, until the engine's
/// horizon ends. The action receives the engine and state each tick.
///
/// Thin wrapper over [`Sim::schedule_periodic`], kept for source
/// compatibility with earlier versions where re-arming required a `Clone`
/// closure; the closure is now boxed once and reused across ticks.
pub fn schedule_periodic<S: 'static>(
    sim: &mut Sim<S>,
    start: SimTime,
    period: SimDuration,
    action: impl FnMut(&mut Sim<S>, &mut S) + 'static,
) {
    sim.schedule_periodic(start, period, action);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new(0);
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(3), |_, w: &mut Vec<u32>| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |_, w: &mut Vec<u32>| w.push(2));
        sim.run_until(SimTime::from_secs(10), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn ties_run_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new(0);
        let mut out = Vec::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            sim.schedule_at(t, move |_, w: &mut Vec<u32>| w.push(i));
        }
        sim.run_until(SimTime::from_secs(2), &mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_is_inclusive_and_clock_advances() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut hits = 0;
        sim.schedule_at(SimTime::from_secs(5), |_, w: &mut u32| *w += 1);
        sim.schedule_at(SimTime::from_secs(6), |_, w: &mut u32| *w += 1);
        sim.run_until(SimTime::from_secs(5), &mut hits);
        assert_eq!(hits, 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.events_pending(), 1);
        sim.run_until(SimTime::from_secs(7), &mut hits);
        assert_eq!(hits, 2);
        assert_eq!(sim.now(), SimTime::from_secs(7));
    }

    #[test]
    fn nested_scheduling_within_run() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new(0);
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |sim, w: &mut Vec<&'static str>| {
            w.push("outer");
            sim.schedule_after(SimDuration::from_secs(1), |_, w| w.push("inner"));
        });
        sim.run_until(SimTime::from_secs(10), &mut out);
        assert_eq!(out, vec!["outer", "inner"]);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut sim: Sim<Vec<u32>> = Sim::new(0);
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |sim, w: &mut Vec<u32>| {
            w.push(1);
            sim.schedule_now(|_, w| w.push(3));
        });
        sim.schedule_at(SimTime::from_secs(1), |_, w: &mut Vec<u32>| w.push(2));
        sim.run_until(SimTime::from_secs(1), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut w = 0;
        sim.schedule_at(SimTime::from_secs(5), |_, _| {});
        sim.run_until(SimTime::from_secs(5), &mut w);
        sim.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn cancellation_suppresses_execution() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut hits = 0;
        let id = sim.schedule_at(SimTime::from_secs(1), |_, w: &mut u32| *w += 1);
        sim.schedule_at(SimTime::from_secs(2), |_, w: &mut u32| *w += 10);
        sim.cancel(id);
        sim.cancel(EventId(999)); // unknown id is a no-op
        sim.run_until(SimTime::from_secs(3), &mut hits);
        assert_eq!(hits, 10);
    }

    #[test]
    fn cancelling_a_periodic_event_stops_all_ticks() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut hits = 0;
        let id = sim.schedule_periodic(
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
            |_, w: &mut u32| *w += 1,
        );
        sim.run_until(SimTime::from_secs(3), &mut hits);
        assert_eq!(hits, 3);
        sim.cancel(id);
        sim.run_until(SimTime::from_secs(10), &mut hits);
        assert_eq!(hits, 3, "re-armed ticks must honour the original id");
    }

    #[test]
    fn run_to_completion_drains_queue() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut count = 0;
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs(i), |_, w: &mut u32| *w += 1);
        }
        assert!(sim.run_to_completion(1_000, &mut count));
        assert_eq!(count, 5);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn run_to_completion_respects_event_budget() {
        let mut sim: Sim<u64> = Sim::new(0);
        let mut count = 0u64;
        // A self-perpetuating event chain: never drains on its own.
        fn tick(sim: &mut Sim<u64>, w: &mut u64) {
            *w += 1;
            sim.schedule_after(SimDuration::from_secs(1), tick);
        }
        sim.schedule_at(SimTime::ZERO, tick);
        assert!(!sim.run_to_completion(100, &mut count));
        assert_eq!(count, 100);
    }

    #[test]
    fn periodic_events_fire_at_period() {
        let mut sim: Sim<Vec<u64>> = Sim::new(0);
        let mut out = Vec::new();
        schedule_periodic(
            &mut sim,
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            |sim, w: &mut Vec<u64>| w.push(sim.now().as_nanos() / 1_000_000_000),
        );
        sim.run_until(SimTime::from_secs(10), &mut out);
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn periodic_zero_period_panics() {
        let mut sim: Sim<u32> = Sim::new(0);
        schedule_periodic(&mut sim, SimTime::ZERO, SimDuration::ZERO, |_, _| {});
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim: Sim<Vec<u64>> = Sim::new(seed);
            let mut out = Vec::new();
            let trace: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..20 {
                let delay = SimDuration::from_millis(1 + (i * 37) % 100);
                sim.schedule_after(delay, move |sim, w: &mut Vec<u64>| {
                    let jitter = sim.rng().below(1_000);
                    w.push(sim.now().as_nanos() + jitter);
                });
            }
            sim.run_until(SimTime::from_secs(1), &mut out);
            drop(trace);
            out
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn with_capacity_matches_default_behaviour() {
        let mut a: Sim<Vec<u32>> = Sim::new(7);
        let mut b: Sim<Vec<u32>> = Sim::with_capacity(7, 50_000);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for sim in [&mut a, &mut b] {
            for i in 0..100u64 {
                sim.schedule_at(
                    SimTime::from_nanos((i % 13) * 1_000_000),
                    move |_, w: &mut Vec<u32>| w.push(i as u32),
                );
            }
        }
        a.run_until(SimTime::from_secs(1), &mut out_a);
        b.run_until(SimTime::from_secs(1), &mut out_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn queue_stats_are_exposed_and_deterministic() {
        fn run() -> QueueStats {
            let mut sim: Sim<u64> = Sim::new(3);
            let mut n = 0u64;
            sim.schedule_periodic(
                SimTime::ZERO,
                SimDuration::from_millis(7),
                |sim, w: &mut u64| {
                    *w += 1;
                    // Far-future decoy exercises deeper wheel levels.
                    let id = sim.schedule_after(SimDuration::from_secs(3600), |_, _| {});
                    sim.cancel(id);
                },
            );
            sim.run_until(SimTime::from_secs(5), &mut n);
            sim.queue_stats()
        }
        let s = run();
        assert!(s.occupancy_high_water >= 1);
        assert_eq!(s, run());
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let sim: Sim<u32> = Sim::new(0);
        assert!(!format!("{sim:?}").is_empty());
    }
}
