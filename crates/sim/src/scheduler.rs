//! The discrete-event scheduler.
//!
//! [`Sim<S>`] owns a virtual clock and a priority queue of scheduled actions.
//! Actions are boxed `FnOnce(&mut Sim<S>, &mut S)` closures over a
//! caller-supplied world state `S`; they may schedule further actions. Events
//! at equal timestamps run in insertion order (FIFO), which together with the
//! deterministic PRNG makes whole simulations reproducible.

use crate::{Rng, SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// An action executed by the scheduler at its scheduled time.
pub type Action<S> = Box<dyn FnOnce(&mut Sim<S>, &mut S)>;

/// A handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<S> {
    time: SimTime,
    seq: u64,
    id: EventId,
    action: Action<S>,
}

impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Entry<S> {}
impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation engine over world state `S`.
///
/// # Examples
///
/// ```
/// use icfl_sim::{Sim, SimDuration, SimTime};
///
/// let mut sim: Sim<Vec<u32>> = Sim::new(42);
/// let mut world = Vec::new();
/// sim.schedule_after(SimDuration::from_secs(1), |_, w: &mut Vec<u32>| w.push(1));
/// sim.schedule_after(SimDuration::from_secs(2), |sim, w: &mut Vec<u32>| {
///     w.push(2);
///     sim.schedule_after(SimDuration::from_secs(1), |_, w: &mut Vec<u32>| w.push(3));
/// });
/// sim.run_until(SimTime::from_secs(10), &mut world);
/// assert_eq!(world, vec![1, 2, 3]);
/// assert_eq!(sim.now(), SimTime::from_secs(10));
/// ```
pub struct Sim<S> {
    now: SimTime,
    seq: u64,
    next_id: u64,
    queue: BinaryHeap<Entry<S>>,
    cancelled: HashSet<EventId>,
    executed: u64,
    rng: Rng,
}

impl<S> std::fmt::Debug for Sim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Sim<S> {
    /// Creates an engine at time zero with the given root seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            next_id: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            executed: 0,
            rng: Rng::seeded(seed),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled-but-unpopped ones).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// The engine's root RNG. Components should [`Rng::fork`] named streams
    /// from this rather than drawing from it directly.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: the simulation clock cannot
    /// run backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Sim<S>, &mut S) + 'static,
    ) -> EventId {
        assert!(at >= self.now, "cannot schedule in the past: {at} < {}", self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.seq += 1;
        self.queue.push(Entry {
            time: at,
            seq: self.seq,
            id,
            action: Box::new(action),
        });
        id
    }

    /// Schedules `action` after a relative delay.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim<S>, &mut S) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` to run at the current time, after all actions
    /// already queued for this instant.
    pub fn schedule_now(
        &mut self,
        action: impl FnOnce(&mut Sim<S>, &mut S) + 'static,
    ) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancels a pending event. Cancelling an already-executed or unknown
    /// event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Runs events until the queue is exhausted or `horizon` is reached, then
    /// advances the clock to `horizon`.
    ///
    /// Events scheduled exactly at `horizon` are executed.
    pub fn run_until(&mut self, horizon: SimTime, state: &mut S) {
        while let Some(top) = self.queue.peek() {
            if top.time > horizon {
                break;
            }
            let entry = self.queue.pop().expect("peeked entry exists");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event time regression");
            self.now = entry.time;
            self.executed += 1;
            (entry.action)(self, state);
        }
        if horizon > self.now {
            self.now = horizon;
        }
    }

    /// Runs every pending event (including ones newly scheduled while
    /// running) until the queue drains or `max_events` have executed.
    ///
    /// Returns `true` if the queue drained.
    pub fn run_to_completion(&mut self, max_events: u64, state: &mut S) -> bool {
        let start = self.executed;
        while self.queue.peek().is_some() {
            if self.executed - start >= max_events {
                return false;
            }
            let entry = self.queue.pop().expect("peeked entry exists");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.now = entry.time;
            self.executed += 1;
            (entry.action)(self, state);
        }
        true
    }
}

/// Schedules `action` every `period`, starting at `start`, until the engine's
/// horizon ends. The action receives the engine and state each tick.
///
/// This is a free function (not a method) because the recurring closure must
/// be `Clone` to re-arm itself.
pub fn schedule_periodic<S: 'static>(
    sim: &mut Sim<S>,
    start: SimTime,
    period: SimDuration,
    action: impl FnMut(&mut Sim<S>, &mut S) + Clone + 'static,
) {
    assert!(!period.is_zero(), "periodic event with zero period would livelock");
    fn arm<S: 'static>(
        sim: &mut Sim<S>,
        at: SimTime,
        period: SimDuration,
        mut action: impl FnMut(&mut Sim<S>, &mut S) + Clone + 'static,
    ) {
        sim.schedule_at(at, move |sim, state| {
            action(sim, state);
            let next = sim.now() + period;
            arm(sim, next, period, action);
        });
    }
    arm(sim, start, period, action);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new(0);
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(3), |_, w: &mut Vec<u32>| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |_, w: &mut Vec<u32>| w.push(2));
        sim.run_until(SimTime::from_secs(10), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn ties_run_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new(0);
        let mut out = Vec::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            sim.schedule_at(t, move |_, w: &mut Vec<u32>| w.push(i));
        }
        sim.run_until(SimTime::from_secs(2), &mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_is_inclusive_and_clock_advances() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut hits = 0;
        sim.schedule_at(SimTime::from_secs(5), |_, w: &mut u32| *w += 1);
        sim.schedule_at(SimTime::from_secs(6), |_, w: &mut u32| *w += 1);
        sim.run_until(SimTime::from_secs(5), &mut hits);
        assert_eq!(hits, 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.events_pending(), 1);
        sim.run_until(SimTime::from_secs(7), &mut hits);
        assert_eq!(hits, 2);
        assert_eq!(sim.now(), SimTime::from_secs(7));
    }

    #[test]
    fn nested_scheduling_within_run() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new(0);
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |sim, w: &mut Vec<&'static str>| {
            w.push("outer");
            sim.schedule_after(SimDuration::from_secs(1), |_, w| w.push("inner"));
        });
        sim.run_until(SimTime::from_secs(10), &mut out);
        assert_eq!(out, vec!["outer", "inner"]);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut sim: Sim<Vec<u32>> = Sim::new(0);
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |sim, w: &mut Vec<u32>| {
            w.push(1);
            sim.schedule_now(|_, w| w.push(3));
        });
        sim.schedule_at(SimTime::from_secs(1), |_, w: &mut Vec<u32>| w.push(2));
        sim.run_until(SimTime::from_secs(1), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut w = 0;
        sim.schedule_at(SimTime::from_secs(5), |_, _| {});
        sim.run_until(SimTime::from_secs(5), &mut w);
        sim.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn cancellation_suppresses_execution() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut hits = 0;
        let id = sim.schedule_at(SimTime::from_secs(1), |_, w: &mut u32| *w += 1);
        sim.schedule_at(SimTime::from_secs(2), |_, w: &mut u32| *w += 10);
        sim.cancel(id);
        sim.cancel(EventId(999)); // unknown id is a no-op
        sim.run_until(SimTime::from_secs(3), &mut hits);
        assert_eq!(hits, 10);
    }

    #[test]
    fn run_to_completion_drains_queue() {
        let mut sim: Sim<u32> = Sim::new(0);
        let mut count = 0;
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs(i), |_, w: &mut u32| *w += 1);
        }
        assert!(sim.run_to_completion(1_000, &mut count));
        assert_eq!(count, 5);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn run_to_completion_respects_event_budget() {
        let mut sim: Sim<u64> = Sim::new(0);
        let mut count = 0u64;
        // A self-perpetuating event chain: never drains on its own.
        fn tick(sim: &mut Sim<u64>, w: &mut u64) {
            *w += 1;
            sim.schedule_after(SimDuration::from_secs(1), tick);
        }
        sim.schedule_at(SimTime::ZERO, tick);
        assert!(!sim.run_to_completion(100, &mut count));
        assert_eq!(count, 100);
    }

    #[test]
    fn periodic_events_fire_at_period() {
        let mut sim: Sim<Vec<u64>> = Sim::new(0);
        let mut out = Vec::new();
        schedule_periodic(
            &mut sim,
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            |sim, w: &mut Vec<u64>| w.push(sim.now().as_nanos() / 1_000_000_000),
        );
        sim.run_until(SimTime::from_secs(10), &mut out);
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn periodic_zero_period_panics() {
        let mut sim: Sim<u32> = Sim::new(0);
        schedule_periodic(&mut sim, SimTime::ZERO, SimDuration::ZERO, |_, _| {});
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim: Sim<Vec<u64>> = Sim::new(seed);
            let mut out = Vec::new();
            let trace: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..20 {
                let delay = SimDuration::from_millis(1 + (i * 37) % 100);
                sim.schedule_after(delay, move |sim, w: &mut Vec<u64>| {
                    let jitter = sim.rng().below(1_000);
                    w.push(sim.now().as_nanos() + jitter);
                });
            }
            sim.run_until(SimTime::from_secs(1), &mut out);
            drop(trace);
            out
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let sim: Sim<u32> = Sim::new(0);
        assert!(!format!("{sim:?}").is_empty());
    }
}
