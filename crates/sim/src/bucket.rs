//! Hierarchical bucketed (calendar-queue) priority queue for the scheduler.
//!
//! The discrete-event hot path is pop-next / push-future at ~10^7 events per
//! second, and a binary heap pays `O(log n)` cache-missing sifts on every
//! operation — with far-future entries (timeouts, decoy timers) inflating `n`
//! for the whole run. This queue is a 3-level timing wheel over the packed
//! `(time, seq)` key used by [`crate::Sim`]:
//!
//! * level 0: 1024 buckets of `2^w` ns each (`w` = 20 by default, ~1 ms);
//! * level 1: 1024 buckets of `2^(w+10)` ns (~1 s);
//! * level 2: 1024 buckets of `2^(w+20)` ns (~18 min);
//! * overflow list beyond the level-2 window (~13 days at the default width).
//!
//! Pops drain a sorted run of the current bucket ("active"); when it empties
//! the wheel advances via per-level occupancy bitmaps, cascading coarser
//! buckets into finer ones. Pushes are `O(1)` appends; each entry is touched
//! at most `LEVELS` times before it pops, so the amortized cost per event is
//! constant and far-future entries cost nothing until their bucket is due.
//!
//! Ordering contract: pops yield keys in strictly increasing order — the
//! exact sequence a min-heap over the same keys would yield (keys are unique
//! because the low 64 bits are a monotone sequence number). This equivalence
//! is pinned by proptests in `tests/bucket_equivalence.rs`.

use std::collections::VecDeque;
use std::mem;

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 10;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask extracting a slot index from a day number.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// 64-bit words in a level's occupancy bitmap.
const WORDS: usize = SLOTS / 64;
/// Number of wheel levels before the overflow list.
const LEVELS: usize = 3;

/// Default log2 of the level-0 bucket width in nanoseconds (~1 ms).
const DEFAULT_WIDTH_LOG2: u32 = 20;
/// Narrowest allowed bucket width (64 ns); adaptive narrowing stops here.
const MIN_WIDTH_LOG2: u32 = 6;
/// An activated bucket longer than this triggers a 4x narrowing rebuild.
const RESIZE_THRESHOLD: usize = 4096;

/// Behaviour counters for the bucketed queue, exposed so runs can journal
/// them (see `icfl-obs`): all values are deterministic functions of the
/// push/pop sequence, so they are safe to include in the determinism journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Largest number of entries ever activated from a single bucket.
    pub occupancy_high_water: u64,
    /// Adaptive bucket-width narrowing rebuilds performed.
    pub resizes: u64,
    /// Coarse-to-fine bucket cascades performed while advancing the wheel.
    pub cascades: u64,
    /// Overflow-list rotations (wheel repositioned at the overflow minimum).
    pub rotations: u64,
}

/// One wheel level: `SLOTS` buckets plus an occupancy bitmap so advancing
/// skips empty buckets in word-sized steps.
struct Level<T> {
    slots: Vec<Vec<(u128, T)>>,
    occupied: [u64; WORDS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
        }
    }

    #[inline]
    fn mark(&mut self, idx: usize) {
        self.occupied[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// First occupied slot index `>= start`, if any.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        if start >= SLOTS {
            return None;
        }
        let mut w = start >> 6;
        let mut word = self.occupied[w] & (!0u64 << (start & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }
}

/// A monotone priority queue over packed `(time, seq)` keys.
///
/// "Monotone" in the calendar-queue sense: keys pushed after a pop must
/// compare greater than the popped key (the simulation clock never runs
/// backwards), which is exactly the contract [`crate::Sim`] enforces with
/// its schedule-in-the-past panic.
///
/// # Examples
///
/// ```
/// use icfl_sim::BucketQueue;
///
/// let mut q: BucketQueue<&'static str> = BucketQueue::new();
/// q.push((2u128 << 64) | 0, "b");
/// q.push((1u128 << 64) | 1, "a");
/// q.push((2u128 << 64) | 2, "c"); // same time as "b", later seq
/// assert_eq!(q.pop(), Some(((1u128 << 64) | 1, "a")));
/// assert_eq!(q.pop(), Some(((2u128 << 64) | 0, "b")));
/// assert_eq!(q.pop(), Some(((2u128 << 64) | 2, "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct BucketQueue<T> {
    /// The current bucket's run, sorted by key ascending: the next pop is
    /// `active.front()`. A deque (not a Vec) so that both draining from the
    /// front and appending a monotone burst of same-instant events at the
    /// back are `O(1)`.
    active: VecDeque<(u128, T)>,
    /// Level-0 day of the active run. Every entry stored in the wheels or
    /// overflow has a level-0 day strictly greater than this; entries at or
    /// before it are merged into `active` on push.
    scan_day: u64,
    /// log2 of the level-0 bucket width in nanoseconds.
    width_log2: u32,
    levels: [Level<T>; LEVELS],
    /// Entries beyond the level-2 window, unsorted; `overflow_min` tracks
    /// the smallest key so rotation knows where to reposition the wheel.
    overflow: Vec<(u128, T)>,
    overflow_min: u128,
    len: usize,
    stats: QueueStats,
}

impl<T> Default for BucketQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for BucketQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BucketQueue")
            .field("len", &self.len)
            .field("width_log2", &self.width_log2)
            .field("scan_day", &self.scan_day)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T> BucketQueue<T> {
    /// An empty queue with the default bucket width and no preallocation.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue reserving room for roughly `hint` concurrently pending
    /// entries (the active run and overflow list are pre-sized; buckets
    /// allocate lazily as they are first touched).
    pub fn with_capacity(hint: usize) -> Self {
        let mut active = VecDeque::new();
        let mut overflow = Vec::new();
        if hint > 0 {
            active.reserve(hint.min(RESIZE_THRESHOLD));
            overflow.reserve(hint.min(RESIZE_THRESHOLD));
        }
        BucketQueue {
            active,
            scan_day: 0,
            width_log2: DEFAULT_WIDTH_LOG2,
            levels: [Level::new(), Level::new(), Level::new()],
            overflow,
            overflow_min: u128::MAX,
            len: 0,
            stats: QueueStats::default(),
        }
    }

    /// Number of entries pending in the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Behaviour counters accumulated since construction.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Current log2 bucket width in nanoseconds (decreases on adaptive
    /// narrowing).
    pub fn width_log2(&self) -> u32 {
        self.width_log2
    }

    #[inline]
    fn day_of(&self, key: u128) -> u64 {
        ((key >> 64) as u64) >> self.width_log2
    }

    /// Inserts an entry. Keys must be unique and no smaller than the last
    /// popped key (the [`crate::Sim`] monotone-clock contract).
    #[inline]
    pub fn push(&mut self, key: u128, item: T) {
        self.len += 1;
        let d0 = self.day_of(key);
        if d0 <= self.scan_day {
            // The wheel has already scanned past this bucket (legal: the
            // key is still >= the last popped key). Merge into the sorted
            // active run; monotone keys land at the back in O(1), and the
            // deque shifts the shorter side for mid-run inserts.
            let at = self.active.partition_point(|e| e.0 < key);
            self.active.insert(at, (key, item));
            return;
        }
        self.push_future(d0, key, item);
    }

    /// Places a strictly-future entry into the finest wheel level whose
    /// current window contains it, or the overflow list.
    #[inline]
    fn push_future(&mut self, d0: u64, key: u128, item: T) {
        let scan = self.scan_day;
        for l in 0..LEVELS {
            let window_shift = (l as u32 + 1) * SLOT_BITS;
            if d0 >> window_shift == scan >> window_shift {
                let idx = ((d0 >> (l as u32 * SLOT_BITS)) & SLOT_MASK) as usize;
                self.levels[l].slots[idx].push((key, item));
                self.levels[l].mark(idx);
                return;
            }
        }
        if key < self.overflow_min {
            self.overflow_min = key;
        }
        self.overflow.push((key, item));
    }

    /// Removes and returns the entry with the smallest key.
    #[inline]
    pub fn pop(&mut self) -> Option<(u128, T)> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        self.len -= 1;
        self.active.pop_front()
    }

    /// The smallest pending key, advancing the wheel if the active run is
    /// drained (`&mut` because advancing mutates scan state; the queue
    /// contents are unchanged).
    #[inline]
    pub fn peek_key(&mut self) -> Option<u128> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        self.active.front().map(|e| e.0)
    }

    /// Moves the scan position to the next non-empty bucket, cascading
    /// coarser levels and rotating the overflow list as needed. Returns
    /// `false` iff the queue is empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.active.is_empty());
        // First candidate slot per level: strictly after the current scan
        // position, reset to 0 when a cascade opens a fresh window.
        let mut start = [
            ((self.scan_day & SLOT_MASK) + 1) as usize,
            (((self.scan_day >> SLOT_BITS) & SLOT_MASK) + 1) as usize,
            (((self.scan_day >> (2 * SLOT_BITS)) & SLOT_MASK) + 1) as usize,
        ];
        loop {
            if let Some(i0) = self.levels[0].next_occupied(start[0]) {
                self.scan_day = (self.scan_day & !SLOT_MASK) | i0 as u64;
                self.activate(i0);
                return true;
            }
            let d1 = self.scan_day >> SLOT_BITS;
            if let Some(i1) = self.levels[1].next_occupied(start[1]) {
                let new_d1 = (d1 & !SLOT_MASK) | i1 as u64;
                self.scan_day = new_d1 << SLOT_BITS;
                self.cascade(1, i1);
                start[0] = 0;
                start[1] = i1 + 1;
                continue;
            }
            let d2 = d1 >> SLOT_BITS;
            if let Some(i2) = self.levels[2].next_occupied(start[2]) {
                let new_d2 = (d2 & !SLOT_MASK) | i2 as u64;
                self.scan_day = new_d2 << (2 * SLOT_BITS);
                self.cascade(2, i2);
                start[0] = 0;
                start[1] = 0;
                start[2] = i2 + 1;
                continue;
            }
            if self.overflow.is_empty() {
                return false;
            }
            self.rotate_overflow();
            if !self.active.is_empty() {
                // Rotation can merge directly into the active run when the
                // overflow minimum sits exactly on a level-2 window start.
                return true;
            }
            start = [0, 0, 0];
        }
    }

    /// Promotes level-0 bucket `idx` to the active run, sorted ascending.
    fn activate(&mut self, idx: usize) {
        debug_assert!(self.active.is_empty());
        // Swap storage so the drained active buffer becomes the empty
        // bucket: capacities are recycled instead of reallocated (both
        // Vec<->VecDeque conversions are O(1) and allocation-preserving).
        let recycled = Vec::from(mem::take(&mut self.active));
        let mut run = mem::replace(&mut self.levels[0].slots[idx], recycled);
        self.levels[0].clear(idx);
        run.sort_unstable_by_key(|a| a.0);
        self.stats.occupancy_high_water = self.stats.occupancy_high_water.max(run.len() as u64);
        self.active = VecDeque::from(run);
        if self.active.len() > RESIZE_THRESHOLD && self.width_log2 > MIN_WIDTH_LOG2 {
            self.narrow();
        }
    }

    /// Distributes bucket `idx` of `level` into the next finer level.
    fn cascade(&mut self, level: usize, idx: usize) {
        self.stats.cascades += 1;
        let mut entries = mem::take(&mut self.levels[level].slots[idx]);
        self.levels[level].clear(idx);
        let shift = (level as u32 - 1) * SLOT_BITS;
        for (key, item) in entries.drain(..) {
            let d0 = self.day_of(key);
            let slot = ((d0 >> shift) & SLOT_MASK) as usize;
            self.levels[level - 1].slots[slot].push((key, item));
            self.levels[level - 1].mark(slot);
        }
        // Hand the (now empty) allocation back to the drained bucket.
        self.levels[level].slots[idx] = entries;
    }

    /// Narrows buckets 4x and redistributes every pending entry. Triggered
    /// when one bucket collects more than [`RESIZE_THRESHOLD`] entries, so
    /// sorting stays cheap under bursty same-bucket load.
    fn narrow(&mut self) {
        self.stats.resizes += 1;
        let shrink = 2u32.min(self.width_log2 - MIN_WIDTH_LOG2);
        self.width_log2 -= shrink;
        // The old scan day maps to the last new day inside it, so entries
        // previously merged into the active run still satisfy d0 <= scan.
        let new_scan = (self.scan_day << shrink) | ((1u64 << shrink) - 1);
        self.rebuild(new_scan);
    }

    /// Repositions the wheel at the overflow minimum and re-files the
    /// overflow list; entries still beyond the new window stay in overflow.
    fn rotate_overflow(&mut self) {
        self.stats.rotations += 1;
        let min_d0 = self.day_of(self.overflow_min);
        let top_window_mask = (1u64 << (LEVELS as u32 * SLOT_BITS)) - 1;
        // Scan sits one day before the minimum so it files into level 0 —
        // unless the minimum starts a level-2 window, in which case scanning
        // at it merges the minimum straight into the active run.
        let new_scan = if min_d0 & top_window_mask == 0 {
            min_d0
        } else {
            min_d0 - 1
        };
        self.rebuild(new_scan);
    }

    /// Re-files every pending entry against `new_scan`, expressed in the
    /// (possibly just-narrowed) current width. Callers guarantee `new_scan`
    /// does not move the scan backwards in absolute time, preserving pop
    /// monotonicity.
    fn rebuild(&mut self, new_scan: u64) {
        let mut pending: Vec<(u128, T)> = Vec::with_capacity(self.len);
        // Active first and in ascending order: re-inserting monotonically
        // increasing keys appends at the back of the new active run, so the
        // rebuild avoids quadratic sorted-insert shifts.
        pending.extend(self.active.drain(..));
        for level in &mut self.levels {
            level.occupied = [0; WORDS];
            for slot in &mut level.slots {
                if !slot.is_empty() {
                    pending.append(slot);
                }
            }
        }
        pending.append(&mut self.overflow);
        self.overflow_min = u128::MAX;
        self.scan_day = new_scan;
        self.len = 0;
        for (key, item) in pending {
            self.push(key, item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, seq: u64) -> u128 {
        ((t as u128) << 64) | seq as u128
    }

    /// Drains the queue, asserting strictly increasing keys, and returns
    /// the popped payloads.
    fn drain<T>(q: &mut BucketQueue<T>) -> Vec<T> {
        let mut out = Vec::new();
        let mut last: Option<u128> = None;
        while let Some(k) = q.peek_key() {
            let (pk, v) = q.pop().expect("peeked entry pops");
            assert_eq!(pk, k);
            if let Some(prev) = last {
                assert!(pk > prev, "keys must strictly increase");
            }
            last = Some(pk);
            out.push(v);
        }
        assert!(q.is_empty());
        out
    }

    #[test]
    fn pops_in_key_order_with_ties_by_seq() {
        let mut q = BucketQueue::new();
        q.push(key(5_000_000, 0), 'c');
        q.push(key(1_000, 1), 'a');
        q.push(key(1_000, 2), 'b');
        q.push(key(5_000_000, 3), 'd');
        assert_eq!(drain(&mut q), vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn far_future_entries_cross_levels_and_overflow() {
        let mut q = BucketQueue::new();
        // One entry per regime: active day, level 0/1/2, overflow.
        q.push(key(10, 0), 0u32);
        q.push(key(10_000_000, 1), 1); // ~10 ms -> level 0
        q.push(key(10_000_000_000, 2), 2); // 10 s -> level 1
        q.push(key(3_600_000_000_000, 3), 3); // 1 h -> level 2
        q.push(key(30 * 24 * 3_600_000_000_000, 4), 4); // 30 d -> overflow
        assert_eq!(q.len(), 5);
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3, 4]);
        assert!(q.stats().cascades > 0);
        assert!(q.stats().rotations > 0);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = BucketQueue::new();
        let mut seq = 0u64;
        let mut push = |q: &mut BucketQueue<u64>, t: u64| {
            let s = seq;
            seq += 1;
            q.push(key(t, s), s);
        };
        push(&mut q, 50);
        push(&mut q, 2_000_000);
        assert_eq!(q.pop().map(|e| e.1), Some(0));
        // Push between the popped key and the pending one: must pop next.
        push(&mut q, 60);
        assert_eq!(q.pop().map(|e| e.1), Some(2));
        assert_eq!(q.pop().map(|e| e.1), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_behind_scan_after_peek_merges_into_active() {
        let mut q = BucketQueue::new();
        q.push(key(5_000_000, 0), "later");
        // Peeking advances the scan to the 5 ms bucket...
        assert_eq!(q.peek_key(), Some(key(5_000_000, 0)));
        // ...but a push for an earlier (still-future) time must pop first.
        q.push(key(4_999_999, 1), "sooner");
        assert_eq!(q.pop().map(|e| e.1), Some("sooner"));
        assert_eq!(q.pop().map(|e| e.1), Some("later"));
    }

    #[test]
    fn narrow_resize_preserves_order() {
        let mut q = BucketQueue::new();
        let n = (RESIZE_THRESHOLD + 500) as u64;
        // Everything lands in one future ~1 ms bucket, forcing a narrowing
        // rebuild when that bucket is activated.
        for i in 0..n {
            q.push(key(5_000_000 + i * 7, i), i);
        }
        let popped = drain(&mut q);
        assert_eq!(popped, (0..n).collect::<Vec<_>>());
        assert!(q.stats().resizes > 0);
        assert!(q.width_log2() < DEFAULT_WIDTH_LOG2);
        assert_eq!(q.stats().occupancy_high_water, n);
    }

    #[test]
    fn same_instant_pile_does_not_resize_forever() {
        let mut q = BucketQueue::new();
        let n = (RESIZE_THRESHOLD * 2) as u64;
        for i in 0..n {
            q.push(key(42, i), i);
        }
        assert_eq!(drain(&mut q), (0..n).collect::<Vec<_>>());
        assert!(q.width_log2() >= MIN_WIDTH_LOG2);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = BucketQueue::new();
        assert!(q.is_empty());
        q.push(key(1, 0), ());
        q.push(key(2, 1), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let q: BucketQueue<()> = BucketQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
