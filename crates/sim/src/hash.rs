//! Fast non-cryptographic hashing for simulator-internal maps.
//!
//! Event ids, request ids and interned names are small, dense,
//! attacker-free keys; SipHash's collision resistance buys nothing there,
//! while its per-lookup cost sits directly on the event hot path (the
//! cluster does a dozen id-map probes per simulated request). This is the
//! rustc-fx construction: a multiply-xor fold, one multiply per word.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiplicative (fxhash-style) hasher. Not DoS-resistant — use only for
/// keys the simulation itself generates.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(K);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` keyed by simulator-generated values, hashed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` of simulator-generated values, hashed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// A [`FastHashMap`] with `capacity` pre-reserved.
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_small_ints_hash_distinctly() {
        let hashes: FastHashSet<u64> = (0u64..10_000).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn str_hashing_depends_on_length_and_content() {
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_ne!(hash_of("ab"), hash_of("a\0"));
        assert_ne!(hash_of(("a", "bc")), hash_of(("ab", "c")));
        assert_eq!(hash_of("abcdefghij"), hash_of("abcdefghij"));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastHashMap<String, usize> = fast_map_with_capacity(16);
        assert!(m.capacity() >= 16);
        for i in 0..100 {
            m.insert(format!("key{i}"), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get("key42"), Some(&42));
    }
}
