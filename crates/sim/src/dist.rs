//! Serializable duration distributions for service times, think times and
//! network latencies.

use crate::{Rng, SimDuration};
use serde::{Deserialize, Serialize};

/// A distribution over non-negative durations.
///
/// Workload and service-time models are described declaratively with this
/// type so application specs (see `icfl-apps`) can be serialized, diffed and
/// embedded in experiment configs.
///
/// # Examples
///
/// ```
/// use icfl_sim::{DurationDist, Rng, SimDuration};
///
/// let dist = DurationDist::exponential(SimDuration::from_millis(10));
/// let mut rng = Rng::seeded(1);
/// let d = dist.sample(&mut rng);
/// assert!(d >= SimDuration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DurationDist {
    /// Always the same duration.
    Constant(SimDuration),
    /// Uniform between `lo` and `hi` (inclusive of `lo`, exclusive of `hi`).
    Uniform {
        /// Lower bound (inclusive).
        lo: SimDuration,
        /// Upper bound (exclusive).
        hi: SimDuration,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: SimDuration,
    },
    /// Log-normal given the median and a shape parameter `sigma` of the
    /// underlying normal. Heavy-tailed; a good fit for service latencies.
    LogNormal {
        /// Median (i.e. `exp(mu)` of the underlying normal).
        median: SimDuration,
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
    /// Normal with the given mean and standard deviation, truncated at zero.
    Normal {
        /// Mean of the (untruncated) normal.
        mean: SimDuration,
        /// Standard deviation of the (untruncated) normal.
        std: SimDuration,
    },
}

impl DurationDist {
    /// A constant distribution.
    pub const fn constant(d: SimDuration) -> Self {
        DurationDist::Constant(d)
    }

    /// An exponential distribution with mean `mean`.
    pub const fn exponential(mean: SimDuration) -> Self {
        DurationDist::Exponential { mean }
    }

    /// A uniform distribution on `[lo, hi)`.
    pub const fn uniform(lo: SimDuration, hi: SimDuration) -> Self {
        DurationDist::Uniform { lo, hi }
    }

    /// A log-normal distribution with the given median and shape.
    pub const fn log_normal(median: SimDuration, sigma: f64) -> Self {
        DurationDist::LogNormal { median, sigma }
    }

    /// A zero-truncated normal distribution.
    pub const fn normal(mean: SimDuration, std: SimDuration) -> Self {
        DurationDist::Normal { mean, std }
    }

    /// Draws one duration.
    pub fn sample(&self, rng: &mut Rng) -> SimDuration {
        match *self {
            DurationDist::Constant(d) => d,
            DurationDist::Uniform { lo, hi } => {
                if hi <= lo {
                    return lo;
                }
                let span = (hi - lo).as_secs_f64();
                lo + SimDuration::from_secs_f64(rng.uniform_f64() * span)
            }
            DurationDist::Exponential { mean } => {
                SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
            }
            DurationDist::LogNormal { median, sigma } => {
                let mu = median.as_secs_f64().max(1e-12).ln();
                SimDuration::from_secs_f64(rng.log_normal(mu, sigma.max(0.0)))
            }
            DurationDist::Normal { mean, std } => {
                let x = mean.as_secs_f64() + std.as_secs_f64() * rng.standard_normal();
                SimDuration::from_secs_f64(x)
            }
        }
    }

    /// The distribution's mean, analytically.
    pub fn mean(&self) -> SimDuration {
        match *self {
            DurationDist::Constant(d) => d,
            DurationDist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    lo + (hi - lo) / 2
                }
            }
            DurationDist::Exponential { mean } => mean,
            DurationDist::LogNormal { median, sigma } => {
                SimDuration::from_secs_f64(median.as_secs_f64() * (sigma * sigma / 2.0).exp())
            }
            DurationDist::Normal { mean, .. } => mean,
        }
    }

    /// Returns a copy with the time scale multiplied by `factor`.
    ///
    /// Useful for load-scaling experiments (e.g. shrinking think times).
    pub fn scaled(&self, factor: f64) -> Self {
        match *self {
            DurationDist::Constant(d) => DurationDist::Constant(d.mul_f64(factor)),
            DurationDist::Uniform { lo, hi } => DurationDist::Uniform {
                lo: lo.mul_f64(factor),
                hi: hi.mul_f64(factor),
            },
            DurationDist::Exponential { mean } => DurationDist::Exponential {
                mean: mean.mul_f64(factor),
            },
            DurationDist::LogNormal { median, sigma } => DurationDist::LogNormal {
                median: median.mul_f64(factor),
                sigma,
            },
            DurationDist::Normal { mean, std } => DurationDist::Normal {
                mean: mean.mul_f64(factor),
                std: std.mul_f64(factor),
            },
        }
    }
}

impl Default for DurationDist {
    fn default() -> Self {
        DurationDist::Constant(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(dist: DurationDist, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::seeded(seed);
        (0..n)
            .map(|_| dist.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = DurationDist::constant(SimDuration::from_millis(5));
        let mut rng = Rng::seeded(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(30);
        let d = DurationDist::uniform(lo, hi);
        let mut rng = Rng::seeded(2);
        for _ in 0..1_000 {
            let x = d.sample(&mut rng);
            assert!(x >= lo && x < hi);
        }
        let m = empirical_mean(d, 3, 50_000);
        assert!((m - 0.020).abs() < 0.0005, "m={m}");
        assert_eq!(d.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn uniform_degenerate_range() {
        let d = DurationDist::uniform(SimDuration::from_millis(5), SimDuration::from_millis(5));
        let mut rng = Rng::seeded(4);
        assert_eq!(d.sample(&mut rng), SimDuration::from_millis(5));
    }

    #[test]
    fn exponential_empirical_mean() {
        let d = DurationDist::exponential(SimDuration::from_millis(8));
        let m = empirical_mean(d, 5, 50_000);
        assert!((m - 0.008).abs() < 0.0005, "m={m}");
    }

    #[test]
    fn log_normal_mean_formula() {
        let d = DurationDist::log_normal(SimDuration::from_millis(10), 0.5);
        let analytic = d.mean().as_secs_f64();
        let m = empirical_mean(d, 6, 100_000);
        assert!(
            (m - analytic).abs() / analytic < 0.05,
            "m={m} analytic={analytic}"
        );
    }

    #[test]
    fn normal_truncates_at_zero() {
        let d = DurationDist::normal(SimDuration::from_millis(1), SimDuration::from_millis(10));
        let mut rng = Rng::seeded(7);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= SimDuration::ZERO);
        }
    }

    #[test]
    fn scaled_scales_mean() {
        let d = DurationDist::exponential(SimDuration::from_millis(10)).scaled(0.25);
        assert_eq!(d.mean(), SimDuration::from_micros(2_500));
    }

    #[test]
    fn serde_roundtrip() {
        let d = DurationDist::log_normal(SimDuration::from_millis(7), 0.3);
        let json = serde_json::to_string(&d).unwrap();
        let back: DurationDist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
