//! Virtual time for the discrete-event simulation.
//!
//! Time is measured in integer **nanoseconds** since the start of the
//! simulation. Using an integer representation keeps event ordering exact and
//! platform-independent, which is the foundation of the determinism guarantee
//! made by [`crate::Sim`].

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It only ever
/// moves forward during a simulation run.
///
/// # Examples
///
/// ```
/// use icfl_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(30);
/// assert_eq!(t.as_secs_f64(), 30.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use icfl_sim::SimDuration;
///
/// let window = SimDuration::from_secs(60);
/// let hop = SimDuration::from_secs(30);
/// assert_eq!(window / hop, 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time `secs` seconds after the origin.
    ///
    /// # Panics
    ///
    /// Panics if `secs * 1e9` overflows `u64` (≈ 584 simulated years).
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (lossy beyond 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked time advance; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative or non-finite inputs clamp to zero: simulated work never takes
    /// negative time.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative float factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MILLI {
            write!(f, "{}us", self.0 / NANOS_PER_MICRO)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.1}ms", self.0 as f64 / NANOS_PER_MILLI as f64)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5_000));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ratio_division() {
        let w = SimDuration::from_secs(60);
        let h = SimDuration::from_secs(30);
        assert!((w / h - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(250).to_string(), "250us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.0ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
    }
}
