//! Deterministic pseudo-random number generation.
//!
//! The kernel hand-rolls a PCG-64 (XSL-RR 128/64) generator rather than
//! depending on the `rand` crate so that simulation streams are stable across
//! dependency upgrades — a bit-identical rerun for a given seed is part of the
//! crate contract (see `DESIGN.md`).
//!
//! Streams are derived *by name* through [`Rng::fork`]: each component of the
//! simulation (a service, a user, the fault campaign) forks its own named
//! stream from the root seed, so adding or removing one component never
//! perturbs the draws seen by the others.

use serde::{Deserialize, Serialize};

/// The default PCG 128-bit multiplier.
const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// SplitMix64 — used to expand a `u64` seed into PCG state material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string; used to derive named sub-streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic PCG-64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use icfl_sim::Rng;
///
/// let mut a = Rng::seeded(42);
/// let mut b = Rng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Named forks are independent, reproducible streams.
/// let mut svc = Rng::seeded(42).fork("service/A");
/// let x = svc.uniform_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng {
    state: u128,
    inc: u128,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let hi = splitmix64(&mut sm) as u128;
        let lo = splitmix64(&mut sm) as u128;
        let inc_hi = splitmix64(&mut sm) as u128;
        let inc_lo = splitmix64(&mut sm) as u128;
        let mut rng = Rng {
            state: (hi << 64) | lo,
            // The increment must be odd.
            inc: ((inc_hi << 64) | inc_lo) | 1,
        };
        // Decorrelate nearby seeds.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Derives an independent, reproducible sub-stream identified by `name`.
    ///
    /// Forking the same name from generators with identical history yields
    /// identical streams; different names yield decorrelated streams.
    pub fn fork(&self, name: &str) -> Rng {
        // Combine our identity (not our mutable position) with the name so the
        // fork is stable no matter how many draws the parent has made... but
        // tie it to the *seed lineage* via `inc`, which is constant per-parent.
        let tag = fnv1a(name.as_bytes());
        let mixed = (self.inc as u64) ^ (self.inc >> 64) as u64 ^ tag;
        Rng::seeded(mixed)
    }

    /// Next raw 64-bit output (PCG XSL-RR 128/64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's unbiased multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// Picks an index according to non-negative `weights`.
    ///
    /// Returns `None` when `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Standard normal draw (Marsaglia polar method, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform_f64() - 1.0;
            let v = 2.0 * self.uniform_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Exponential draw with the given mean (rate `1/mean`).
    ///
    /// A non-positive mean yields `0.0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // 1 - U is in (0, 1], so ln is finite.
        -mean * (1.0 - self.uniform_f64()).ln()
    }

    /// Poisson draw with the given rate `lambda`.
    ///
    /// Uses Knuth's method for small `lambda` and a rounded normal
    /// approximation for large `lambda` (≥ 64).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda >= 64.0 {
            let x = lambda + lambda.sqrt() * self.standard_normal();
            return x.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Log-normal draw parameterized by the *underlying* normal's `mu`, `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seeded(7);
        let mut b = Rng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_named() {
        let root = Rng::seeded(5);
        let mut f1 = root.fork("svc/A");
        let mut f2 = root.fork("svc/A");
        let mut g = root.fork("svc/B");
        assert_eq!(f1.next_u64(), f2.next_u64());
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn fork_insensitive_to_parent_draws() {
        let mut parent = Rng::seeded(5);
        let before = parent.fork("x").next_u64();
        parent.next_u64();
        parent.next_u64();
        let after = parent.fork("x").next_u64();
        assert_eq!(before, after);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seeded(11);
        for _ in 0..10_000 {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_about_half() {
        let mut rng = Rng::seeded(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut rng = Rng::seeded(17);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seeded(0).below(0);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Rng::seeded(19);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match rng.range_inclusive(3, 6) {
                3 => lo_seen = true,
                6 => hi_seen = true,
                v => assert!((3..=6).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seeded(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_rate_is_calibrated() {
        let mut rng = Rng::seeded(29);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = Rng::seeded(31);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / 10_000.0;
        assert!((frac2 - 0.9).abs() < 0.02, "frac2={frac2}");
    }

    #[test]
    fn weighted_index_degenerate_inputs() {
        let mut rng = Rng::seeded(37);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[f64::NAN, 2.0]), Some(1));
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = Rng::seeded(41);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = Rng::seeded(43);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn poisson_mean_matches_small_and_large_lambda() {
        let mut rng = Rng::seeded(47);
        for &lambda in &[0.5, 4.0, 120.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut rng = Rng::seeded(53);
        let n = 30_001;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.log_normal(1.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 1f64.exp()).abs() < 0.1, "median={median}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seeded(59);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
