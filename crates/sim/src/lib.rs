//! # icfl-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the ICFL reproduction (see the workspace `DESIGN.md`):
//! a small, deterministic discrete-event simulation engine used by the
//! microservice cluster model (`icfl-micro`), the load generator
//! (`icfl-loadgen`), the fault campaign scheduler (`icfl-faults`) and the
//! telemetry scraper (`icfl-telemetry`).
//!
//! The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time;
//! * [`Sim`] — an event scheduler over caller-owned world state, with FIFO
//!   tie-breaking and cancellable events;
//! * [`Rng`] — a hand-rolled PCG-64 generator with named [`Rng::fork`]
//!   sub-streams, so simulations are bit-reproducible per seed and
//!   insensitive to unrelated component changes;
//! * [`DurationDist`] — serializable duration distributions for service
//!   times, think times and latencies.
//!
//! # Examples
//!
//! ```
//! use icfl_sim::{Sim, SimDuration, SimTime};
//!
//! // World state: a counter.
//! let mut sim: Sim<u64> = Sim::new(7);
//! let mut counter = 0u64;
//! icfl_sim::schedule_periodic(
//!     &mut sim,
//!     SimTime::ZERO,
//!     SimDuration::from_secs(30),
//!     |_, c: &mut u64| *c += 1,
//! );
//! sim.run_until(SimTime::from_secs(600), &mut counter);
//! assert_eq!(counter, 21); // t = 0, 30, ..., 600
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod dist;
mod hash;
mod rng;
mod scheduler;
mod time;

pub use bucket::{BucketQueue, QueueStats};
pub use dist::DurationDist;
pub use hash::{fast_map_with_capacity, FastHashMap, FastHashSet, FastHasher};
pub use rng::Rng;
pub use scheduler::{schedule_periodic, Action, EventId, Sim};
pub use time::{SimDuration, SimTime};
