//! Proptest equivalence of the bucketed calendar queue against the binary
//! heap it replaced.
//!
//! The determinism contract (DESIGN.md, PR 2/5) requires the scheduler to
//! pop the exact `(time, seq)` sequence the old `BinaryHeap` produced: any
//! deviation reorders RNG draws and breaks byte-identical outputs. These
//! tests drive [`icfl_sim::BucketQueue`] and a `BinaryHeap<Reverse<u128>>`
//! reference through identical workloads — monotone pushes with
//! same-timestamp ties, near/far/overflow-distance deltas, interleaved pops
//! — and at the `Sim` level add cancellation and staged `run_until`
//! advances against a sorted reference model.

use icfl_sim::{BucketQueue, Sim, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn pack(t: u64, seq: u64) -> u128 {
    ((t as u128) << 64) | seq as u128
}

/// A delta class per push: exercises ties (0), the active/level-0 path,
/// level-1/2 cascades, and the overflow list + rotation.
fn delta(class: u8, raw: u64) -> u64 {
    match class % 5 {
        0 => 0,                            // same-instant tie
        1 => raw % 1_000_000,              // < 1 ms: active or level 0
        2 => raw % 10_000_000_000,         // < 10 s: level 1
        3 => raw % 10_000_000_000_000,     // < ~3 h: level 2
        _ => raw % 10_000_000_000_000_000, // < ~115 d: overflow
    }
}

proptest! {
    /// Raw queue: interleaved pushes and pops yield the heap's pop order.
    #[test]
    fn bucket_queue_pops_match_binary_heap(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>(), any::<u64>()), 1..200),
    ) {
        let mut bucket: BucketQueue<u64> = BucketQueue::new();
        let mut heap: BinaryHeap<Reverse<u128>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64; // time of the last popped key: pushes stay >= now
        for &(is_pop, class, raw) in &ops {
            if is_pop {
                let got = bucket.pop();
                let want = heap.pop().map(|Reverse(k)| k);
                prop_assert_eq!(got.as_ref().map(|e| e.0), want);
                if let Some((k, s)) = got {
                    now = (k >> 64) as u64;
                    prop_assert_eq!(s, k as u64);
                }
            } else {
                let t = now.saturating_add(delta(class, raw));
                let key = pack(t, seq);
                bucket.push(key, seq);
                heap.push(Reverse(key));
                seq += 1;
            }
            prop_assert_eq!(bucket.len(), heap.len());
        }
        // Drain both completely; far-future entries force cascades/rotations.
        loop {
            let got = bucket.pop().map(|e| e.0);
            let want = heap.pop().map(|Reverse(k)| k);
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
        prop_assert!(bucket.is_empty());
    }

    /// `peek_key` always agrees with the key the next `pop` returns, even
    /// when pushes land behind the advanced scan position.
    #[test]
    fn peek_agrees_with_pop(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..100),
    ) {
        let mut bucket: BucketQueue<()> = BucketQueue::new();
        let mut now = 0u64;
        for (i, &(class, raw)) in ops.iter().enumerate() {
            bucket.push(pack(now.saturating_add(delta(class, raw)), i as u64), ());
            if i % 3 == 2 {
                let peeked = bucket.peek_key();
                let popped = bucket.pop().map(|e| e.0);
                prop_assert_eq!(peeked, popped);
                if let Some(k) = popped {
                    now = (k >> 64) as u64;
                }
            }
        }
    }

    /// Full scheduler: random insert/cancel/advance against a sorted
    /// reference model, including ties and far-future events.
    #[test]
    fn sim_matches_reference_under_insert_cancel_advance(
        ops in proptest::collection::vec((0u8..3, any::<u8>(), any::<u64>()), 1..120),
    ) {
        let mut sim: Sim<Vec<usize>> = Sim::new(0);
        let mut fired: Vec<usize> = Vec::new();
        // Reference model: (time, insertion index, cancelled, fired).
        let mut model: Vec<(u64, usize, bool, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut expected: Vec<usize> = Vec::new();
        let mut now = 0u64;
        for &(op, class, raw) in &ops {
            match op {
                0 => {
                    let t = now.saturating_add(delta(class, raw));
                    let i = ids.len();
                    ids.push(sim.schedule_at(
                        SimTime::from_nanos(t),
                        move |_, w: &mut Vec<usize>| w.push(i),
                    ));
                    model.push((t, i, false, false));
                }
                1 => {
                    // Cancel a pseudo-random earlier event (no-op if fired).
                    if !ids.is_empty() {
                        let pick = (raw as usize) % ids.len();
                        sim.cancel(ids[pick]);
                        model[pick].2 = true;
                    }
                }
                _ => {
                    // Advance to a horizon past `now`; the model fires every
                    // surviving event up to it in (time, insertion) order.
                    let h = now.saturating_add(delta(class, raw));
                    sim.run_until(SimTime::from_nanos(h), &mut fired);
                    let mut due: Vec<(u64, usize)> = model
                        .iter()
                        .filter(|&&(t, _, cancelled, done)| t <= h && !cancelled && !done)
                        .map(|&(t, i, _, _)| (t, i))
                        .collect();
                    due.sort_unstable();
                    for &(_, i) in &due {
                        model[i].3 = true;
                        expected.push(i);
                    }
                    now = h;
                    prop_assert_eq!(&fired, &expected);
                }
            }
        }
        sim.run_until(SimTime::from_nanos(u64::MAX), &mut fired);
        let mut due: Vec<(u64, usize)> = model
            .iter()
            .filter(|&&(_, _, cancelled, done)| !cancelled && !done)
            .map(|&(t, i, _, _)| (t, i))
            .collect();
        due.sort_unstable();
        expected.extend(due.iter().map(|&(_, i)| i));
        prop_assert_eq!(fired, expected);
        prop_assert_eq!(sim.events_pending(), 0);
    }
}
