//! Property-based tests for the simulation kernel: time arithmetic, PRNG
//! contracts, distribution support, and scheduler ordering.

use icfl_sim::{DurationDist, Rng, Sim, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn time_add_sub_roundtrips(t in 0u64..1_000_000_000_000, d in 0u64..1_000_000_000_000) {
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
    }

    #[test]
    fn duration_addition_is_commutative(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da + db, db + da);
    }

    #[test]
    fn saturating_since_is_never_negative(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let ta = SimTime::from_nanos(a);
        let tb = SimTime::from_nanos(b);
        let d = ta.saturating_since(tb);
        prop_assert!(d >= SimDuration::ZERO);
        if a >= b {
            prop_assert_eq!(d.as_nanos(), a - b);
        } else {
            prop_assert_eq!(d, SimDuration::ZERO);
        }
    }

    #[test]
    fn rng_below_respects_bound(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Rng::seeded(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_range_inclusive_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = Rng::seeded(seed);
        let hi = lo + span;
        for _ in 0..20 {
            let v = rng.range_inclusive(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn rng_same_seed_same_stream(seed in any::<u64>()) {
        let mut a = Rng::seeded(seed);
        let mut b = Rng::seeded(seed);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_fork_is_deterministic(seed in any::<u64>(), name in "[a-z]{1,12}") {
        let root = Rng::seeded(seed);
        let mut f1 = root.fork(&name);
        let mut f2 = root.fork(&name);
        for _ in 0..10 {
            prop_assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn weighted_index_only_picks_positive_weights(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..10.0, 1..8),
    ) {
        let mut rng = Rng::seeded(seed);
        match rng.weighted_index(&weights) {
            Some(i) => prop_assert!(weights[i] > 0.0),
            None => prop_assert!(weights.iter().all(|&w| w <= 0.0)),
        }
    }

    #[test]
    fn distributions_sample_nonnegative(
        seed in any::<u64>(),
        mean_ms in 1u64..1000,
        sigma in 0.0f64..2.0,
    ) {
        let mut rng = Rng::seeded(seed);
        let dists = [
            DurationDist::constant(SimDuration::from_millis(mean_ms)),
            DurationDist::exponential(SimDuration::from_millis(mean_ms)),
            DurationDist::log_normal(SimDuration::from_millis(mean_ms), sigma),
            DurationDist::normal(SimDuration::from_millis(mean_ms), SimDuration::from_millis(mean_ms)),
            DurationDist::uniform(SimDuration::ZERO, SimDuration::from_millis(mean_ms)),
        ];
        for d in dists {
            for _ in 0..10 {
                prop_assert!(d.sample(&mut rng) >= SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn uniform_samples_stay_in_bounds(seed in any::<u64>(), lo in 0u64..500, span in 1u64..500) {
        let mut rng = Rng::seeded(seed);
        let d = DurationDist::uniform(
            SimDuration::from_millis(lo),
            SimDuration::from_millis(lo + span),
        );
        for _ in 0..50 {
            let s = d.sample(&mut rng);
            prop_assert!(s >= SimDuration::from_millis(lo));
            prop_assert!(s < SimDuration::from_millis(lo + span));
        }
    }

    #[test]
    fn scheduler_executes_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..10_000, 1..50),
    ) {
        let mut sim: Sim<Vec<u64>> = Sim::new(0);
        let mut fired: Vec<u64> = Vec::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), move |sim, w: &mut Vec<u64>| {
                w.push(sim.now().as_nanos());
            });
        }
        sim.run_until(SimTime::from_nanos(10_000), &mut fired);
        prop_assert_eq!(fired.len(), times.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]), "order: {:?}", fired);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(fired, sorted);
    }

    #[test]
    fn scheduler_cancellation_removes_exactly_the_cancelled(
        n in 1usize..30,
        cancel_mask in any::<u32>(),
    ) {
        let mut sim: Sim<Vec<usize>> = Sim::new(0);
        let mut fired: Vec<usize> = Vec::new();
        let mut expected: Vec<usize> = Vec::new();
        for i in 0..n {
            let id = sim.schedule_at(
                SimTime::from_nanos(i as u64 + 1),
                move |_, w: &mut Vec<usize>| w.push(i),
            );
            if cancel_mask & (1 << (i % 32)) != 0 {
                sim.cancel(id);
            } else {
                expected.push(i);
            }
        }
        sim.run_until(SimTime::from_nanos(1_000), &mut fired);
        prop_assert_eq!(fired, expected);
    }

    /// Reference-model check for the scheduler's full ordering contract:
    /// surviving events run sorted by `(time, insertion order)`, ties FIFO,
    /// regardless of which events are cancelled. Pins the contract against
    /// internal representation changes (hashers, queue layout, key packing):
    /// duplicate timestamps and interleaved cancellations must not perturb
    /// the order.
    #[test]
    fn scheduler_order_matches_reference_model(
        ops in proptest::collection::vec((0u64..500, any::<bool>()), 1..80),
    ) {
        let mut sim: Sim<Vec<usize>> = Sim::new(0);
        let mut fired: Vec<usize> = Vec::new();
        let mut ids = Vec::with_capacity(ops.len());
        for (i, &(t, _)) in ops.iter().enumerate() {
            ids.push(sim.schedule_at(SimTime::from_nanos(t), move |_, w: &mut Vec<usize>| {
                w.push(i);
            }));
        }
        // Cancel after all scheduling so cancellation cannot depend on
        // insertion adjacency.
        for (i, &(_, cancel)) in ops.iter().enumerate() {
            if cancel {
                sim.cancel(ids[i]);
            }
        }
        sim.run_until(SimTime::from_nanos(1_000), &mut fired);
        let mut expected: Vec<usize> = (0..ops.len()).filter(|&i| !ops[i].1).collect();
        expected.sort_by_key(|&i| (ops[i].0, i));
        prop_assert_eq!(fired, expected);
    }
}
