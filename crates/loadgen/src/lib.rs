//! # icfl-loadgen — Locust-style load generation for the simulated cluster
//!
//! Reproduces the paper's load-generation service (§V-A): a configurable
//! number of *closed-loop* users who repeatedly pick a weighted userflow,
//! issue the request, wait for the response, think, and go again. Closed-
//! loop behavior is essential: it is what turns a fail-fast fault on one
//! path into *increased* request rate on sibling paths (the §III-C load
//! confounder, Fig. 2). An open-loop Poisson model is provided for
//! ablations where the confounder must be absent.
//!
//! Load scale (the paper's 1× vs 4×) is the `replicas` knob: each replica
//! adds `users_per_replica` users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfl_micro::{Cluster, ServiceId, Status};
use icfl_sim::{DurationDist, Rng, Sim, SimDuration};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One user-visible flow: an entry service + endpoint with a pick weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserFlow {
    /// Flow name (e.g. `"path_bce"`).
    pub name: String,
    /// Entry service name (CausalBench: always `"a"`).
    pub entry_service: String,
    /// Endpoint invoked on the entry service.
    pub endpoint: String,
    /// Relative pick weight (must be positive to ever be chosen).
    pub weight: f64,
}

impl UserFlow {
    /// Creates a flow with weight 1.
    pub fn new(
        name: impl Into<String>,
        entry_service: impl Into<String>,
        endpoint: impl Into<String>,
    ) -> Self {
        UserFlow {
            name: name.into(),
            entry_service: entry_service.into(),
            endpoint: endpoint.into(),
            weight: 1.0,
        }
    }

    /// Overrides the pick weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// How requests are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Locust-style users: issue → wait for response → think → repeat.
    ClosedLoop {
        /// Users per load-generator replica (paper: 10).
        users_per_replica: usize,
        /// Think time between a response and the next request.
        think_time: DurationDist,
    },
    /// Poisson arrivals at a fixed aggregate rate, independent of response
    /// times (no queueing feedback — used to ablate the Fig. 2 confounder).
    Open {
        /// Aggregate requests per second per replica, split by flow weight.
        rps_per_replica: f64,
    },
    /// Open-loop arrivals whose rate follows a diurnal sine ramp with
    /// periodic flash-crowd spikes superimposed — the bursty production
    /// traffic that makes single-window baselines unrepresentative.
    ///
    /// Implemented by thinning: candidates are generated at the peak rate
    /// and accepted with probability `rate(t) / peak`, so the arrival
    /// process stays an (inhomogeneous) Poisson process.
    Bursty {
        /// Base aggregate requests per second per replica.
        base_rps_per_replica: f64,
        /// Fractional amplitude of the diurnal sine (0 = flat, 0.5 = ±50%
        /// around the base rate). Clamped to `[0, 1]`.
        diurnal_amplitude: f64,
        /// Period of the diurnal cycle (a simulated "day", shortened in
        /// tests). Non-positive disables the diurnal component.
        diurnal_period: SimDuration,
        /// Gap between the starts of consecutive flash-crowd spikes.
        /// [`SimDuration::ZERO`] disables spikes. The first spike starts
        /// one full `spike_every` after t=0, so early baseline windows
        /// are spike-free.
        spike_every: SimDuration,
        /// How long each flash-crowd spike lasts.
        spike_duration: SimDuration,
        /// Rate multiplier while a spike is active (clamped to ≥ 1).
        spike_factor: f64,
    },
    /// Open-loop arrivals where the *client* retries failed requests with a
    /// backoff — the retry-storm amplifier: load on the cluster rises
    /// exactly when the cluster is least able to serve it, the inverse of
    /// the closed-loop confounder.
    ///
    /// Every retry attempt counts toward [`FlowStats::sent`] (the
    /// amplification is visible in the issued-request rate) and bumps
    /// [`FlowStats::retries`] plus the `icfl_loadgen_retries_total`
    /// observability counter.
    RetryStorm {
        /// Aggregate *first-attempt* requests per second per replica.
        rps_per_replica: f64,
        /// Maximum client-side retries per failed request.
        max_retries: u32,
        /// Backoff sampled before each retry attempt.
        backoff: DurationDist,
    },
}

impl Default for ArrivalModel {
    fn default() -> Self {
        ArrivalModel::ClosedLoop {
            users_per_replica: 10,
            think_time: DurationDist::exponential(SimDuration::from_millis(100)),
        }
    }
}

/// Full load-generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// The flows users pick from.
    pub flows: Vec<UserFlow>,
    /// Arrival model.
    pub model: ArrivalModel,
    /// Number of load-generator replicas (1 = the paper's 1× load,
    /// 4 = its 4×).
    pub replicas: usize,
}

impl LoadConfig {
    /// A closed-loop config with the paper's defaults (10 users/replica).
    pub fn closed_loop(flows: Vec<UserFlow>) -> Self {
        LoadConfig {
            flows,
            model: ArrivalModel::default(),
            replicas: 1,
        }
    }

    /// Sets the replica count (load scale), returning `self`.
    ///
    /// `replicas` multiplies *every* arrival model's per-replica knob, not
    /// just the closed-loop user count: [`ArrivalModel::Open`] (and
    /// [`ArrivalModel::Bursty`] / [`ArrivalModel::RetryStorm`]) generate an
    /// aggregate rate of `rps_per_replica × replicas`. An `Open` config at
    /// 100 rps with 4 replicas therefore offers 400 rps to the cluster —
    /// the per-replica field name is the contract, despite open-loop
    /// generators having no per-replica state.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the arrival model, returning `self`.
    pub fn with_model(mut self, model: ArrivalModel) -> Self {
        self.model = model;
        self
    }
}

/// Errors raised when starting a load generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A flow references a service the cluster does not have.
    UnknownService(String),
    /// No flows were configured.
    NoFlows,
    /// All flow weights are zero or negative.
    ZeroTotalWeight,
    /// `replicas == 0`.
    ZeroReplicas,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::UnknownService(s) => write!(f, "flow references unknown service: {s}"),
            LoadError::NoFlows => write!(f, "load config has no flows"),
            LoadError::ZeroTotalWeight => write!(f, "all flow weights are non-positive"),
            LoadError::ZeroReplicas => write!(f, "replicas must be at least 1"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Per-flow outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Requests issued.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses (any non-2xx).
    pub err: u64,
    /// Sum of end-to-end latencies in seconds (divide by `ok + err` for the
    /// mean).
    pub latency_sum_secs: f64,
    /// Client-side retry attempts (only [`ArrivalModel::RetryStorm`] ever
    /// sets this; every retry is *also* counted in `sent`).
    #[serde(default)]
    pub retries: u64,
}

impl FlowStats {
    /// Mean end-to-end latency over completed requests, if any completed.
    pub fn mean_latency_secs(&self) -> Option<f64> {
        let done = self.ok + self.err;
        if done == 0 {
            None
        } else {
            Some(self.latency_sum_secs / done as f64)
        }
    }
}

/// Internal counters, indexed by flow position in the config — the hot path
/// bumps a `Vec` slot instead of hashing flow-name strings per request.
#[derive(Debug, Default)]
struct Stats {
    names: Vec<String>,
    per_flow: Vec<FlowStats>,
    stopped: bool,
}

impl Stats {
    fn idx(&self, flow: &str) -> Option<usize> {
        self.names.iter().position(|n| n == flow)
    }
}

/// Handle to a running load generator: live statistics and a stop switch.
#[derive(Clone)]
pub struct LoadHandle {
    stats: Rc<RefCell<Stats>>,
}

impl std::fmt::Debug for LoadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats.borrow();
        f.debug_struct("LoadHandle")
            .field("flows", &s.names.len())
            .field("stopped", &s.stopped)
            .finish()
    }
}

impl LoadHandle {
    /// Snapshot of one flow's counters.
    pub fn flow_stats(&self, flow: &str) -> FlowStats {
        let s = self.stats.borrow();
        s.idx(flow).map(|i| s.per_flow[i]).unwrap_or_default()
    }

    /// Snapshot of all flows' counters.
    pub fn all_stats(&self) -> HashMap<String, FlowStats> {
        let s = self.stats.borrow();
        s.names
            .iter()
            .cloned()
            .zip(s.per_flow.iter().copied())
            .collect()
    }

    /// Total requests issued across flows.
    pub fn total_sent(&self) -> u64 {
        self.stats.borrow().per_flow.iter().map(|s| s.sent).sum()
    }

    /// Total client-side retry attempts across flows (retry-storm model).
    pub fn total_retries(&self) -> u64 {
        self.stats.borrow().per_flow.iter().map(|s| s.retries).sum()
    }

    /// Stops the generator: users finish their in-flight request and do not
    /// issue another; open-loop arrivals cease.
    pub fn stop(&self) {
        self.stats.borrow_mut().stopped = true;
    }
}

/// Starts load generation on a simulation.
///
/// # Errors
///
/// Returns a [`LoadError`] if the config is empty, has no positive weights,
/// zero replicas, or references unknown services.
///
/// # Examples
///
/// ```
/// use icfl_loadgen::{start_load, LoadConfig, UserFlow};
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps};
/// use icfl_sim::{Sim, SimTime};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 1)?;
/// let mut sim = Sim::new(1);
/// Cluster::start(&mut sim, &mut cluster);
///
/// let cfg = LoadConfig::closed_loop(vec![UserFlow::new("root", "a", "/")]);
/// let handle = start_load(&mut sim, &mut cluster, &cfg).unwrap();
/// sim.run_until(SimTime::from_secs(10), &mut cluster);
/// assert!(handle.flow_stats("root").ok > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn start_load(
    sim: &mut Sim<Cluster>,
    cluster: &mut Cluster,
    config: &LoadConfig,
) -> Result<LoadHandle, LoadError> {
    if config.flows.is_empty() {
        return Err(LoadError::NoFlows);
    }
    if config.replicas == 0 {
        return Err(LoadError::ZeroReplicas);
    }
    let weights: Vec<f64> = config.flows.iter().map(|f| f.weight).collect();
    if !weights.iter().any(|w| w.is_finite() && *w > 0.0) {
        return Err(LoadError::ZeroTotalWeight);
    }
    // Resolve entry services and endpoint indices up front so the per-request
    // path never hashes a name string.
    let entries: Vec<(ServiceId, usize)> = config
        .flows
        .iter()
        .map(|f| {
            let id = cluster
                .service_id(&f.entry_service)
                .ok_or_else(|| LoadError::UnknownService(f.entry_service.clone()))?;
            let ep = cluster.endpoint_id(id, &f.endpoint).unwrap_or_else(|| {
                panic!("service {} has no endpoint {}", f.entry_service, f.endpoint)
            });
            Ok((id, ep))
        })
        .collect::<Result<_, _>>()?;

    let stats = Rc::new(RefCell::new(Stats {
        names: config.flows.iter().map(|f| f.name.clone()).collect(),
        per_flow: vec![FlowStats::default(); config.flows.len()],
        stopped: false,
    }));
    let entries = Rc::new(entries);
    let weights = Rc::new(weights);

    match config.model {
        ArrivalModel::ClosedLoop {
            users_per_replica,
            think_time,
        } => {
            let total_users = users_per_replica * config.replicas;
            for u in 0..total_users {
                let rng = sim.rng().fork(&format!("loadgen/user/{u}"));
                // Stagger user start times across one think period to avoid
                // a thundering herd at t=0.
                let mut start_rng = rng.clone();
                let offset = SimDuration::from_secs_f64(start_rng.uniform_f64() * 0.2);
                schedule_user_iteration(
                    sim,
                    offset,
                    UserState {
                        rng: start_rng,
                        think_time,
                        entries: Rc::clone(&entries),
                        weights: Rc::clone(&weights),
                        stats: Rc::clone(&stats),
                    },
                );
            }
        }
        ArrivalModel::Open { rps_per_replica } => {
            let rate = rps_per_replica * config.replicas as f64;
            if rate > 0.0 {
                let rng = sim.rng().fork("loadgen/open");
                schedule_open_arrival(
                    sim,
                    SimDuration::ZERO,
                    OpenState {
                        rng,
                        mean_gap: SimDuration::from_secs_f64(1.0 / rate),
                        entries: Rc::clone(&entries),
                        weights: Rc::clone(&weights),
                        stats: Rc::clone(&stats),
                    },
                );
            }
        }
        ArrivalModel::Bursty {
            base_rps_per_replica,
            diurnal_amplitude,
            diurnal_period,
            spike_every,
            spike_duration,
            spike_factor,
        } => {
            let base = base_rps_per_replica * config.replicas as f64;
            if base > 0.0 {
                let amplitude = diurnal_amplitude.clamp(0.0, 1.0);
                let factor = spike_factor.max(1.0);
                let peak = base * (1.0 + amplitude) * factor;
                let rng = sim.rng().fork("loadgen/bursty");
                schedule_bursty_arrival(
                    sim,
                    SimDuration::ZERO,
                    BurstyState {
                        rng,
                        base,
                        amplitude,
                        period_secs: diurnal_period.as_secs_f64(),
                        spike_every_secs: spike_every.as_secs_f64(),
                        spike_duration_secs: spike_duration.as_secs_f64(),
                        spike_factor: factor,
                        candidate_gap: SimDuration::from_secs_f64(1.0 / peak),
                        peak,
                        entries: Rc::clone(&entries),
                        weights: Rc::clone(&weights),
                        stats: Rc::clone(&stats),
                    },
                );
            }
        }
        ArrivalModel::RetryStorm {
            rps_per_replica,
            max_retries,
            backoff,
        } => {
            let rate = rps_per_replica * config.replicas as f64;
            if rate > 0.0 {
                let rng = sim.rng().fork("loadgen/retry");
                schedule_retry_arrival(
                    sim,
                    SimDuration::ZERO,
                    RetryState {
                        rng,
                        mean_gap: SimDuration::from_secs_f64(1.0 / rate),
                        max_retries,
                        backoff,
                        entries: Rc::clone(&entries),
                        weights: Rc::clone(&weights),
                        stats: Rc::clone(&stats),
                    },
                );
            }
        }
    }
    Ok(LoadHandle { stats })
}

struct UserState {
    rng: Rng,
    think_time: DurationDist,
    entries: Rc<Vec<(ServiceId, usize)>>,
    weights: Rc<Vec<f64>>,
    stats: Rc<RefCell<Stats>>,
}

fn schedule_user_iteration(sim: &mut Sim<Cluster>, delay: SimDuration, mut user: UserState) {
    sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
        if user.stats.borrow().stopped {
            return;
        }
        let Some(flow_idx) = user.rng.weighted_index(&user.weights) else {
            return;
        };
        let (service, endpoint) = user.entries[flow_idx];
        user.stats.borrow_mut().per_flow[flow_idx].sent += 1;
        let started = sim.now();
        let stats = Rc::clone(&user.stats);
        Cluster::submit_indexed(sim, cl, service, endpoint, move |sim, _cl, resp| {
            let latency = sim.now().saturating_since(started).as_secs_f64();
            {
                let mut st = stats.borrow_mut();
                let fs = &mut st.per_flow[flow_idx];
                if resp.status == Status::Ok {
                    fs.ok += 1;
                } else {
                    fs.err += 1;
                }
                fs.latency_sum_secs += latency;
            }
            let think = user.think_time.sample(&mut user.rng);
            schedule_user_iteration(sim, think, user);
        });
    });
}

struct OpenState {
    rng: Rng,
    mean_gap: SimDuration,
    entries: Rc<Vec<(ServiceId, usize)>>,
    weights: Rc<Vec<f64>>,
    stats: Rc<RefCell<Stats>>,
}

fn schedule_open_arrival(sim: &mut Sim<Cluster>, delay: SimDuration, mut state: OpenState) {
    sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
        if state.stats.borrow().stopped {
            return;
        }
        if let Some(flow_idx) = state.rng.weighted_index(&state.weights) {
            let (service, endpoint) = state.entries[flow_idx];
            state.stats.borrow_mut().per_flow[flow_idx].sent += 1;
            let started = sim.now();
            let stats = Rc::clone(&state.stats);
            Cluster::submit_indexed(sim, cl, service, endpoint, move |sim, _cl, resp| {
                let latency = sim.now().saturating_since(started).as_secs_f64();
                let mut st = stats.borrow_mut();
                let fs = &mut st.per_flow[flow_idx];
                if resp.status == Status::Ok {
                    fs.ok += 1;
                } else {
                    fs.err += 1;
                }
                fs.latency_sum_secs += latency;
            });
        }
        let gap = SimDuration::from_secs_f64(state.rng.exponential(state.mean_gap.as_secs_f64()));
        schedule_open_arrival(sim, gap, state);
    });
}

struct BurstyState {
    rng: Rng,
    base: f64,
    amplitude: f64,
    period_secs: f64,
    spike_every_secs: f64,
    spike_duration_secs: f64,
    spike_factor: f64,
    candidate_gap: SimDuration,
    peak: f64,
    entries: Rc<Vec<(ServiceId, usize)>>,
    weights: Rc<Vec<f64>>,
    stats: Rc<RefCell<Stats>>,
}

impl BurstyState {
    /// Instantaneous target rate at simulated time `t` (seconds).
    fn rate_at(&self, t: f64) -> f64 {
        let diurnal = if self.period_secs > 0.0 {
            1.0 + self.amplitude * (std::f64::consts::TAU * t / self.period_secs).sin()
        } else {
            1.0
        };
        // Spikes occupy the *end* of each `spike_every` interval so the
        // first spike starts a full interval after t=0.
        let in_spike = self.spike_every_secs > 0.0
            && self.spike_duration_secs > 0.0
            && (t % self.spike_every_secs) >= (self.spike_every_secs - self.spike_duration_secs);
        self.base * diurnal * if in_spike { self.spike_factor } else { 1.0 }
    }
}

fn schedule_bursty_arrival(sim: &mut Sim<Cluster>, delay: SimDuration, mut state: BurstyState) {
    sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
        if state.stats.borrow().stopped {
            return;
        }
        // Thinning: this event is a *candidate* generated at the peak rate;
        // accept it with probability rate(now)/peak.
        let accept = state.rate_at(sim.now().as_secs_f64()) / state.peak;
        if state.rng.uniform_f64() < accept {
            if let Some(flow_idx) = state.rng.weighted_index(&state.weights) {
                let (service, endpoint) = state.entries[flow_idx];
                state.stats.borrow_mut().per_flow[flow_idx].sent += 1;
                let started = sim.now();
                let stats = Rc::clone(&state.stats);
                Cluster::submit_indexed(sim, cl, service, endpoint, move |sim, _cl, resp| {
                    let latency = sim.now().saturating_since(started).as_secs_f64();
                    record_outcome(&stats, flow_idx, resp.status, latency);
                });
            }
        }
        let gap =
            SimDuration::from_secs_f64(state.rng.exponential(state.candidate_gap.as_secs_f64()));
        schedule_bursty_arrival(sim, gap, state);
    });
}

struct RetryState {
    rng: Rng,
    mean_gap: SimDuration,
    max_retries: u32,
    backoff: DurationDist,
    entries: Rc<Vec<(ServiceId, usize)>>,
    weights: Rc<Vec<f64>>,
    stats: Rc<RefCell<Stats>>,
}

fn schedule_retry_arrival(sim: &mut Sim<Cluster>, delay: SimDuration, mut state: RetryState) {
    sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
        if state.stats.borrow().stopped {
            return;
        }
        if let Some(flow_idx) = state.rng.weighted_index(&state.weights) {
            // Sample the whole backoff ladder up front from the generator
            // stream so retries stay deterministic without per-request RNG
            // forks; the ladder is popped back-to-front on each failure.
            let backoffs: Vec<SimDuration> = (0..state.max_retries)
                .map(|_| state.backoff.sample(&mut state.rng))
                .collect();
            issue_retry_attempt(
                sim,
                cl,
                flow_idx,
                backoffs,
                Rc::clone(&state.entries),
                Rc::clone(&state.stats),
            );
        }
        let gap = SimDuration::from_secs_f64(state.rng.exponential(state.mean_gap.as_secs_f64()));
        schedule_retry_arrival(sim, gap, state);
    });
}

/// One attempt (first or retry) of a retry-storm request.
fn issue_retry_attempt(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    flow_idx: usize,
    mut backoffs: Vec<SimDuration>,
    entries: Rc<Vec<(ServiceId, usize)>>,
    stats: Rc<RefCell<Stats>>,
) {
    let (service, endpoint) = entries[flow_idx];
    stats.borrow_mut().per_flow[flow_idx].sent += 1;
    let started = sim.now();
    Cluster::submit_indexed(sim, cl, service, endpoint, move |sim, _cl, resp| {
        let latency = sim.now().saturating_since(started).as_secs_f64();
        record_outcome(&stats, flow_idx, resp.status, latency);
        if resp.status != Status::Ok && !stats.borrow().stopped {
            if let Some(delay) = backoffs.pop() {
                stats.borrow_mut().per_flow[flow_idx].retries += 1;
                icfl_obs::counter_add("icfl_loadgen_retries_total", &[], 1);
                sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
                    issue_retry_attempt(sim, cl, flow_idx, backoffs, entries, stats);
                });
            }
        }
    });
}

/// Shared response bookkeeping for the open-loop generator family.
fn record_outcome(stats: &Rc<RefCell<Stats>>, flow_idx: usize, status: Status, latency: f64) {
    let mut st = stats.borrow_mut();
    let fs = &mut st.per_flow[flow_idx];
    if status == Status::Ok {
        fs.ok += 1;
    } else {
        fs.err += 1;
    }
    fs.latency_sum_secs += latency;
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::steps;
    use icfl_micro::{ClusterSpec, FaultKind, ServiceSpec};
    use icfl_sim::SimTime;

    fn two_path_cluster(seed: u64) -> (Sim<Cluster>, Cluster) {
        // a exposes two endpoints: one calling b, one calling c.
        let spec = ClusterSpec::new("twopath")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(16)
                    .endpoint("path_b", vec![steps::compute_ms(1), steps::call("b", "/")])
                    .endpoint("path_c", vec![steps::compute_ms(1), steps::call("c", "/")]),
            )
            .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(5)]))
            .service(ServiceSpec::web("c").endpoint("/", vec![steps::compute_ms(5)]));
        let mut cl = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cl);
        (sim, cl)
    }

    fn two_flows() -> Vec<UserFlow> {
        vec![
            UserFlow::new("fb", "a", "path_b"),
            UserFlow::new("fc", "a", "path_c"),
        ]
    }

    #[test]
    fn closed_loop_generates_traffic_on_all_flows() {
        let (mut sim, mut cl) = two_path_cluster(1);
        let cfg = LoadConfig::closed_loop(two_flows());
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(30), &mut cl);
        let fb = h.flow_stats("fb");
        let fc = h.flow_stats("fc");
        assert!(fb.ok > 100, "fb={fb:?}");
        assert!(fc.ok > 100, "fc={fc:?}");
        assert_eq!(fb.err, 0);
        // Equal weights → roughly equal traffic.
        let ratio = fb.sent as f64 / fc.sent as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio={ratio}");
        assert!(fb.mean_latency_secs().unwrap() > 0.0);
    }

    #[test]
    fn replicas_scale_throughput_about_linearly() {
        let throughput = |replicas: usize| {
            let (mut sim, mut cl) = two_path_cluster(2);
            let cfg = LoadConfig::closed_loop(two_flows()).with_replicas(replicas);
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(30), &mut cl);
            h.total_sent() as f64
        };
        let t1 = throughput(1);
        let t4 = throughput(4);
        let scale = t4 / t1;
        assert!((3.0..5.0).contains(&scale), "scale={scale}");
    }

    #[test]
    fn weights_bias_flow_selection() {
        let (mut sim, mut cl) = two_path_cluster(3);
        let flows = vec![
            UserFlow::new("fb", "a", "path_b").with_weight(9.0),
            UserFlow::new("fc", "a", "path_c").with_weight(1.0),
        ];
        let cfg = LoadConfig::closed_loop(flows);
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(30), &mut cl);
        let frac = h.flow_stats("fb").sent as f64 / h.total_sent() as f64;
        assert!((0.85..0.95).contains(&frac), "frac={frac}");
    }

    #[test]
    fn closed_loop_confounder_fault_on_one_path_raises_the_other() {
        // The Fig. 2 phenomenon: break b, watch path_c's rate RISE.
        let rate_c = |fault_b: bool| {
            let (mut sim, mut cl) = two_path_cluster(4);
            if fault_b {
                let b = cl.service_id("b").unwrap();
                cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
            }
            let cfg = LoadConfig::closed_loop(two_flows());
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(30), &mut cl);
            h.flow_stats("fc").sent as f64 / 30.0
        };
        let normal = rate_c(false);
        let under_fault = rate_c(true);
        assert!(
            under_fault > normal * 1.02,
            "expected confounder: normal={normal} fault={under_fault}"
        );
    }

    #[test]
    fn open_loop_has_no_confounder() {
        let rate_c = |fault_b: bool| {
            let (mut sim, mut cl) = two_path_cluster(5);
            if fault_b {
                let b = cl.service_id("b").unwrap();
                cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
            }
            let cfg = LoadConfig::closed_loop(two_flows()).with_model(ArrivalModel::Open {
                rps_per_replica: 100.0,
            });
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(30), &mut cl);
            h.flow_stats("fc").sent as f64 / 30.0
        };
        let normal = rate_c(false);
        let under_fault = rate_c(true);
        let rel = (under_fault - normal).abs() / normal;
        assert!(rel < 0.1, "open loop should be invariant: rel={rel}");
    }

    #[test]
    fn open_loop_rate_scales_with_replicas() {
        // Satellite contract: `Open { rps_per_replica }` is multiplied by
        // `LoadConfig::replicas` — see `with_replicas`. Pin both the
        // absolute 1-replica rate and the 4× scaling.
        let sent = |replicas: usize| {
            let (mut sim, mut cl) = two_path_cluster(9);
            let cfg = LoadConfig::closed_loop(two_flows())
                .with_model(ArrivalModel::Open {
                    rps_per_replica: 50.0,
                })
                .with_replicas(replicas);
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(40), &mut cl);
            h.total_sent() as f64
        };
        let t1 = sent(1);
        let t4 = sent(4);
        // 50 rps × 40 s = 2000 expected arrivals for one replica.
        assert!((1800.0..2200.0).contains(&t1), "t1={t1}");
        let scale = t4 / t1;
        assert!((3.6..4.4).contains(&scale), "scale={scale}");
    }

    #[test]
    fn bursty_spikes_raise_arrival_rate() {
        let (mut sim, mut cl) = two_path_cluster(10);
        let cfg = LoadConfig::closed_loop(two_flows()).with_model(ArrivalModel::Bursty {
            base_rps_per_replica: 50.0,
            diurnal_amplitude: 0.0,
            diurnal_period: SimDuration::from_secs(1000),
            spike_every: SimDuration::from_secs(20),
            spike_duration: SimDuration::from_secs(5),
            spike_factor: 4.0,
        });
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        // First spike occupies [15s, 20s); [0s, 15s) is pre-spike baseline.
        sim.run_until(SimTime::from_secs(15), &mut cl);
        let pre = h.total_sent() as f64 / 15.0;
        sim.run_until(SimTime::from_secs(20), &mut cl);
        let during = (h.total_sent() as f64 - pre * 15.0) / 5.0;
        assert!((40.0..60.0).contains(&pre), "pre-spike rate={pre}");
        assert!(
            during > pre * 2.5,
            "spike should amplify: pre={pre} during={during}"
        );
    }

    #[test]
    fn bursty_diurnal_ramp_modulates_rate() {
        let (mut sim, mut cl) = two_path_cluster(11);
        let cfg = LoadConfig::closed_loop(two_flows()).with_model(ArrivalModel::Bursty {
            base_rps_per_replica: 50.0,
            diurnal_amplitude: 0.8,
            diurnal_period: SimDuration::from_secs(40),
            spike_every: SimDuration::ZERO,
            spike_duration: SimDuration::ZERO,
            spike_factor: 1.0,
        });
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        // sin > 0 over [0, 20): the "day". sin < 0 over [20, 40): the "night".
        sim.run_until(SimTime::from_secs(20), &mut cl);
        let day = h.total_sent() as f64;
        sim.run_until(SimTime::from_secs(40), &mut cl);
        let night = h.total_sent() as f64 - day;
        assert!(
            day > night * 1.5,
            "diurnal ramp should modulate: day={day} night={night}"
        );
    }

    #[test]
    fn retry_storm_amplifies_load_under_faults() {
        let run = |fault_b: bool| {
            let (mut sim, mut cl) = two_path_cluster(12);
            if fault_b {
                let b = cl.service_id("b").unwrap();
                cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
            }
            let cfg = LoadConfig::closed_loop(two_flows()).with_model(ArrivalModel::RetryStorm {
                rps_per_replica: 50.0,
                max_retries: 3,
                backoff: DurationDist::constant(SimDuration::from_millis(50)),
            });
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(20), &mut cl);
            (h.flow_stats("fb"), h.total_retries())
        };
        let (healthy, retries_healthy) = run(false);
        let (faulted, retries_faulted) = run(true);
        assert_eq!(retries_healthy, 0);
        assert_eq!(healthy.retries, 0);
        assert!(retries_faulted > 0, "faults should trigger retries");
        assert_eq!(faulted.retries, retries_faulted); // only fb fails
                                                      // Every failed first attempt is retried up to 3 times, so the
                                                      // issued-request count on the faulted flow roughly quadruples.
        let amp = faulted.sent as f64 / healthy.sent as f64;
        assert!(amp > 3.0, "retry amplification: amp={amp}");
    }

    #[test]
    fn stop_halts_request_generation() {
        let (mut sim, mut cl) = two_path_cluster(6);
        let cfg = LoadConfig::closed_loop(two_flows());
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(5), &mut cl);
        h.stop();
        let at_stop = h.total_sent();
        sim.run_until(SimTime::from_secs(10), &mut cl);
        assert_eq!(h.total_sent(), at_stop);
    }

    #[test]
    fn config_validation() {
        let (mut sim, mut cl) = two_path_cluster(7);
        assert_eq!(
            start_load(&mut sim, &mut cl, &LoadConfig::closed_loop(vec![])).unwrap_err(),
            LoadError::NoFlows
        );
        let ghost = LoadConfig::closed_loop(vec![UserFlow::new("f", "ghost", "/")]);
        assert_eq!(
            start_load(&mut sim, &mut cl, &ghost).unwrap_err(),
            LoadError::UnknownService("ghost".into())
        );
        let zero_w =
            LoadConfig::closed_loop(vec![UserFlow::new("fb", "a", "path_b").with_weight(0.0)]);
        assert_eq!(
            start_load(&mut sim, &mut cl, &zero_w).unwrap_err(),
            LoadError::ZeroTotalWeight
        );
        let zero_r = LoadConfig::closed_loop(two_flows()).with_replicas(0);
        assert_eq!(
            start_load(&mut sim, &mut cl, &zero_r).unwrap_err(),
            LoadError::ZeroReplicas
        );
    }

    #[test]
    fn errors_are_counted_per_flow() {
        let (mut sim, mut cl) = two_path_cluster(8);
        let b = cl.service_id("b").unwrap();
        cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
        let cfg = LoadConfig::closed_loop(two_flows());
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(10), &mut cl);
        let fb = h.flow_stats("fb");
        let fc = h.flow_stats("fc");
        assert!(fb.err > 0 && fb.ok == 0, "fb={fb:?}");
        assert!(fc.err == 0 && fc.ok > 0, "fc={fc:?}");
    }
}
