//! # icfl-loadgen — Locust-style load generation for the simulated cluster
//!
//! Reproduces the paper's load-generation service (§V-A): a configurable
//! number of *closed-loop* users who repeatedly pick a weighted userflow,
//! issue the request, wait for the response, think, and go again. Closed-
//! loop behavior is essential: it is what turns a fail-fast fault on one
//! path into *increased* request rate on sibling paths (the §III-C load
//! confounder, Fig. 2). An open-loop Poisson model is provided for
//! ablations where the confounder must be absent.
//!
//! Load scale (the paper's 1× vs 4×) is the `replicas` knob: each replica
//! adds `users_per_replica` users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfl_micro::{Cluster, ServiceId, Status};
use icfl_sim::{DurationDist, Rng, Sim, SimDuration};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One user-visible flow: an entry service + endpoint with a pick weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserFlow {
    /// Flow name (e.g. `"path_bce"`).
    pub name: String,
    /// Entry service name (CausalBench: always `"a"`).
    pub entry_service: String,
    /// Endpoint invoked on the entry service.
    pub endpoint: String,
    /// Relative pick weight (must be positive to ever be chosen).
    pub weight: f64,
}

impl UserFlow {
    /// Creates a flow with weight 1.
    pub fn new(
        name: impl Into<String>,
        entry_service: impl Into<String>,
        endpoint: impl Into<String>,
    ) -> Self {
        UserFlow {
            name: name.into(),
            entry_service: entry_service.into(),
            endpoint: endpoint.into(),
            weight: 1.0,
        }
    }

    /// Overrides the pick weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// How requests are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Locust-style users: issue → wait for response → think → repeat.
    ClosedLoop {
        /// Users per load-generator replica (paper: 10).
        users_per_replica: usize,
        /// Think time between a response and the next request.
        think_time: DurationDist,
    },
    /// Poisson arrivals at a fixed aggregate rate, independent of response
    /// times (no queueing feedback — used to ablate the Fig. 2 confounder).
    Open {
        /// Aggregate requests per second per replica, split by flow weight.
        rps_per_replica: f64,
    },
}

impl Default for ArrivalModel {
    fn default() -> Self {
        ArrivalModel::ClosedLoop {
            users_per_replica: 10,
            think_time: DurationDist::exponential(SimDuration::from_millis(100)),
        }
    }
}

/// Full load-generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// The flows users pick from.
    pub flows: Vec<UserFlow>,
    /// Arrival model.
    pub model: ArrivalModel,
    /// Number of load-generator replicas (1 = the paper's 1× load,
    /// 4 = its 4×).
    pub replicas: usize,
}

impl LoadConfig {
    /// A closed-loop config with the paper's defaults (10 users/replica).
    pub fn closed_loop(flows: Vec<UserFlow>) -> Self {
        LoadConfig {
            flows,
            model: ArrivalModel::default(),
            replicas: 1,
        }
    }

    /// Sets the replica count (load scale), returning `self`.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the arrival model, returning `self`.
    pub fn with_model(mut self, model: ArrivalModel) -> Self {
        self.model = model;
        self
    }
}

/// Errors raised when starting a load generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A flow references a service the cluster does not have.
    UnknownService(String),
    /// No flows were configured.
    NoFlows,
    /// All flow weights are zero or negative.
    ZeroTotalWeight,
    /// `replicas == 0`.
    ZeroReplicas,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::UnknownService(s) => write!(f, "flow references unknown service: {s}"),
            LoadError::NoFlows => write!(f, "load config has no flows"),
            LoadError::ZeroTotalWeight => write!(f, "all flow weights are non-positive"),
            LoadError::ZeroReplicas => write!(f, "replicas must be at least 1"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Per-flow outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Requests issued.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses (any non-2xx).
    pub err: u64,
    /// Sum of end-to-end latencies in seconds (divide by `ok + err` for the
    /// mean).
    pub latency_sum_secs: f64,
}

impl FlowStats {
    /// Mean end-to-end latency over completed requests, if any completed.
    pub fn mean_latency_secs(&self) -> Option<f64> {
        let done = self.ok + self.err;
        if done == 0 {
            None
        } else {
            Some(self.latency_sum_secs / done as f64)
        }
    }
}

/// Internal counters, indexed by flow position in the config — the hot path
/// bumps a `Vec` slot instead of hashing flow-name strings per request.
#[derive(Debug, Default)]
struct Stats {
    names: Vec<String>,
    per_flow: Vec<FlowStats>,
    stopped: bool,
}

impl Stats {
    fn idx(&self, flow: &str) -> Option<usize> {
        self.names.iter().position(|n| n == flow)
    }
}

/// Handle to a running load generator: live statistics and a stop switch.
#[derive(Clone)]
pub struct LoadHandle {
    stats: Rc<RefCell<Stats>>,
}

impl std::fmt::Debug for LoadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats.borrow();
        f.debug_struct("LoadHandle")
            .field("flows", &s.names.len())
            .field("stopped", &s.stopped)
            .finish()
    }
}

impl LoadHandle {
    /// Snapshot of one flow's counters.
    pub fn flow_stats(&self, flow: &str) -> FlowStats {
        let s = self.stats.borrow();
        s.idx(flow).map(|i| s.per_flow[i]).unwrap_or_default()
    }

    /// Snapshot of all flows' counters.
    pub fn all_stats(&self) -> HashMap<String, FlowStats> {
        let s = self.stats.borrow();
        s.names
            .iter()
            .cloned()
            .zip(s.per_flow.iter().copied())
            .collect()
    }

    /// Total requests issued across flows.
    pub fn total_sent(&self) -> u64 {
        self.stats.borrow().per_flow.iter().map(|s| s.sent).sum()
    }

    /// Stops the generator: users finish their in-flight request and do not
    /// issue another; open-loop arrivals cease.
    pub fn stop(&self) {
        self.stats.borrow_mut().stopped = true;
    }
}

/// Starts load generation on a simulation.
///
/// # Errors
///
/// Returns a [`LoadError`] if the config is empty, has no positive weights,
/// zero replicas, or references unknown services.
///
/// # Examples
///
/// ```
/// use icfl_loadgen::{start_load, LoadConfig, UserFlow};
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps};
/// use icfl_sim::{Sim, SimTime};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 1)?;
/// let mut sim = Sim::new(1);
/// Cluster::start(&mut sim, &mut cluster);
///
/// let cfg = LoadConfig::closed_loop(vec![UserFlow::new("root", "a", "/")]);
/// let handle = start_load(&mut sim, &mut cluster, &cfg).unwrap();
/// sim.run_until(SimTime::from_secs(10), &mut cluster);
/// assert!(handle.flow_stats("root").ok > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn start_load(
    sim: &mut Sim<Cluster>,
    cluster: &mut Cluster,
    config: &LoadConfig,
) -> Result<LoadHandle, LoadError> {
    if config.flows.is_empty() {
        return Err(LoadError::NoFlows);
    }
    if config.replicas == 0 {
        return Err(LoadError::ZeroReplicas);
    }
    let weights: Vec<f64> = config.flows.iter().map(|f| f.weight).collect();
    if !weights.iter().any(|w| w.is_finite() && *w > 0.0) {
        return Err(LoadError::ZeroTotalWeight);
    }
    // Resolve entry services and endpoint indices up front so the per-request
    // path never hashes a name string.
    let entries: Vec<(ServiceId, usize)> = config
        .flows
        .iter()
        .map(|f| {
            let id = cluster
                .service_id(&f.entry_service)
                .ok_or_else(|| LoadError::UnknownService(f.entry_service.clone()))?;
            let ep = cluster.endpoint_id(id, &f.endpoint).unwrap_or_else(|| {
                panic!("service {} has no endpoint {}", f.entry_service, f.endpoint)
            });
            Ok((id, ep))
        })
        .collect::<Result<_, _>>()?;

    let stats = Rc::new(RefCell::new(Stats {
        names: config.flows.iter().map(|f| f.name.clone()).collect(),
        per_flow: vec![FlowStats::default(); config.flows.len()],
        stopped: false,
    }));
    let entries = Rc::new(entries);
    let weights = Rc::new(weights);

    match config.model {
        ArrivalModel::ClosedLoop {
            users_per_replica,
            think_time,
        } => {
            let total_users = users_per_replica * config.replicas;
            for u in 0..total_users {
                let rng = sim.rng().fork(&format!("loadgen/user/{u}"));
                // Stagger user start times across one think period to avoid
                // a thundering herd at t=0.
                let mut start_rng = rng.clone();
                let offset = SimDuration::from_secs_f64(start_rng.uniform_f64() * 0.2);
                schedule_user_iteration(
                    sim,
                    offset,
                    UserState {
                        rng: start_rng,
                        think_time,
                        entries: Rc::clone(&entries),
                        weights: Rc::clone(&weights),
                        stats: Rc::clone(&stats),
                    },
                );
            }
        }
        ArrivalModel::Open { rps_per_replica } => {
            let rate = rps_per_replica * config.replicas as f64;
            if rate > 0.0 {
                let rng = sim.rng().fork("loadgen/open");
                schedule_open_arrival(
                    sim,
                    SimDuration::ZERO,
                    OpenState {
                        rng,
                        mean_gap: SimDuration::from_secs_f64(1.0 / rate),
                        entries: Rc::clone(&entries),
                        weights: Rc::clone(&weights),
                        stats: Rc::clone(&stats),
                    },
                );
            }
        }
    }
    Ok(LoadHandle { stats })
}

struct UserState {
    rng: Rng,
    think_time: DurationDist,
    entries: Rc<Vec<(ServiceId, usize)>>,
    weights: Rc<Vec<f64>>,
    stats: Rc<RefCell<Stats>>,
}

fn schedule_user_iteration(sim: &mut Sim<Cluster>, delay: SimDuration, mut user: UserState) {
    sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
        if user.stats.borrow().stopped {
            return;
        }
        let Some(flow_idx) = user.rng.weighted_index(&user.weights) else {
            return;
        };
        let (service, endpoint) = user.entries[flow_idx];
        user.stats.borrow_mut().per_flow[flow_idx].sent += 1;
        let started = sim.now();
        let stats = Rc::clone(&user.stats);
        Cluster::submit_indexed(sim, cl, service, endpoint, move |sim, _cl, resp| {
            let latency = sim.now().saturating_since(started).as_secs_f64();
            {
                let mut st = stats.borrow_mut();
                let fs = &mut st.per_flow[flow_idx];
                if resp.status == Status::Ok {
                    fs.ok += 1;
                } else {
                    fs.err += 1;
                }
                fs.latency_sum_secs += latency;
            }
            let think = user.think_time.sample(&mut user.rng);
            schedule_user_iteration(sim, think, user);
        });
    });
}

struct OpenState {
    rng: Rng,
    mean_gap: SimDuration,
    entries: Rc<Vec<(ServiceId, usize)>>,
    weights: Rc<Vec<f64>>,
    stats: Rc<RefCell<Stats>>,
}

fn schedule_open_arrival(sim: &mut Sim<Cluster>, delay: SimDuration, mut state: OpenState) {
    sim.schedule_after(delay, move |sim, cl: &mut Cluster| {
        if state.stats.borrow().stopped {
            return;
        }
        if let Some(flow_idx) = state.rng.weighted_index(&state.weights) {
            let (service, endpoint) = state.entries[flow_idx];
            state.stats.borrow_mut().per_flow[flow_idx].sent += 1;
            let started = sim.now();
            let stats = Rc::clone(&state.stats);
            Cluster::submit_indexed(sim, cl, service, endpoint, move |sim, _cl, resp| {
                let latency = sim.now().saturating_since(started).as_secs_f64();
                let mut st = stats.borrow_mut();
                let fs = &mut st.per_flow[flow_idx];
                if resp.status == Status::Ok {
                    fs.ok += 1;
                } else {
                    fs.err += 1;
                }
                fs.latency_sum_secs += latency;
            });
        }
        let gap = SimDuration::from_secs_f64(state.rng.exponential(state.mean_gap.as_secs_f64()));
        schedule_open_arrival(sim, gap, state);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::steps;
    use icfl_micro::{ClusterSpec, FaultKind, ServiceSpec};
    use icfl_sim::SimTime;

    fn two_path_cluster(seed: u64) -> (Sim<Cluster>, Cluster) {
        // a exposes two endpoints: one calling b, one calling c.
        let spec = ClusterSpec::new("twopath")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(16)
                    .endpoint("path_b", vec![steps::compute_ms(1), steps::call("b", "/")])
                    .endpoint("path_c", vec![steps::compute_ms(1), steps::call("c", "/")]),
            )
            .service(ServiceSpec::web("b").endpoint("/", vec![steps::compute_ms(5)]))
            .service(ServiceSpec::web("c").endpoint("/", vec![steps::compute_ms(5)]));
        let mut cl = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cl);
        (sim, cl)
    }

    fn two_flows() -> Vec<UserFlow> {
        vec![
            UserFlow::new("fb", "a", "path_b"),
            UserFlow::new("fc", "a", "path_c"),
        ]
    }

    #[test]
    fn closed_loop_generates_traffic_on_all_flows() {
        let (mut sim, mut cl) = two_path_cluster(1);
        let cfg = LoadConfig::closed_loop(two_flows());
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(30), &mut cl);
        let fb = h.flow_stats("fb");
        let fc = h.flow_stats("fc");
        assert!(fb.ok > 100, "fb={fb:?}");
        assert!(fc.ok > 100, "fc={fc:?}");
        assert_eq!(fb.err, 0);
        // Equal weights → roughly equal traffic.
        let ratio = fb.sent as f64 / fc.sent as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio={ratio}");
        assert!(fb.mean_latency_secs().unwrap() > 0.0);
    }

    #[test]
    fn replicas_scale_throughput_about_linearly() {
        let throughput = |replicas: usize| {
            let (mut sim, mut cl) = two_path_cluster(2);
            let cfg = LoadConfig::closed_loop(two_flows()).with_replicas(replicas);
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(30), &mut cl);
            h.total_sent() as f64
        };
        let t1 = throughput(1);
        let t4 = throughput(4);
        let scale = t4 / t1;
        assert!((3.0..5.0).contains(&scale), "scale={scale}");
    }

    #[test]
    fn weights_bias_flow_selection() {
        let (mut sim, mut cl) = two_path_cluster(3);
        let flows = vec![
            UserFlow::new("fb", "a", "path_b").with_weight(9.0),
            UserFlow::new("fc", "a", "path_c").with_weight(1.0),
        ];
        let cfg = LoadConfig::closed_loop(flows);
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(30), &mut cl);
        let frac = h.flow_stats("fb").sent as f64 / h.total_sent() as f64;
        assert!((0.85..0.95).contains(&frac), "frac={frac}");
    }

    #[test]
    fn closed_loop_confounder_fault_on_one_path_raises_the_other() {
        // The Fig. 2 phenomenon: break b, watch path_c's rate RISE.
        let rate_c = |fault_b: bool| {
            let (mut sim, mut cl) = two_path_cluster(4);
            if fault_b {
                let b = cl.service_id("b").unwrap();
                cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
            }
            let cfg = LoadConfig::closed_loop(two_flows());
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(30), &mut cl);
            h.flow_stats("fc").sent as f64 / 30.0
        };
        let normal = rate_c(false);
        let under_fault = rate_c(true);
        assert!(
            under_fault > normal * 1.02,
            "expected confounder: normal={normal} fault={under_fault}"
        );
    }

    #[test]
    fn open_loop_has_no_confounder() {
        let rate_c = |fault_b: bool| {
            let (mut sim, mut cl) = two_path_cluster(5);
            if fault_b {
                let b = cl.service_id("b").unwrap();
                cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
            }
            let cfg = LoadConfig::closed_loop(two_flows()).with_model(ArrivalModel::Open {
                rps_per_replica: 100.0,
            });
            let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
            sim.run_until(SimTime::from_secs(30), &mut cl);
            h.flow_stats("fc").sent as f64 / 30.0
        };
        let normal = rate_c(false);
        let under_fault = rate_c(true);
        let rel = (under_fault - normal).abs() / normal;
        assert!(rel < 0.1, "open loop should be invariant: rel={rel}");
    }

    #[test]
    fn stop_halts_request_generation() {
        let (mut sim, mut cl) = two_path_cluster(6);
        let cfg = LoadConfig::closed_loop(two_flows());
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(5), &mut cl);
        h.stop();
        let at_stop = h.total_sent();
        sim.run_until(SimTime::from_secs(10), &mut cl);
        assert_eq!(h.total_sent(), at_stop);
    }

    #[test]
    fn config_validation() {
        let (mut sim, mut cl) = two_path_cluster(7);
        assert_eq!(
            start_load(&mut sim, &mut cl, &LoadConfig::closed_loop(vec![])).unwrap_err(),
            LoadError::NoFlows
        );
        let ghost = LoadConfig::closed_loop(vec![UserFlow::new("f", "ghost", "/")]);
        assert_eq!(
            start_load(&mut sim, &mut cl, &ghost).unwrap_err(),
            LoadError::UnknownService("ghost".into())
        );
        let zero_w =
            LoadConfig::closed_loop(vec![UserFlow::new("fb", "a", "path_b").with_weight(0.0)]);
        assert_eq!(
            start_load(&mut sim, &mut cl, &zero_w).unwrap_err(),
            LoadError::ZeroTotalWeight
        );
        let zero_r = LoadConfig::closed_loop(two_flows()).with_replicas(0);
        assert_eq!(
            start_load(&mut sim, &mut cl, &zero_r).unwrap_err(),
            LoadError::ZeroReplicas
        );
    }

    #[test]
    fn errors_are_counted_per_flow() {
        let (mut sim, mut cl) = two_path_cluster(8);
        let b = cl.service_id("b").unwrap();
        cl.set_fault(b, Some(FaultKind::ServiceUnavailable));
        let cfg = LoadConfig::closed_loop(two_flows());
        let h = start_load(&mut sim, &mut cl, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(10), &mut cl);
        let fb = h.flow_stats("fb");
        let fc = h.flow_stats("fc");
        assert!(fb.err > 0 && fb.ok == 0, "fb={fb:?}");
        assert!(fc.err == 0 && fc.ok > 0, "fc={fc:?}");
    }
}
