//! Property-based tests for the load generator: accounting identities and
//! weight-proportionality under arbitrary configurations.

use icfl_loadgen::{start_load, ArrivalModel, LoadConfig, UserFlow};
use icfl_micro::{steps, Cluster, ClusterSpec, ServiceSpec};
use icfl_sim::{DurationDist, Sim, SimDuration, SimTime};
use proptest::prelude::*;

fn simple_app(n_endpoints: usize) -> (ClusterSpec, Vec<UserFlow>) {
    let mut svc = ServiceSpec::web("front").with_concurrency(32);
    let mut flows = Vec::new();
    for i in 0..n_endpoints {
        let ep = format!("/e{i}");
        svc = svc.endpoint(&ep, vec![steps::compute_ms(1)]);
        flows.push(UserFlow::new(format!("f{i}"), "front", ep));
    }
    (ClusterSpec::new("prop").service(svc), flows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// sent == ok + err per flow once quiescent, for any mix of users,
    /// replicas and think times.
    #[test]
    fn flow_accounting_balances(
        seed in any::<u64>(),
        users in 1usize..8,
        replicas in 1usize..4,
        think_ms in 10u64..300,
        n_flows in 1usize..4,
    ) {
        let (spec, flows) = simple_app(n_flows);
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let cfg = LoadConfig {
            flows,
            model: ArrivalModel::ClosedLoop {
                users_per_replica: users,
                think_time: DurationDist::exponential(SimDuration::from_millis(think_ms)),
            },
            replicas,
        };
        let handle = start_load(&mut sim, &mut cluster, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(20), &mut cluster);
        handle.stop();
        // Let in-flight requests finish.
        sim.run_until(SimTime::from_secs(40), &mut cluster);
        for (_, fs) in handle.all_stats() {
            prop_assert_eq!(fs.sent, fs.ok + fs.err, "{:?}", fs);
            prop_assert_eq!(fs.err, 0);
        }
        prop_assert!(handle.total_sent() > 0);
    }

    /// Flow pick fractions track the configured weights.
    #[test]
    fn weights_are_respected(
        seed in any::<u64>(),
        w0 in 1.0f64..10.0,
        w1 in 1.0f64..10.0,
    ) {
        let (spec, mut flows) = simple_app(2);
        flows[0].weight = w0;
        flows[1].weight = w1;
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let cfg = LoadConfig::closed_loop(flows);
        let handle = start_load(&mut sim, &mut cluster, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(60), &mut cluster);
        let s0 = handle.flow_stats("f0").sent as f64;
        let s1 = handle.flow_stats("f1").sent as f64;
        let expected = w0 / (w0 + w1);
        let observed = s0 / (s0 + s1);
        prop_assert!(
            (observed - expected).abs() < 0.06,
            "w0={w0} w1={w1} expected={expected} observed={observed}"
        );
    }

    /// Open-loop arrival counts are near the configured rate.
    #[test]
    fn open_loop_rate_calibrated(
        seed in any::<u64>(),
        rps in 10.0f64..100.0,
    ) {
        let (spec, flows) = simple_app(1);
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        let cfg = LoadConfig::closed_loop(flows)
            .with_model(ArrivalModel::Open { rps_per_replica: rps });
        let handle = start_load(&mut sim, &mut cluster, &cfg).unwrap();
        sim.run_until(SimTime::from_secs(60), &mut cluster);
        let observed = handle.total_sent() as f64 / 60.0;
        prop_assert!(
            (observed - rps).abs() < rps * 0.2 + 2.0,
            "configured={rps} observed={observed}"
        );
    }
}
