//! The externally fed session must be indistinguishable from the
//! simulation-driven one: a trace recorded from a scenario and replayed
//! through a [`FeedSession`] — scrape by scrape, as a socket consumer
//! would — yields exactly the detections, localizations, and resolutions
//! that [`OnlineSession::run`] produced watching the same scenario live.
//! This is the determinism property the server's loopback test then pins
//! across a real TCP connection.

use icfl_apps::pattern1;
use icfl_core::{CampaignRun, CausalModel, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{
    record_trace, Episode, FeedConfig, FeedSession, IncidentSchedule, OnlineConfig, OnlineSession,
};
use icfl_scenario::ScrapeTrace;
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;

fn trained_model() -> CausalModel {
    let app = pattern1();
    let cfg = RunConfig::quick(42);
    let run = CampaignRun::execute(&app, &cfg).unwrap();
    run.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap()
}

fn schedule() -> IncidentSchedule {
    let app = pattern1();
    let (_, targets) = app.build(42).unwrap();
    IncidentSchedule::new(vec![
        Episode::single(
            SimTime::from_secs(100),
            targets[0],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
        Episode::single(
            SimTime::from_secs(260),
            targets[1],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
    ])
}

fn replay(model: CausalModel, trace: &ScrapeTrace, cfg: &OnlineConfig) -> FeedSession {
    let mut feed = FeedSession::new(
        model,
        trace.meta.service_names.clone(),
        FeedConfig::from_online(cfg),
    )
    .unwrap();
    for (at, row) in &trace.scrapes {
        feed.push(SimTime::from_nanos(*at), row.clone()).unwrap();
    }
    feed
}

#[test]
fn feed_replay_matches_live_session() {
    let app = pattern1();
    let model = trained_model();
    let schedule = schedule();
    let cfg = OnlineConfig::quick();

    let report = OnlineSession::run(&app, &model, &schedule, &cfg, 42).unwrap();
    let trace = record_trace(&app, &schedule, &cfg, 42).unwrap();
    let feed = replay(model, &trace, &cfg);
    let verdicts = feed.verdicts();

    // Every episode the live session detected appears as a feed verdict
    // with the same decision timeline and the same ranked localization.
    let detected: Vec<_> = report.incidents.iter().filter(|i| i.detected).collect();
    assert!(
        !detected.is_empty(),
        "fixture session must detect incidents"
    );
    assert_eq!(report.incidents.len(), 2);
    assert_eq!(
        verdicts.len(),
        detected.len() + report.false_alarms,
        "feed tracked a different incident count"
    );
    for inc in &detected {
        let confirmed_at = inc.injected_start_secs + inc.time_to_detect_secs.unwrap();
        let v = verdicts
            .iter()
            .find(|v| (v.confirmed_at_secs - confirmed_at).abs() < 1e-9)
            .unwrap_or_else(|| panic!("no feed verdict confirmed at {confirmed_at}"));
        assert_eq!(v.ranked, inc.ranked, "ranked localization diverged");
        assert_eq!(&v.top1, &inc.top1, "top-1 diverged");
        let localized_at = inc
            .time_to_localize_secs
            .map(|t| inc.injected_start_secs + t);
        assert_eq!(v.localized_at_secs, localized_at);
        assert_eq!(v.resolved_at_secs, inc.resolved_secs);
    }

    // Windowing agrees too: one window per hop over the same horizon.
    assert_eq!(feed.windows_emitted(), report.windows_ingested);
    assert_eq!(feed.scrapes_ingested(), trace.scrapes.len() as u64);
}

#[test]
fn feed_replay_is_deterministic_across_runs() {
    let app = pattern1();
    let model = trained_model();
    let schedule = schedule();
    let cfg = OnlineConfig::quick();
    let trace = record_trace(&app, &schedule, &cfg, 42).unwrap();

    // Same trace, fresh sessions → byte-identical verdict JSON; and the
    // trace itself re-records byte-identically.
    let a = serde_json::to_string(&replay(trained_model(), &trace, &cfg).verdicts()).unwrap();
    let b = serde_json::to_string(&replay(model, &trace, &cfg).verdicts()).unwrap();
    assert_eq!(a, b);
    let again = record_trace(&app, &schedule, &cfg, 42).unwrap();
    assert_eq!(trace.to_jsonl(), again.to_jsonl());
}

#[test]
fn feed_rejects_bad_input() {
    let model = trained_model();
    let names: Vec<String> = (0..model.num_services()).map(|i| format!("s{i}")).collect();
    let cfg = FeedConfig::from_online(&OnlineConfig::quick());

    // Wrong name count.
    assert!(FeedSession::new(trained_model(), names[1..].to_vec(), cfg.clone()).is_err());

    let mut feed = FeedSession::new(model, names.clone(), cfg).unwrap();
    let row = vec![icfl_micro::Counters::default(); names.len()];
    feed.push(SimTime::from_secs(1), row.clone()).unwrap();
    // Out-of-order and equal timestamps are rejected; state is unchanged.
    assert!(feed.push(SimTime::from_secs(1), row.clone()).is_err());
    assert!(feed.push(SimTime::ZERO, row.clone()).is_err());
    // Wrong row width.
    assert!(feed.push(SimTime::from_secs(2), row[1..].to_vec()).is_err());
    // Absurd time jump trips the tick cap instead of spinning.
    assert!(feed.push(SimTime::MAX, row).is_err());
    assert_eq!(feed.scrapes_ingested(), 1);
}
