//! Crash-safety of the online inference state: a session whose inference
//! service is serialized, destroyed, and restored at an arbitrary
//! detection tick must produce a report byte-identical to an
//! uninterrupted run — on clean telemetry and under heavy degradation,
//! and regardless of the worker-thread count used to train the model.

use icfl_apps::pattern1;
use icfl_core::{CampaignRun, CausalModel, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{Episode, IncidentSchedule, OnlineConfig, OnlineSession};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::{DegradationConfig, MetricCatalog};

fn trained_model(threads: usize) -> CausalModel {
    let app = pattern1();
    let cfg = RunConfig::quick(42).with_threads(threads);
    let run = CampaignRun::execute(&app, &cfg).unwrap();
    run.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap()
}

fn schedule() -> IncidentSchedule {
    let app = pattern1();
    let (_, targets) = app.build(42).unwrap();
    IncidentSchedule::new(vec![
        Episode::single(
            SimTime::from_secs(100),
            targets[0],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
        Episode::single(
            SimTime::from_secs(260),
            targets[1],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
    ])
}

/// "Random" interrupt points: window boundaries spread across the whole
/// session, including tick 0 (before any window is retained) and ticks
/// inside both incident episodes.
const INTERRUPT_TICKS: [u64; 4] = [0, 11, 23, 52];

#[test]
fn interrupted_session_report_is_byte_identical() {
    let app = pattern1();
    let model = trained_model(1);
    let schedule = schedule();
    let cfg = OnlineConfig::quick();

    let baseline = OnlineSession::run(&app, &model, &schedule, &cfg, 42)
        .unwrap()
        .to_json()
        .unwrap();
    for tick in INTERRUPT_TICKS {
        let resumed = OnlineSession::run_with_interruption(&app, &model, &schedule, &cfg, 42, tick)
            .unwrap()
            .to_json()
            .unwrap();
        assert_eq!(
            baseline, resumed,
            "report diverged after a crash-restart at tick {tick}"
        );
    }
}

#[test]
fn interrupted_degraded_session_report_is_byte_identical() {
    // The checkpoint must also capture the degrader's RNG stream and the
    // engine's reorder buffer mid-flight: interrupt under drops, delays,
    // duplicates, and counter resets all enabled.
    let app = pattern1();
    let model = trained_model(1);
    let schedule = schedule();
    let cfg = OnlineConfig::quick().with_degradation(
        DegradationConfig::none(icfl_scenario::seeds::degradation(42))
            .with_drop(0.10)
            .with_delay(0.10, 2)
            .with_duplicates(0.05)
            .with_resets(0.002),
    );

    let baseline = OnlineSession::run(&app, &model, &schedule, &cfg, 42).unwrap();
    assert!(
        !baseline.degraded.is_clean(),
        "the degraded arm must actually degrade telemetry"
    );
    let baseline = baseline.to_json().unwrap();
    for tick in INTERRUPT_TICKS {
        let resumed = OnlineSession::run_with_interruption(&app, &model, &schedule, &cfg, 42, tick)
            .unwrap()
            .to_json()
            .unwrap();
        assert_eq!(
            baseline, resumed,
            "degraded report diverged after a crash-restart at tick {tick}"
        );
    }
}

#[test]
fn thread_count_never_reaches_the_session_report() {
    // Models trained at 1, 2, and max worker threads are byte-identical,
    // so the sessions (and their interrupted replays) are too.
    let app = pattern1();
    let schedule = schedule();
    let cfg = OnlineConfig::quick();
    let max = std::thread::available_parallelism().map_or(4, usize::from);

    let mut reports = Vec::new();
    for threads in [1, 2, max] {
        let model = trained_model(threads);
        let report = OnlineSession::run_with_interruption(&app, &model, &schedule, &cfg, 42, 23)
            .unwrap()
            .to_json()
            .unwrap();
        reports.push(report);
    }
    assert_eq!(reports[0], reports[1], "1-thread vs 2-thread training");
    assert_eq!(reports[0], reports[2], "1-thread vs {max}-thread training");
}
