//! Instance-granularity online localization: a model learned over replica
//! rows, fed an instance-granularity scrape stream, produces verdicts that
//! *name the replica* — `"B@1"`, not just `"B"` — because the feed's
//! service names are the cluster's row labels and Algorithm 2 votes over
//! rows. This is the gray-failure story end to end: a single degraded
//! replica is invisible in service aggregates at fleet scale, but the
//! per-row pipeline pins it.

use icfl_apps::gray_app;
use icfl_core::{InstanceCampaignRun, RunConfig};
use icfl_faults::InterventionTrace;
use icfl_micro::{FaultKind, ServiceId, TargetId};
use icfl_online::{FeedConfig, FeedSession, OnlineConfig};
use icfl_scenario::{Scenario, TraceTap};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;

fn gray_fault() -> FaultKind {
    FaultKind::DegradedReplica {
        latency_factor: 8.0,
        error_prob: 0.3,
    }
}

#[test]
fn instance_model_verdicts_name_the_replica() {
    let app = gray_app(3);
    let cfg = RunConfig::quick(42).with_fault(gray_fault());
    let campaign = InstanceCampaignRun::execute(&app, &cfg).unwrap();
    let model = campaign
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    let labels = campaign.labels().to_vec();
    assert_eq!(labels, ["A", "B@0", "B@1", "B@2", "C"]);
    assert_eq!(model.num_services(), 5);

    // Record an instance-granularity scrape stream: fresh traffic (seed 7)
    // with a gray fault on B's second replica mid-stream.
    let b = ServiceId::from_index(1);
    let trace = InterventionTrace::new();
    let (mut scenario, sink) = Scenario::builder(&app, 7)
        .target_fault_between(
            TargetId::Instance(b, 1),
            gray_fault(),
            SimTime::from_secs(100),
            SimTime::from_secs(160),
            &trace,
        )
        .build_with(TraceTap::instances(SimDuration::from_secs(1)))
        .unwrap();
    scenario.run_until(SimTime::from_secs(220));
    let scrapes = sink.take();
    assert_eq!(
        scrapes[0].1.len(),
        5,
        "stream must carry one row per replica"
    );

    // Replay through an externally fed session named by row labels.
    let mut feed = FeedSession::new(
        model,
        labels,
        FeedConfig::from_online(&OnlineConfig::quick()),
    )
    .unwrap();
    for (at, row) in scrapes {
        feed.push(SimTime::from_nanos(at), row).unwrap();
    }

    let verdicts = feed.verdicts();
    assert!(!verdicts.is_empty(), "gray incident went undetected");
    let named: Vec<&str> = verdicts.iter().filter_map(|v| v.top1.as_deref()).collect();
    assert!(
        named.contains(&"B@1"),
        "no verdict named the degraded replica: {named:?}"
    );
    // The intervention audit trail carries the replica too.
    let entries = trace.entries();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].replica, Some(1));
    assert_eq!(entries[0].service, b);
}
