//! Property-based tests for the incident-detector state machine — under
//! arbitrary interleavings of suspect/clear signals it never resolves an
//! incident it hasn't confirmed, never double-counts one, and all of its
//! counters stay consistent with the event stream it emits — and for the
//! forensic evidence chains: for any generated verdict, the per-candidate
//! score breakdowns account for the reported Algorithm-2 scores
//! bit-for-bit, and chain serialization round-trips byte-equal.

use icfl_core::{CampaignRun, CausalModel, Localization, MetricVote, RunConfig};
use icfl_micro::ServiceId;
use icfl_online::{
    verdict_evidence, DebounceConfig, DetectorEvent, EvidenceChain, IncidentPhase,
    IncidentStateMachine, ModelMeta, ModelProvenance, TransitionEvidence, WindowEvidence,
    CHAIN_FORMAT_VERSION,
};
use icfl_telemetry::{MetricCatalog, WindowValidity};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn machine(confirm: u32, clear: u32, cooldown: u32) -> IncidentStateMachine {
    IncidentStateMachine::new(DebounceConfig {
        confirm_ticks: confirm,
        clear_ticks: clear,
        cooldown_ticks: cooldown,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Resolved` can only follow an unmatched `Confirmed`, each incident
    /// resolves at most once, and the machine's own counters agree with
    /// the events it emitted.
    #[test]
    fn never_resolves_before_confirming_and_never_double_counts(
        signals in proptest::collection::vec(any::<bool>(), 0..300),
        confirm in 1u32..5,
        clear in 1u32..5,
        cooldown in 0u32..4,
    ) {
        let mut m = machine(confirm, clear, cooldown);
        let mut confirmed = 0u64;
        let mut resolved = 0u64;
        for (i, &suspect) in signals.iter().enumerate() {
            match m.step(suspect) {
                Some(DetectorEvent::Confirmed) => {
                    // A new incident may only open once the previous one
                    // has resolved — this is exactly "never double-counts".
                    prop_assert_eq!(
                        confirmed, resolved,
                        "tick {}: confirmed a new incident while one is open", i
                    );
                    confirmed += 1;
                }
                Some(DetectorEvent::Resolved) => {
                    // Resolution requires an open confirmed incident —
                    // "never resolved before confirmed".
                    prop_assert_eq!(
                        resolved + 1, confirmed,
                        "tick {}: resolved with no open incident", i
                    );
                    resolved += 1;
                }
                Some(DetectorEvent::Suspected) | Some(DetectorEvent::Dismissed) | None => {}
            }
            prop_assert!(resolved <= confirmed);
            prop_assert!(confirmed - resolved <= 1, "more than one open incident");
            prop_assert_eq!(m.confirmed_count(), confirmed);
            prop_assert_eq!(m.resolved_count(), resolved);
        }
    }

    /// The emitted event stream is well-formed as a whole: lifecycle events
    /// strictly alternate (Confirmed, Resolved, Confirmed, ...), and a
    /// Suspected is always terminated by exactly one Confirmed or
    /// Dismissed before the next Suspected.
    #[test]
    fn event_stream_is_well_formed(
        signals in proptest::collection::vec(any::<bool>(), 0..300),
        confirm in 1u32..5,
        clear in 1u32..5,
        cooldown in 0u32..4,
    ) {
        let mut m = machine(confirm, clear, cooldown);
        let events: Vec<DetectorEvent> =
            signals.iter().filter_map(|&s| m.step(s)).collect();

        let lifecycle: Vec<&DetectorEvent> = events
            .iter()
            .filter(|e| matches!(e, DetectorEvent::Confirmed | DetectorEvent::Resolved))
            .collect();
        for (i, e) in lifecycle.iter().enumerate() {
            let expected = if i % 2 == 0 {
                DetectorEvent::Confirmed
            } else {
                DetectorEvent::Resolved
            };
            prop_assert_eq!(**e, expected, "lifecycle events must alternate");
        }

        let mut suspicion_open = false;
        for e in &events {
            match e {
                DetectorEvent::Suspected => {
                    prop_assert!(!suspicion_open, "nested suspicion");
                    suspicion_open = true;
                }
                DetectorEvent::Dismissed => {
                    prop_assert!(suspicion_open, "dismissed without suspicion");
                    suspicion_open = false;
                }
                DetectorEvent::Confirmed => {
                    // With confirm_ticks == 1 an incident confirms straight
                    // from quiet without a Suspected tick.
                    suspicion_open = false;
                }
                DetectorEvent::Resolved => {
                    prop_assert!(!suspicion_open, "resolved inside a suspicion");
                }
            }
        }
    }

    /// After any signal prefix, a long-enough all-clear tail always drives
    /// the machine back to quiet with no incident left open.
    #[test]
    fn quiet_tail_always_closes_the_incident(
        signals in proptest::collection::vec(any::<bool>(), 0..200),
        confirm in 1u32..5,
        clear in 1u32..5,
        cooldown in 0u32..4,
    ) {
        let mut m = machine(confirm, clear, cooldown);
        for &s in &signals {
            m.step(s);
        }
        for _ in 0..(clear + cooldown + 2) {
            m.step(false);
        }
        prop_assert_eq!(m.phase(), IncidentPhase::Quiet);
        prop_assert_eq!(m.confirmed_count(), m.resolved_count());
    }
}

/// One trained model shared by every forensics case — the strategies only
/// need its catalog shape and causal sets, not a fresh campaign per case.
fn trained_model() -> &'static CausalModel {
    static MODEL: OnceLock<CausalModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let app = icfl_apps::pattern1();
        let run = CampaignRun::execute(&app, &RunConfig::quick(42)).unwrap();
        run.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .unwrap()
    })
}

/// Raw per-metric vote material: `(anomalies, winners, match score)` per
/// catalog metric, as service indices (the vendored proptest has no
/// `prop_map`, so index→id mapping happens in [`build_verdict`]).
type RawVotes = Vec<(BTreeSet<usize>, BTreeSet<usize>, f64)>;

/// One `(anomalies, winners, score)` triple per catalog metric.
fn raw_verdict_strategy() -> impl Strategy<Value = RawVotes> {
    let model = trained_model();
    let n = model.num_services();
    let metrics = model.catalog().metric_names().len();
    proptest::collection::vec(
        (
            proptest::collection::btree_set(0..n, 0..n.min(4) + 1),
            proptest::collection::btree_set(0..n, 0..n.min(4) + 1),
            0.0f64..8.0,
        ),
        metrics,
    )
}

/// Builds an Algorithm-2 verdict from raw vote material: every metric
/// gets arbitrary anomaly and winner sets (an empty winner set is an
/// abstention), and the vote totals are derived by replaying the
/// election's own accumulation — metric order, `1/|winners|` per metric —
/// so `votes` is exactly what the election would produce from
/// `per_metric`.
fn build_verdict(entries: RawVotes) -> Localization {
    let model = trained_model();
    let n = model.num_services();
    let metrics = model.catalog().metric_names();
    let to_ids = |s: BTreeSet<usize>| s.into_iter().map(ServiceId::from_index).collect();
    let per_metric: Vec<MetricVote> = entries
        .into_iter()
        .zip(&metrics)
        .map(|((anomalies, voted_for, score), name)| MetricVote {
            metric: name.clone(),
            anomalies: to_ids(anomalies),
            voted_for: to_ids(voted_for),
            score,
        })
        .collect();
    let mut votes = vec![0.0f64; n];
    for mv in &per_metric {
        if mv.voted_for.is_empty() {
            continue;
        }
        let delta = 1.0 / mv.voted_for.len() as f64;
        for s in &mv.voted_for {
            votes[s.index()] += delta;
        }
    }
    let max = votes.iter().fold(0.0f64, |a, &b| a.max(b));
    let candidates: BTreeSet<ServiceId> = if max > 0.0 {
        votes
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v == max)
            .map(|(i, _)| ServiceId::from_index(i))
            .collect()
    } else {
        BTreeSet::new()
    };
    Localization {
        candidates,
        votes,
        per_metric,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any verdict, the evidence view accounts for every vote: one
    /// breakdown per ranked candidate (same order), and each candidate's
    /// contribution deltas sum to its reported Algorithm-2 score
    /// *bit-for-bit* — no epsilon, the accumulation orders must agree.
    #[test]
    fn breakdown_deltas_reproduce_scores_bitwise(raw in raw_verdict_strategy()) {
        let loc = build_verdict(raw);
        let model = trained_model();
        let names: Vec<String> =
            (0..model.num_services()).map(|i| format!("svc{i}")).collect();
        let (candidates, breakdowns) = verdict_evidence(model, &loc, &names);

        prop_assert_eq!(candidates.len(), breakdowns.len());
        prop_assert_eq!(
            breakdowns.len(),
            loc.votes.iter().filter(|&&v| v > 0.0).count(),
            "every positive-vote service gets a breakdown"
        );
        for (label, b) in candidates.iter().zip(&breakdowns) {
            prop_assert_eq!(label, &b.target, "candidate order matches breakdown order");
            let idx = names
                .iter()
                .position(|n| n == &b.target)
                .expect("target label resolves to a service index");
            let sum: f64 = b.contributions.iter().map(|c| c.delta).sum();
            prop_assert_eq!(
                sum.to_bits(), b.score.to_bits(),
                "deltas must sum to the breakdown score bitwise ({} vs {})",
                sum, b.score
            );
            prop_assert_eq!(
                b.score.to_bits(), loc.votes[idx].to_bits(),
                "breakdown score must equal the election's vote bitwise"
            );
        }
    }

    /// A fully populated chain — verdict evidence plus arbitrary window
    /// and transition rings — survives a JSON round-trip byte-equal.
    #[test]
    fn evidence_chains_roundtrip_byte_equal(
        raw in raw_verdict_strategy(),
        window_ends in proptest::collection::vec((0u64..1_000_000_000_000, 0usize..3), 0..8),
        ticks in proptest::collection::vec(0u64..1_000_000_000_000, 0..6),
        incident in 0u32..100,
        confirmed in 0u64..1_000_000_000_000,
    ) {
        let loc = build_verdict(raw);
        let model = trained_model();
        let names: Vec<String> =
            (0..model.num_services()).map(|i| format!("svc{i}")).collect();
        let (candidates, breakdowns) = verdict_evidence(model, &loc, &names);
        let chain = EvidenceChain {
            format_version: CHAIN_FORMAT_VERSION,
            incident,
            model: ModelProvenance {
                key: "proptest".into(),
                version: 3,
                meta: ModelMeta::default(),
            },
            confirmed_at_nanos: confirmed,
            localized_at_nanos: Some(confirmed.saturating_add(5)),
            windows: window_ends
                .into_iter()
                .map(|(end_nanos, v)| WindowEvidence {
                    end_nanos,
                    validity: [
                        WindowValidity::Valid,
                        WindowValidity::MissingBoundary,
                        WindowValidity::CounterReset,
                    ][v],
                })
                .collect(),
            transitions: ticks
                .into_iter()
                .map(|tick_nanos| TransitionEvidence {
                    tick_nanos,
                    event: DetectorEvent::Confirmed,
                    shifted: vec![("m".into(), "svc0".into())],
                })
                .collect(),
            candidates,
            breakdowns,
        };
        let first = serde_json::to_string(&chain).unwrap();
        let back: EvidenceChain = serde_json::from_str(&first).unwrap();
        prop_assert_eq!(&back, &chain, "deserialized chain must compare equal");
        let second = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(first, second, "serialization must round-trip byte-equal");
    }
}
