//! Property-based tests for the incident-detector state machine: under
//! arbitrary interleavings of suspect/clear signals it never resolves an
//! incident it hasn't confirmed, never double-counts one, and all of its
//! counters stay consistent with the event stream it emits.

use icfl_online::{DebounceConfig, DetectorEvent, IncidentPhase, IncidentStateMachine};
use proptest::prelude::*;

fn machine(confirm: u32, clear: u32, cooldown: u32) -> IncidentStateMachine {
    IncidentStateMachine::new(DebounceConfig {
        confirm_ticks: confirm,
        clear_ticks: clear,
        cooldown_ticks: cooldown,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Resolved` can only follow an unmatched `Confirmed`, each incident
    /// resolves at most once, and the machine's own counters agree with
    /// the events it emitted.
    #[test]
    fn never_resolves_before_confirming_and_never_double_counts(
        signals in proptest::collection::vec(any::<bool>(), 0..300),
        confirm in 1u32..5,
        clear in 1u32..5,
        cooldown in 0u32..4,
    ) {
        let mut m = machine(confirm, clear, cooldown);
        let mut confirmed = 0u64;
        let mut resolved = 0u64;
        for (i, &suspect) in signals.iter().enumerate() {
            match m.step(suspect) {
                Some(DetectorEvent::Confirmed) => {
                    // A new incident may only open once the previous one
                    // has resolved — this is exactly "never double-counts".
                    prop_assert_eq!(
                        confirmed, resolved,
                        "tick {}: confirmed a new incident while one is open", i
                    );
                    confirmed += 1;
                }
                Some(DetectorEvent::Resolved) => {
                    // Resolution requires an open confirmed incident —
                    // "never resolved before confirmed".
                    prop_assert_eq!(
                        resolved + 1, confirmed,
                        "tick {}: resolved with no open incident", i
                    );
                    resolved += 1;
                }
                Some(DetectorEvent::Suspected) | Some(DetectorEvent::Dismissed) | None => {}
            }
            prop_assert!(resolved <= confirmed);
            prop_assert!(confirmed - resolved <= 1, "more than one open incident");
            prop_assert_eq!(m.confirmed_count(), confirmed);
            prop_assert_eq!(m.resolved_count(), resolved);
        }
    }

    /// The emitted event stream is well-formed as a whole: lifecycle events
    /// strictly alternate (Confirmed, Resolved, Confirmed, ...), and a
    /// Suspected is always terminated by exactly one Confirmed or
    /// Dismissed before the next Suspected.
    #[test]
    fn event_stream_is_well_formed(
        signals in proptest::collection::vec(any::<bool>(), 0..300),
        confirm in 1u32..5,
        clear in 1u32..5,
        cooldown in 0u32..4,
    ) {
        let mut m = machine(confirm, clear, cooldown);
        let events: Vec<DetectorEvent> =
            signals.iter().filter_map(|&s| m.step(s)).collect();

        let lifecycle: Vec<&DetectorEvent> = events
            .iter()
            .filter(|e| matches!(e, DetectorEvent::Confirmed | DetectorEvent::Resolved))
            .collect();
        for (i, e) in lifecycle.iter().enumerate() {
            let expected = if i % 2 == 0 {
                DetectorEvent::Confirmed
            } else {
                DetectorEvent::Resolved
            };
            prop_assert_eq!(**e, expected, "lifecycle events must alternate");
        }

        let mut suspicion_open = false;
        for e in &events {
            match e {
                DetectorEvent::Suspected => {
                    prop_assert!(!suspicion_open, "nested suspicion");
                    suspicion_open = true;
                }
                DetectorEvent::Dismissed => {
                    prop_assert!(suspicion_open, "dismissed without suspicion");
                    suspicion_open = false;
                }
                DetectorEvent::Confirmed => {
                    // With confirm_ticks == 1 an incident confirms straight
                    // from quiet without a Suspected tick.
                    suspicion_open = false;
                }
                DetectorEvent::Resolved => {
                    prop_assert!(!suspicion_open, "resolved inside a suspicion");
                }
            }
        }
    }

    /// After any signal prefix, a long-enough all-clear tail always drives
    /// the machine back to quiet with no incident left open.
    #[test]
    fn quiet_tail_always_closes_the_incident(
        signals in proptest::collection::vec(any::<bool>(), 0..200),
        confirm in 1u32..5,
        clear in 1u32..5,
        cooldown in 0u32..4,
    ) {
        let mut m = machine(confirm, clear, cooldown);
        for &s in &signals {
            m.step(s);
        }
        for _ in 0..(clear + cooldown + 2) {
            m.step(false);
        }
        prop_assert_eq!(m.phase(), IncidentPhase::Quiet);
        prop_assert_eq!(m.confirmed_count(), m.resolved_count());
    }
}
