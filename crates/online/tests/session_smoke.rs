//! End-to-end smoke of the online inference loop on the small 3-service
//! chain: train offline, then serve live traffic with two scheduled
//! outages and check both are detected, localized, and resolved.

use icfl_apps::pattern1;
use icfl_core::{CampaignRun, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{Episode, IncidentSchedule, OnlineConfig, OnlineSession};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;

#[test]
fn detects_and_localizes_scheduled_outages() {
    let app = pattern1();
    let cfg = RunConfig::quick(42);
    let run = CampaignRun::execute(&app, &cfg).unwrap();
    let catalog = MetricCatalog::derived_all();
    let model = run.learn(&catalog, RunConfig::default_detector()).unwrap();

    let (_, targets) = app.build(42).unwrap();
    let schedule = IncidentSchedule::new(vec![
        Episode::single(
            SimTime::from_secs(100),
            targets[0],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
        Episode::single(
            SimTime::from_secs(260),
            targets[1],
            FaultKind::ServiceUnavailable,
            SimDuration::from_secs(50),
        ),
    ]);

    let report = OnlineSession::run(&app, &model, &schedule, &OnlineConfig::quick(), 42).unwrap();

    assert_eq!(report.incidents.len(), 2);
    assert_eq!(report.injected_faults, 2);
    for incident in &report.incidents {
        assert!(
            incident.detected,
            "episode {} ({:?}) was not detected",
            incident.episode, incident.services
        );
        let ttd = incident.time_to_detect_secs.unwrap();
        assert!(
            ttd > 0.0 && ttd <= 60.0,
            "episode {}: implausible time-to-detect {ttd}",
            incident.episode
        );
        let ttl = incident.time_to_localize_secs.unwrap();
        assert!(ttl >= ttd, "localization cannot precede confirmation");
        assert!(
            incident.top1_correct,
            "episode {}: top-1 was {:?}, injected {:?} (ranked {:?})",
            incident.episode, incident.top1, incident.services, incident.ranked
        );
        assert!(
            incident.resolved_secs.is_some(),
            "episode {} never resolved",
            incident.episode
        );
    }
    assert_eq!(report.false_alarms, 0, "spurious confirmations");
    assert!((report.top1_accuracy() - 1.0).abs() < 1e-12);
}

#[test]
fn same_seed_reports_are_byte_identical() {
    let app = pattern1();
    let cfg = RunConfig::quick(7);
    let run = CampaignRun::execute(&app, &cfg).unwrap();
    let model = run
        .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
        .unwrap();
    let (_, targets) = app.build(7).unwrap();
    let schedule = IncidentSchedule::new(vec![Episode::single(
        SimTime::from_secs(120),
        targets[2],
        FaultKind::ServiceUnavailable,
        SimDuration::from_secs(50),
    )]);

    let a = OnlineSession::run(&app, &model, &schedule, &OnlineConfig::quick(), 7).unwrap();
    let b = OnlineSession::run(&app, &model, &schedule, &OnlineConfig::quick(), 7).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
