//! `icfl-online`: the streaming inference service of the ICFL repro.
//!
//! The offline crates learn a [`CausalModel`](icfl_core::CausalModel)
//! from intervention campaigns and replay whole datasets; this crate is
//! the production side of the paper's platform (Fig. 3), operating on a
//! *live* simulated cluster:
//!
//! - [`StreamingIngester`] — the data-collection service: scrapes
//!   counters incrementally on the simulation clock and maintains
//!   ring-buffered hopping windows per (metric, service) pair, byte-equal
//!   to the offline pipeline's windows at the same seed.
//! - [`IncidentDetector`] / [`IncidentStateMachine`] — detection: the
//!   configured two-sample test on sliding live-vs-reference windows,
//!   debounced through a quiet → suspected → confirmed → resolved
//!   lifecycle with cool-down.
//! - [`OnlineSession`] — the inference loop: on confirmation, runs
//!   Algorithm 2 majority voting against a trained model and emits
//!   [`IncidentReport`]s with time-to-detect and time-to-localize.
//! - [`FeedSession`] — the same detection/localization core driven by an
//!   *external* scrape stream (a socket, a replayed [`record_trace`]
//!   export) instead of an owned simulation; what `icfl-server` runs per
//!   tenant.
//! - [`ModelRegistry`] — versioned on-disk persistence of trained models
//!   with seed/app/catalog provenance.
//! - [`EvidenceChain`] / [`FlightRecorder`] — incident forensics: a
//!   byte-deterministic audit trail per confirmed incident (recent
//!   windows with validity flags, detector transitions, per-candidate
//!   Algorithm-2 score breakdowns, model provenance), assembled from a
//!   bounded flight recorder that rides the session checkpoints.
//!
//! Everything is driven by the deterministic simulation clock: the same
//! seed yields byte-identical session reports at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod feed;
mod forensics;
mod ingest;
mod registry;
mod report;
mod session;

pub use feed::{record_trace, FeedCheckpoint, FeedConfig, FeedProgress, FeedSession, FeedVerdict};

pub use forensics::{
    verdict_evidence, CandidateEvidence, ContributionEvidence, EvidenceChain, FlightRecorder,
    ModelProvenance, TransitionEvidence, WindowEvidence, CHAIN_FORMAT_VERSION,
};

pub use detector::{
    DebounceConfig, DetectorEvent, IncidentDetector, IncidentPhase, IncidentStateMachine,
    TickDecision,
};
pub use ingest::{IngestCheckpoint, IngestConfig, IngesterTap, StreamingIngester};
pub use registry::{
    ModelMeta, ModelRecord, ModelRegistry, RegistryError, Result as RegistryResult, FORMAT_VERSION,
};
pub use report::{IncidentReport, SessionReport};
pub use session::{
    Episode, EpisodeFault, IncidentSchedule, OnlineConfig, OnlineError, OnlineSession,
    Result as OnlineResult, SessionCheckpoint,
};
