//! Incident reports produced by an online session.
//!
//! All times are simulation-clock seconds derived from integer
//! nanoseconds, so reports from the same seed are byte-identical
//! regardless of thread count or host. Reports persist as plain JSON via
//! [`SessionReport::save_json`] / [`SessionReport::load_json`]; every I/O
//! path returns [`icfl_core::Result`] — no panics on a full disk or a
//! truncated file.

use icfl_core::CoreError;
use icfl_telemetry::DegradeStats;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One injected incident episode and what the online service made of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentReport {
    /// Episode index within the session schedule.
    pub episode: usize,
    /// Names of the services faulted in this episode (one entry for a
    /// single fault, several for overlapping faults).
    pub services: Vec<String>,
    /// Simulation time the first fault of the episode began.
    pub injected_start_secs: f64,
    /// Simulation time the last fault of the episode lifted.
    pub injected_end_secs: f64,
    /// Whether the detector confirmed an incident for this episode.
    pub detected: bool,
    /// Seconds from injection to confirmation, when detected.
    pub time_to_detect_secs: Option<f64>,
    /// Seconds from injection to the ranked verdict, when localized.
    pub time_to_localize_secs: Option<f64>,
    /// Simulation time the detector resolved the incident, if it did
    /// before the session ended.
    pub resolved_secs: Option<f64>,
    /// Ranked candidates (service name, votes), best first.
    pub ranked: Vec<(String, f64)>,
    /// The top-1 verdict, when localized.
    pub top1: Option<String>,
    /// Whether the top-1 verdict names one of the faulted services.
    pub top1_correct: bool,
}

/// Everything a single online session produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Application under test.
    pub app: String,
    /// Simulation seed of the live run.
    pub seed: u64,
    /// Per-episode reports, in schedule order.
    pub incidents: Vec<IncidentReport>,
    /// Confirmations that matched no scheduled episode.
    pub false_alarms: usize,
    /// Hopping windows the ingester emitted over the session.
    pub windows_ingested: u64,
    /// Total faults injected (overlapping episodes inject several).
    pub injected_faults: usize,
    /// Telemetry-degradation events absorbed by the ingester. Omitted
    /// from the JSON form when the stream was pristine, so clean-run
    /// reports stay byte-identical to pre-degradation goldens.
    #[serde(default, skip_serializing_if = "DegradeStats::is_clean")]
    pub degraded: DegradeStats,
}

impl SessionReport {
    /// Detected episodes / total episodes.
    pub fn detection_rate(&self) -> f64 {
        if self.incidents.is_empty() {
            return 0.0;
        }
        let detected = self.incidents.iter().filter(|i| i.detected).count();
        detected as f64 / self.incidents.len() as f64
    }

    /// Correct top-1 verdicts / total episodes (undetected episodes count
    /// as misses, matching how offline accuracy scores every case).
    pub fn top1_accuracy(&self) -> f64 {
        if self.incidents.is_empty() {
            return 0.0;
        }
        let correct = self.incidents.iter().filter(|i| i.top1_correct).count();
        correct as f64 / self.incidents.len() as f64
    }

    /// Mean time-to-detect over detected episodes, if any were detected.
    pub fn mean_time_to_detect_secs(&self) -> Option<f64> {
        mean(self.incidents.iter().filter_map(|i| i.time_to_detect_secs))
    }

    /// Mean time-to-localize over localized episodes, if any.
    pub fn mean_time_to_localize_secs(&self) -> Option<f64> {
        mean(
            self.incidents
                .iter()
                .filter_map(|i| i.time_to_localize_secs),
        )
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// [`CoreError::Serde`] if serialization fails.
    pub fn to_json(&self) -> icfl_core::Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| CoreError::Serde(e.to_string()))
    }

    /// Parses a report from its JSON form.
    ///
    /// # Errors
    ///
    /// [`CoreError::Serde`] on malformed or truncated input.
    pub fn from_json(json: &str) -> icfl_core::Result<SessionReport> {
        serde_json::from_str(json).map_err(|e| CoreError::Serde(e.to_string()))
    }

    /// Writes the report to `path` as JSON.
    ///
    /// # Errors
    ///
    /// [`CoreError::Serde`] if serialization fails, [`CoreError::Io`] if
    /// the file cannot be written.
    pub fn save_json(&self, path: impl AsRef<Path>) -> icfl_core::Result<()> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads a report back from a JSON file.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] if the file cannot be read, [`CoreError::Serde`]
    /// if its contents do not parse.
    pub fn load_json(path: impl AsRef<Path>) -> icfl_core::Result<SessionReport> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incident(detected: bool, correct: bool, ttd: Option<f64>) -> IncidentReport {
        IncidentReport {
            episode: 0,
            services: vec!["A".into()],
            injected_start_secs: 10.0,
            injected_end_secs: 60.0,
            detected,
            time_to_detect_secs: ttd,
            time_to_localize_secs: ttd.map(|t| t + 5.0),
            resolved_secs: None,
            ranked: Vec::new(),
            top1: detected.then(|| "A".to_string()),
            top1_correct: correct,
        }
    }

    #[test]
    fn rates_and_means() {
        let report = SessionReport {
            app: "causalbench".into(),
            seed: 42,
            incidents: vec![
                incident(true, true, Some(20.0)),
                incident(true, false, Some(30.0)),
                incident(false, false, None),
            ],
            false_alarms: 1,
            windows_ingested: 100,
            injected_faults: 3,
            degraded: DegradeStats::default(),
        };
        assert!((report.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.top1_accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.mean_time_to_detect_secs(), Some(25.0));
        assert_eq!(report.mean_time_to_localize_secs(), Some(30.0));
    }

    #[test]
    fn json_roundtrip_on_disk() {
        let report = SessionReport {
            app: "causalbench".into(),
            seed: 42,
            incidents: vec![incident(true, true, Some(20.0))],
            false_alarms: 0,
            windows_ingested: 50,
            injected_faults: 1,
            degraded: DegradeStats::default(),
        };
        let path =
            std::env::temp_dir().join(format!("icfl-report-test-{}.json", std::process::id()));
        report.save_json(&path).unwrap();
        let back = SessionReport::load_json(&path).unwrap();
        assert_eq!(report, back);
        let _ = std::fs::remove_file(&path);

        assert!(matches!(
            SessionReport::load_json("/nonexistent/dir/report.json"),
            Err(icfl_core::CoreError::Io(_))
        ));
        assert!(matches!(
            SessionReport::from_json("{ not json"),
            Err(icfl_core::CoreError::Serde(_))
        ));
    }

    #[test]
    fn empty_session_is_well_defined() {
        let report = SessionReport {
            app: "causalbench".into(),
            seed: 42,
            incidents: Vec::new(),
            false_alarms: 0,
            windows_ingested: 0,
            injected_faults: 0,
            degraded: DegradeStats::default(),
        };
        assert_eq!(report.detection_rate(), 0.0);
        assert_eq!(report.top1_accuracy(), 0.0);
        assert_eq!(report.mean_time_to_detect_secs(), None);
    }
}
