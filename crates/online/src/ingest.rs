//! The streaming ingester: incremental counter scraping into ring-buffered
//! hopping windows.
//!
//! The ingester is the production data-collection service of the paper's
//! platform (Fig. 3). It is a thin wrapper over the shared
//! [`WindowEngine`](icfl_telemetry::WindowEngine) — the *same* incremental
//! finalizer the offline [`Recorder`](icfl_telemetry::Recorder) runs on —
//! configured for streaming: windows anchored at time zero, warmup windows
//! discarded, and only a bounded ring of recent windows retained. Live
//! windows therefore agree with offline training datasets by construction,
//! not by test. Memory is O(services × capacity) regardless of how long
//! the simulation runs, and no full-dataset rebuild ever happens on the
//! hot path.
//!
//! # Degraded telemetry
//!
//! With [`IngestConfig::degrade`] set, the scrape loop models a real
//! Prometheus/cAdvisor feed: each raw scrape passes through a seeded
//! [`ScrapeDegrader`] (drops, delivery jitter, duplicates, counter
//! resets) and whatever it delivers goes through the engine's watermarked
//! reorder path instead of the clean in-order `push`. The watermark trails
//! the clock by the degrader's delivery slack plus one interval, so every
//! delayed delivery and trailing duplicate is staged before its window is
//! decided; windows whose boundary scrape never arrived are finalized
//! invalid instead of silently wrong. Without `degrade` the clean path is
//! byte-for-byte what it always was.
//!
//! Window boundaries follow exactly the arithmetic of
//! [`WindowConfig::windows_in`]: window `k` spans
//! `[k·hop, k·hop + window]`, anchored at the attach time (time zero).

use icfl_core::CoreError;
use icfl_micro::{Cluster, Counters};
use icfl_scenario::TelemetryTap;
use icfl_sim::{Sim, SimDuration, SimTime};
use icfl_telemetry::{
    Dataset, DegradationConfig, DegradeStats, EngineConfig, EngineSnapshot, MetricCatalog,
    ScrapeDegrader, WindowConfig, WindowEngine, WindowValidity,
};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Configuration of one streaming ingest loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Hopping-window geometry (shared with the offline pipeline so live
    /// windows are distribution-compatible with trained baselines).
    pub windows: WindowConfig,
    /// Counter scrape interval. Window and hop must be multiples of it.
    pub interval: SimDuration,
    /// Ring capacity in windows per (metric, service) series.
    pub capacity: usize,
    /// Windows *starting* before this instant are discarded (cluster
    /// warmup: queues filling, daemons settling — the same span the
    /// offline campaign excludes from datasets).
    pub collect_from: SimTime,
    /// Telemetry-degradation model applied to the scrape stream. `None`
    /// (the default) runs the clean in-order path unchanged.
    pub degrade: Option<DegradationConfig>,
}

impl IngestConfig {
    /// Scrape-every-second ingest of the given window geometry, keeping
    /// `capacity` windows and discarding warmup windows before
    /// `collect_from`.
    pub fn new(windows: WindowConfig, capacity: usize, collect_from: SimTime) -> Self {
        IngestConfig {
            windows,
            interval: SimDuration::from_secs(1),
            capacity,
            collect_from,
            degrade: None,
        }
    }

    /// Enables the telemetry-degradation model, returning `self`.
    pub fn with_degradation(mut self, degrade: DegradationConfig) -> Self {
        self.degrade = Some(degrade);
        self
    }
}

/// A serializable checkpoint of the ingest service's entire state: the
/// window engine and, on a degraded stream, the degrader (RNG included).
/// Restoring via [`StreamingIngester::restore`] continues the stream
/// byte-identically after a crash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestCheckpoint {
    engine: EngineSnapshot,
    degrader: Option<ScrapeDegrader>,
}

/// A handle to the streaming ingest loop attached to a simulation.
///
/// Cloning is cheap (shared engine). Attach *before* the simulation runs
/// past time zero so window boundaries align with the scrape grid.
///
/// # Examples
///
/// ```
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps};
/// use icfl_online::{IngestConfig, StreamingIngester};
/// use icfl_sim::{Sim, SimTime};
/// use icfl_telemetry::{MetricCatalog, WindowConfig};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 5)?;
/// let mut sim = Sim::new(5);
/// Cluster::start(&mut sim, &mut cluster);
/// let ingester = StreamingIngester::attach(
///     &mut sim,
///     cluster.num_services(),
///     &MetricCatalog::raw_all(),
///     IngestConfig::new(WindowConfig::from_secs(10, 5), 16, SimTime::ZERO),
/// ).unwrap();
/// sim.run_until(SimTime::from_secs(60), &mut cluster);
/// // 60 s stream, 10 s windows hopping every 5 s → ends at 10, 15, ..., 60.
/// assert_eq!(ingester.windows_emitted(), 11);
/// assert_eq!(ingester.last_n(4).unwrap().num_windows(), 4);
/// # Ok::<(), icfl_micro::BuildError>(())
/// ```
#[derive(Clone)]
pub struct StreamingIngester {
    engine: Arc<Mutex<WindowEngine>>,
    degrader: Option<Arc<Mutex<ScrapeDegrader>>>,
    catalog: MetricCatalog,
}

impl std::fmt::Debug for StreamingIngester {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let e = self.engine.lock().expect("ingest engine lock");
        f.debug_struct("StreamingIngester")
            .field("emitted", &e.emitted())
            .field("retained", &e.retained())
            .field("degraded", &self.degrader.is_some())
            .finish()
    }
}

impl StreamingIngester {
    /// Attaches the ingest loop to `sim`, scraping every
    /// [`IngestConfig::interval`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidState`] if the simulation has already run past
    /// time zero — window boundaries would fall off the scrape grid.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or window/hop are not multiples of the
    /// scrape interval (configuration bugs, not runtime states).
    pub fn attach(
        sim: &mut Sim<Cluster>,
        num_services: usize,
        catalog: &MetricCatalog,
        cfg: IngestConfig,
    ) -> icfl_core::Result<StreamingIngester> {
        if sim.now() != SimTime::ZERO {
            return Err(CoreError::InvalidState(format!(
                "streaming ingester must attach before the simulation runs (now = {})",
                sim.now()
            )));
        }
        let mut engine_cfg = EngineConfig::streaming(cfg.windows, cfg.capacity, cfg.collect_from);
        engine_cfg.interval = cfg.interval;
        let engine = Arc::new(Mutex::new(WindowEngine::new(engine_cfg, num_services)));
        let degrader = cfg.degrade.filter(|d| !d.is_none()).map(|d| {
            Arc::new(Mutex::new(ScrapeDegrader::new(
                d,
                cfg.interval,
                num_services,
            )))
        });

        let shared = Arc::clone(&engine);
        match degrader.as_ref().map(Arc::clone) {
            None => {
                // Clean path: one in-order scrape per interval, unchanged.
                sim.schedule_periodic(SimTime::ZERO, cfg.interval, move |sim, cl: &mut Cluster| {
                    let started = std::time::Instant::now();
                    let row = scrape(cl, num_services);
                    shared
                        .lock()
                        .expect("ingest engine lock")
                        .push(sim.now(), row);
                    icfl_obs::stat_add("online.scrape", started.elapsed());
                });
            }
            Some(deg) => {
                // Degraded path: the raw scrape passes through the
                // degrader; deliveries stage in the engine's reorder
                // buffer and the watermark trails the clock by the
                // delivery slack plus one interval (so a duplicate riding
                // one interval behind a maximally delayed original still
                // coalesces instead of counting as late).
                let lag = cfg
                    .degrade
                    .expect("degrader implies config")
                    .slack(cfg.interval)
                    .as_nanos()
                    .saturating_add(cfg.interval.as_nanos());
                sim.schedule_periodic(SimTime::ZERO, cfg.interval, move |sim, cl: &mut Cluster| {
                    let started = std::time::Instant::now();
                    let now = sim.now();
                    let row = scrape(cl, num_services);
                    let due = deg.lock().expect("degrader lock").offer(now, row);
                    let mut engine = shared.lock().expect("ingest engine lock");
                    for (at, delivered) in due {
                        engine.ingest(at, delivered);
                    }
                    if now.as_nanos() >= lag {
                        engine.advance_watermark(SimTime::from_nanos(now.as_nanos() - lag));
                    }
                    drop(engine);
                    icfl_obs::stat_add("online.scrape", started.elapsed());
                });
            }
        }
        Ok(StreamingIngester {
            engine,
            degrader,
            catalog: catalog.clone(),
        })
    }

    /// Total windows finalized since attach (monotonic; includes windows
    /// already evicted from the ring).
    pub fn windows_emitted(&self) -> u64 {
        self.engine.lock().expect("ingest engine lock").emitted()
    }

    /// Windows currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.engine.lock().expect("ingest engine lock").retained()
    }

    /// End time of the newest finalized window, if any.
    pub fn newest_window_end(&self) -> Option<SimTime> {
        self.engine
            .lock()
            .expect("ingest engine lock")
            .newest_window_end()
    }

    /// End time and validity of every retained window, oldest first.
    pub fn retained_windows(&self) -> Vec<(SimTime, WindowValidity)> {
        self.engine
            .lock()
            .expect("ingest engine lock")
            .retained_windows()
    }

    /// Telemetry-degradation events absorbed so far (all zero on a clean
    /// stream).
    pub fn degrade_stats(&self) -> DegradeStats {
        self.engine
            .lock()
            .expect("ingest engine lock")
            .degrade_stats()
    }

    /// A [`Dataset`] of the `n` most recent windows (`None` until `n`
    /// windows have been retained). Shape-compatible with the offline
    /// datasets the causal model was trained on. Windows invalidated by
    /// degraded telemetry contribute `NaN` samples; gap-aware consumers
    /// should prefer [`StreamingIngester::last_n_valid`].
    pub fn last_n(&self, n: usize) -> Option<Dataset> {
        self.engine
            .lock()
            .expect("ingest engine lock")
            .last_n(&self.catalog, n)
    }

    /// A [`Dataset`] of the `n` most recent **valid** windows, skipping
    /// windows whose telemetry was degraded (`None` until `n` valid
    /// windows are retained). On a clean stream this is exactly
    /// [`StreamingIngester::last_n`].
    pub fn last_n_valid(&self, n: usize) -> Option<Dataset> {
        self.engine
            .lock()
            .expect("ingest engine lock")
            .last_n_valid(&self.catalog, n)
    }

    /// Serializes the ingest service's state (engine + degrader) for
    /// crash-safe checkpointing.
    pub fn checkpoint(&self) -> IngestCheckpoint {
        IngestCheckpoint {
            engine: self.engine.lock().expect("ingest engine lock").snapshot(),
            degrader: self
                .degrader
                .as_ref()
                .map(|d| d.lock().expect("degrader lock").clone()),
        }
    }

    /// Restores the ingest service's state from a checkpoint, in place:
    /// the scrape loop keeps running against the restored state, which
    /// continues the stream byte-identically to an uninterrupted run.
    pub fn restore(&self, ckpt: IngestCheckpoint) {
        *self.engine.lock().expect("ingest engine lock") = WindowEngine::from_snapshot(ckpt.engine);
        if let (Some(shared), Some(state)) = (self.degrader.as_ref(), ckpt.degrader) {
            *shared.lock().expect("degrader lock") = state;
        }
    }
}

/// One raw counter scrape across the cluster: a single contiguous copy of
/// the counters arena when `num_services` matches the row layout, or a
/// per-service replica aggregation for replicated clusters.
fn scrape(cl: &Cluster, num_services: usize) -> Vec<Counters> {
    icfl_obs::counter_add("icfl_telemetry_batched_scrapes_total", &[], 1);
    cl.scrape_rows(num_services)
}

/// Streaming collection as a scenario telemetry tap: attaches a
/// [`StreamingIngester`] for `catalog` at the harness's fixed tap point —
/// the online counterpart of `icfl_scenario::RecorderTap`, over the same
/// window engine. The handle is a `Result` because attaching after the
/// simulation has started is an [`CoreError::InvalidState`] error (the
/// scenario builder always attaches at time zero, so `?` on the handle
/// never fires in harness-assembled runs).
#[derive(Debug, Clone)]
pub struct IngesterTap {
    catalog: MetricCatalog,
    cfg: IngestConfig,
}

impl IngesterTap {
    /// A tap ingesting `catalog` under `cfg`.
    pub fn new(catalog: &MetricCatalog, cfg: IngestConfig) -> Self {
        IngesterTap {
            catalog: catalog.clone(),
            cfg,
        }
    }
}

impl TelemetryTap for IngesterTap {
    type Handle = icfl_core::Result<StreamingIngester>;

    fn attach(self, sim: &mut Sim<Cluster>, cluster: &Cluster) -> Self::Handle {
        StreamingIngester::attach(sim, cluster.num_services(), &self.catalog, self.cfg)
    }

    fn describe(&self) -> String {
        match self.cfg.degrade.filter(|d| !d.is_none()) {
            Some(d) => format!("ingester(degraded: {d:?})"),
            None => "ingester".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{steps, ClusterSpec, ServiceId, ServiceSpec};

    fn demo(seed: u64) -> (Sim<Cluster>, Cluster) {
        let spec = ClusterSpec::new("demo")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(2), steps::call("b", "/")]),
            )
            .service(
                ServiceSpec::web("b")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(1)]),
            );
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        (sim, cluster)
    }

    fn drive(sim: &mut Sim<Cluster>, until_s: u64) {
        for i in 0..(until_s * 10) {
            let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
            sim.schedule_at(at, |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, _| {});
            });
        }
    }

    // The streaming-vs-offline equivalence test that used to live here is
    // gone on purpose: both paths now run on the one
    // `icfl_telemetry::WindowEngine`, so they agree by construction.

    #[test]
    fn ring_evicts_oldest_windows() {
        let (mut sim, mut cluster) = demo(8);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO),
        )
        .unwrap();
        drive(&mut sim, 90);
        sim.run_until(SimTime::from_secs(90), &mut cluster);
        // 90 s → window ends 10, 15, ..., 90 = 17 emitted, 4 retained.
        assert_eq!(ingester.windows_emitted(), 17);
        assert_eq!(ingester.retained(), 4);
        assert_eq!(ingester.newest_window_end(), Some(SimTime::from_secs(90)));
        assert!(ingester.last_n(5).is_none());
        assert_eq!(ingester.last_n(4).unwrap().num_windows(), 4);
    }

    #[test]
    fn warmup_windows_are_discarded() {
        let (mut sim, mut cluster) = demo(9);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 32, SimTime::from_secs(30)),
        )
        .unwrap();
        drive(&mut sim, 60);
        sim.run_until(SimTime::from_secs(60), &mut cluster);
        // Only windows starting at ≥ 30 s survive: starts 30..=50 → 5.
        assert_eq!(ingester.windows_emitted(), 5);
    }

    #[test]
    fn late_attach_is_a_typed_error() {
        let (mut sim, mut cluster) = demo(10);
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        let err = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO),
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidState(ref what) if what.contains("before the simulation runs")),
            "expected InvalidState, got {err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the scrape interval")]
    fn misaligned_hop_panics() {
        let (mut sim, mut cluster) = demo(11);
        let mut cfg = IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO);
        cfg.interval = SimDuration::from_secs(3);
        let _ = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            cfg,
        );
        let _ = &mut cluster;
    }

    #[test]
    fn pass_through_degradation_matches_clean_run() {
        let run = |degrade: Option<DegradationConfig>| {
            let (mut sim, mut cluster) = demo(12);
            let mut cfg = IngestConfig::new(WindowConfig::from_secs(10, 5), 32, SimTime::ZERO);
            cfg.degrade = degrade;
            let ingester = StreamingIngester::attach(
                &mut sim,
                cluster.num_services(),
                &MetricCatalog::raw_all(),
                cfg,
            )
            .unwrap();
            drive(&mut sim, 60);
            sim.run_until(SimTime::from_secs(60), &mut cluster);
            (ingester.windows_emitted(), ingester.last_n(4))
        };
        // An all-zero degradation config takes the clean path entirely.
        let clean = run(None);
        let degraded = run(Some(DegradationConfig::none(99)));
        assert_eq!(clean.0, degraded.0);
        assert_eq!(clean.1, degraded.1);
    }

    #[test]
    fn degraded_stream_flags_windows_and_last_n_valid_skips_them() {
        let (mut sim, mut cluster) = demo(13);
        let degrade = DegradationConfig::none(7)
            .with_drop(0.10)
            .with_delay(0.3, 2)
            .with_duplicates(0.1);
        let cfg = IngestConfig::new(WindowConfig::from_secs(10, 5), 64, SimTime::ZERO)
            .with_degradation(degrade);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            cfg,
        )
        .unwrap();
        drive(&mut sim, 240);
        sim.run_until(SimTime::from_secs(240), &mut cluster);

        let stats = ingester.degrade_stats();
        assert!(
            stats.invalid_windows > 0,
            "a 10% drop rate must invalidate some windows: {stats:?}"
        );
        let windows = ingester.retained_windows();
        assert!(windows.iter().any(|(_, v)| *v != WindowValidity::Valid));
        assert!(windows.iter().any(|(_, v)| *v == WindowValidity::Valid));
        // The valid view is NaN-free; the raw view contains the gaps.
        let valid = ingester.last_n_valid(4).unwrap();
        for m in 0..valid.num_metrics() {
            for s in 0..valid.num_services() {
                assert!(valid
                    .samples(m, ServiceId::from_index(s))
                    .iter()
                    .all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn checkpoint_restore_continues_byte_identically() {
        let degrade = DegradationConfig::none(21)
            .with_drop(0.05)
            .with_delay(0.2, 2)
            .with_duplicates(0.1);
        let cfg = IngestConfig::new(WindowConfig::from_secs(10, 5), 64, SimTime::ZERO)
            .with_degradation(degrade);
        let run = |interrupt_at: Option<u64>| {
            let (mut sim, mut cluster) = demo(14);
            let ingester = StreamingIngester::attach(
                &mut sim,
                cluster.num_services(),
                &MetricCatalog::raw_all(),
                cfg,
            )
            .unwrap();
            drive(&mut sim, 120);
            if let Some(at) = interrupt_at {
                sim.run_until(SimTime::from_secs(at), &mut cluster);
                // Serialize, drop, and restore the inference-service
                // state — the simulated cluster keeps running underneath,
                // exactly like a crash of the collector pod.
                let json = serde_json::to_string(&ingester.checkpoint()).unwrap();
                ingester.restore(serde_json::from_str(&json).unwrap());
            }
            sim.run_until(SimTime::from_secs(120), &mut cluster);
            (
                ingester.retained_windows(),
                ingester.degrade_stats(),
                ingester.last_n(8),
            )
        };
        assert_eq!(run(None), run(Some(65)));
    }
}
