//! The streaming ingester: incremental counter scraping into ring-buffered
//! hopping windows.
//!
//! The ingester is the production data-collection service of the paper's
//! platform (Fig. 3). It is a thin wrapper over the shared
//! [`WindowEngine`](icfl_telemetry::WindowEngine) — the *same* incremental
//! finalizer the offline [`Recorder`](icfl_telemetry::Recorder) runs on —
//! configured for streaming: windows anchored at time zero, warmup windows
//! discarded, and only a bounded ring of recent windows retained. Live
//! windows therefore agree with offline training datasets by construction,
//! not by test. Memory is O(services × capacity) regardless of how long
//! the simulation runs, and no full-dataset rebuild ever happens on the
//! hot path.
//!
//! Window boundaries follow exactly the arithmetic of
//! [`WindowConfig::windows_in`]: window `k` spans
//! `[k·hop, k·hop + window]`, anchored at the attach time (time zero).

use icfl_micro::{Cluster, Counters, ServiceId};
use icfl_scenario::TelemetryTap;
use icfl_sim::{Sim, SimDuration, SimTime};
use icfl_telemetry::{Dataset, EngineConfig, MetricCatalog, WindowConfig, WindowEngine};
use std::sync::{Arc, Mutex};

/// Configuration of one streaming ingest loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Hopping-window geometry (shared with the offline pipeline so live
    /// windows are distribution-compatible with trained baselines).
    pub windows: WindowConfig,
    /// Counter scrape interval. Window and hop must be multiples of it.
    pub interval: SimDuration,
    /// Ring capacity in windows per (metric, service) series.
    pub capacity: usize,
    /// Windows *starting* before this instant are discarded (cluster
    /// warmup: queues filling, daemons settling — the same span the
    /// offline campaign excludes from datasets).
    pub collect_from: SimTime,
}

impl IngestConfig {
    /// Scrape-every-second ingest of the given window geometry, keeping
    /// `capacity` windows and discarding warmup windows before
    /// `collect_from`.
    pub fn new(windows: WindowConfig, capacity: usize, collect_from: SimTime) -> Self {
        IngestConfig {
            windows,
            interval: SimDuration::from_secs(1),
            capacity,
            collect_from,
        }
    }
}

/// A handle to the streaming ingest loop attached to a simulation.
///
/// Cloning is cheap (shared engine). Attach *before* the simulation runs
/// past time zero so window boundaries align with the scrape grid.
///
/// # Examples
///
/// ```
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps};
/// use icfl_online::{IngestConfig, StreamingIngester};
/// use icfl_sim::{Sim, SimTime};
/// use icfl_telemetry::{MetricCatalog, WindowConfig};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 5)?;
/// let mut sim = Sim::new(5);
/// Cluster::start(&mut sim, &mut cluster);
/// let ingester = StreamingIngester::attach(
///     &mut sim,
///     cluster.num_services(),
///     &MetricCatalog::raw_all(),
///     IngestConfig::new(WindowConfig::from_secs(10, 5), 16, SimTime::ZERO),
/// );
/// sim.run_until(SimTime::from_secs(60), &mut cluster);
/// // 60 s stream, 10 s windows hopping every 5 s → ends at 10, 15, ..., 60.
/// assert_eq!(ingester.windows_emitted(), 11);
/// assert_eq!(ingester.last_n(4).unwrap().num_windows(), 4);
/// # Ok::<(), icfl_micro::BuildError>(())
/// ```
#[derive(Clone)]
pub struct StreamingIngester {
    engine: Arc<Mutex<WindowEngine>>,
    catalog: MetricCatalog,
}

impl std::fmt::Debug for StreamingIngester {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let e = self.engine.lock().expect("ingest engine lock");
        f.debug_struct("StreamingIngester")
            .field("emitted", &e.emitted())
            .field("retained", &e.retained())
            .finish()
    }
}

impl StreamingIngester {
    /// Attaches the ingest loop to `sim`, scraping every
    /// [`IngestConfig::interval`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation is past time zero, if `capacity` is zero,
    /// or if window/hop are not multiples of the scrape interval (window
    /// boundaries would fall between scrapes).
    pub fn attach(
        sim: &mut Sim<Cluster>,
        num_services: usize,
        catalog: &MetricCatalog,
        cfg: IngestConfig,
    ) -> StreamingIngester {
        assert_eq!(
            sim.now(),
            SimTime::ZERO,
            "attach the ingester before running"
        );
        let mut engine_cfg = EngineConfig::streaming(cfg.windows, cfg.capacity, cfg.collect_from);
        engine_cfg.interval = cfg.interval;
        let engine = Arc::new(Mutex::new(WindowEngine::new(engine_cfg, num_services)));
        let shared = Arc::clone(&engine);
        sim.schedule_periodic(SimTime::ZERO, cfg.interval, move |sim, cl: &mut Cluster| {
            let row: Vec<Counters> = (0..num_services)
                .map(|i| cl.counters(ServiceId::from_index(i)))
                .collect();
            shared
                .lock()
                .expect("ingest engine lock")
                .push(sim.now(), row);
        });
        StreamingIngester {
            engine,
            catalog: catalog.clone(),
        }
    }

    /// Total windows finalized since attach (monotonic; includes windows
    /// already evicted from the ring).
    pub fn windows_emitted(&self) -> u64 {
        self.engine.lock().expect("ingest engine lock").emitted()
    }

    /// Windows currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.engine.lock().expect("ingest engine lock").retained()
    }

    /// End time of the newest finalized window, if any.
    pub fn newest_window_end(&self) -> Option<SimTime> {
        self.engine
            .lock()
            .expect("ingest engine lock")
            .newest_window_end()
    }

    /// A [`Dataset`] of the `n` most recent windows (`None` until `n`
    /// windows have been retained). Shape-compatible with the offline
    /// datasets the causal model was trained on.
    pub fn last_n(&self, n: usize) -> Option<Dataset> {
        self.engine
            .lock()
            .expect("ingest engine lock")
            .last_n(&self.catalog, n)
    }
}

/// Streaming collection as a scenario telemetry tap: attaches a
/// [`StreamingIngester`] for `catalog` at the harness's fixed tap point —
/// the online counterpart of `icfl_scenario::RecorderTap`, over the same
/// window engine.
#[derive(Debug, Clone)]
pub struct IngesterTap {
    catalog: MetricCatalog,
    cfg: IngestConfig,
}

impl IngesterTap {
    /// A tap ingesting `catalog` under `cfg`.
    pub fn new(catalog: &MetricCatalog, cfg: IngestConfig) -> Self {
        IngesterTap {
            catalog: catalog.clone(),
            cfg,
        }
    }
}

impl TelemetryTap for IngesterTap {
    type Handle = StreamingIngester;

    fn attach(self, sim: &mut Sim<Cluster>, cluster: &Cluster) -> Self::Handle {
        StreamingIngester::attach(sim, cluster.num_services(), &self.catalog, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{steps, ClusterSpec, ServiceSpec};

    fn demo(seed: u64) -> (Sim<Cluster>, Cluster) {
        let spec = ClusterSpec::new("demo")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(2), steps::call("b", "/")]),
            )
            .service(
                ServiceSpec::web("b")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(1)]),
            );
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        (sim, cluster)
    }

    fn drive(sim: &mut Sim<Cluster>, until_s: u64) {
        for i in 0..(until_s * 10) {
            let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
            sim.schedule_at(at, |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, _| {});
            });
        }
    }

    // The streaming-vs-offline equivalence test that used to live here is
    // gone on purpose: both paths now run on the one
    // `icfl_telemetry::WindowEngine`, so they agree by construction.

    #[test]
    fn ring_evicts_oldest_windows() {
        let (mut sim, mut cluster) = demo(8);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO),
        );
        drive(&mut sim, 90);
        sim.run_until(SimTime::from_secs(90), &mut cluster);
        // 90 s → window ends 10, 15, ..., 90 = 17 emitted, 4 retained.
        assert_eq!(ingester.windows_emitted(), 17);
        assert_eq!(ingester.retained(), 4);
        assert_eq!(ingester.newest_window_end(), Some(SimTime::from_secs(90)));
        assert!(ingester.last_n(5).is_none());
        assert_eq!(ingester.last_n(4).unwrap().num_windows(), 4);
    }

    #[test]
    fn warmup_windows_are_discarded() {
        let (mut sim, mut cluster) = demo(9);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 32, SimTime::from_secs(30)),
        );
        drive(&mut sim, 60);
        sim.run_until(SimTime::from_secs(60), &mut cluster);
        // Only windows starting at ≥ 30 s survive: starts 30..=50 → 5.
        assert_eq!(ingester.windows_emitted(), 5);
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn late_attach_panics() {
        let (mut sim, mut cluster) = demo(10);
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        let _ = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO),
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the scrape interval")]
    fn misaligned_hop_panics() {
        let (mut sim, mut cluster) = demo(11);
        let mut cfg = IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO);
        cfg.interval = SimDuration::from_secs(3);
        let _ = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            cfg,
        );
        let _ = &mut cluster;
    }
}
