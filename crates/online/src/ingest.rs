//! The streaming ingester: incremental counter scraping into ring-buffered
//! hopping windows.
//!
//! Where the offline [`Recorder`](icfl_telemetry::Recorder) retains the
//! whole scrape log and differentiates it into datasets after the fact, the
//! ingester is the production data-collection service of the paper's
//! platform (Fig. 3): it scrapes every service's counters on a fixed
//! interval, finalizes each hopping window the moment its end boundary is
//! scraped, and keeps only a bounded ring of recent window values per
//! (metric, service) pair plus the one window-length of raw snapshots
//! needed to close the next window. Memory is O(catalog × services ×
//! capacity) regardless of how long the simulation runs, and no
//! full-dataset rebuild ever happens on the hot path.
//!
//! Window boundaries follow exactly the arithmetic of
//! [`WindowConfig::windows_in`]: window `k` spans
//! `[k·hop, k·hop + window]`, anchored at the attach time (time zero).

use icfl_micro::{Cluster, Counters, ServiceId};
use icfl_sim::{Sim, SimDuration, SimTime};
use icfl_telemetry::{Dataset, MetricCatalog, MetricSpec, WindowConfig};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Configuration of one streaming ingest loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Hopping-window geometry (shared with the offline pipeline so live
    /// windows are distribution-compatible with trained baselines).
    pub windows: WindowConfig,
    /// Counter scrape interval. Window and hop must be multiples of it.
    pub interval: SimDuration,
    /// Ring capacity in windows per (metric, service) series.
    pub capacity: usize,
    /// Windows *starting* before this instant are discarded (cluster
    /// warmup: queues filling, daemons settling — the same span the
    /// offline campaign excludes from datasets).
    pub collect_from: SimTime,
}

impl IngestConfig {
    /// Scrape-every-second ingest of the given window geometry, keeping
    /// `capacity` windows and discarding warmup windows before
    /// `collect_from`.
    pub fn new(windows: WindowConfig, capacity: usize, collect_from: SimTime) -> Self {
        IngestConfig {
            windows,
            interval: SimDuration::from_secs(1),
            capacity,
            collect_from,
        }
    }
}

struct IngestState {
    cfg: IngestConfig,
    metrics: Vec<MetricSpec>,
    metric_names: Vec<String>,
    num_services: usize,
    /// Recent raw snapshots spanning exactly one window length:
    /// `(scrape time, per-service counters)`, oldest first.
    snaps: VecDeque<(SimTime, Vec<Counters>)>,
    /// `rings[m][s]`: finalized per-window metric values, oldest first,
    /// capped at `cfg.capacity`.
    rings: Vec<Vec<VecDeque<f64>>>,
    /// End times of the retained windows (same ring discipline).
    window_ends: VecDeque<SimTime>,
    /// Total windows finalized since attach (including evicted ones).
    emitted: u64,
}

impl IngestState {
    fn on_scrape(&mut self, now: SimTime, row: Vec<Counters>) {
        let window = self.cfg.windows.window;
        let hop = self.cfg.windows.hop;
        self.snaps.push_back((now, row));
        // A window `[now - window, now]` closes at this scrape iff its end
        // is `window + k·hop` for some k ≥ 0 — the same boundaries
        // `WindowConfig::windows_in` enumerates from time zero.
        if now.as_nanos() >= window.as_nanos()
            && (now.as_nanos() - window.as_nanos()).is_multiple_of(hop.as_nanos())
        {
            let start = now.as_nanos() - window.as_nanos();
            if start >= self.cfg.collect_from.as_nanos() {
                self.finalize_window(now);
            }
        }
        // Drop snapshots no future window can start at: every boundary
        // after `now` ends at `> now`, so its start lies at `> now − window`,
        // and starts sit on the scrape grid — the oldest start still
        // reachable is `now − window + interval`.
        let keep_from = now.as_nanos() as i128 + self.cfg.interval.as_nanos() as i128
            - window.as_nanos() as i128;
        while let Some(front) = self.snaps.front() {
            if (front.0.as_nanos() as i128) < keep_from {
                self.snaps.pop_front();
            } else {
                break;
            }
        }
    }

    fn finalize_window(&mut self, end: SimTime) {
        let window = self.cfg.windows.window;
        let start_nanos = end.as_nanos() - window.as_nanos();
        let Some(start_row) = self
            .snaps
            .iter()
            .find(|(t, _)| t.as_nanos() == start_nanos)
            .map(|(_, row)| row.clone())
        else {
            // Attach happened mid-stream (no snapshot at the window start);
            // skip — only possible for the very first partial window.
            return;
        };
        let end_row = self
            .snaps
            .back()
            .map(|(_, row)| row.clone())
            .expect("the closing scrape was just pushed");
        let secs = window.as_secs_f64();
        for (m, metric) in self.metrics.iter().enumerate() {
            for svc in 0..self.num_services {
                let v = metric.evaluate(&start_row[svc], &end_row[svc], secs);
                let ring = &mut self.rings[m][svc];
                if ring.len() == self.cfg.capacity {
                    ring.pop_front();
                }
                ring.push_back(v);
            }
        }
        if self.window_ends.len() == self.cfg.capacity {
            self.window_ends.pop_front();
        }
        self.window_ends.push_back(end);
        self.emitted += 1;
    }

    fn last_n(&self, n: usize) -> Option<Dataset> {
        let have = self.window_ends.len();
        if n == 0 || have < n {
            return None;
        }
        let values: Vec<Vec<Vec<f64>>> = self
            .rings
            .iter()
            .map(|per_svc| {
                per_svc
                    .iter()
                    .map(|ring| ring.iter().skip(have - n).copied().collect())
                    .collect()
            })
            .collect();
        Some(Dataset::new(self.metric_names.clone(), values))
    }
}

/// A handle to the streaming ingest loop attached to a simulation.
///
/// Cloning is cheap (shared state). Attach *before* the simulation runs
/// past time zero so window boundaries align with the scrape grid.
///
/// # Examples
///
/// ```
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps};
/// use icfl_online::{IngestConfig, StreamingIngester};
/// use icfl_sim::{Sim, SimTime};
/// use icfl_telemetry::{MetricCatalog, WindowConfig};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 5)?;
/// let mut sim = Sim::new(5);
/// Cluster::start(&mut sim, &mut cluster);
/// let ingester = StreamingIngester::attach(
///     &mut sim,
///     cluster.num_services(),
///     &MetricCatalog::raw_all(),
///     IngestConfig::new(WindowConfig::from_secs(10, 5), 16, SimTime::ZERO),
/// );
/// sim.run_until(SimTime::from_secs(60), &mut cluster);
/// // 60 s stream, 10 s windows hopping every 5 s → ends at 10, 15, ..., 60.
/// assert_eq!(ingester.windows_emitted(), 11);
/// assert_eq!(ingester.last_n(4).unwrap().num_windows(), 4);
/// # Ok::<(), icfl_micro::BuildError>(())
/// ```
#[derive(Clone)]
pub struct StreamingIngester {
    state: Arc<Mutex<IngestState>>,
}

impl std::fmt::Debug for StreamingIngester {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("ingest state lock");
        f.debug_struct("StreamingIngester")
            .field("emitted", &s.emitted)
            .field("retained", &s.window_ends.len())
            .finish()
    }
}

impl StreamingIngester {
    /// Attaches the ingest loop to `sim`, scraping every
    /// [`IngestConfig::interval`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation is past time zero, if `capacity` is zero,
    /// or if window/hop are not multiples of the scrape interval (window
    /// boundaries would fall between scrapes).
    pub fn attach(
        sim: &mut Sim<Cluster>,
        num_services: usize,
        catalog: &MetricCatalog,
        cfg: IngestConfig,
    ) -> StreamingIngester {
        assert_eq!(
            sim.now(),
            SimTime::ZERO,
            "attach the ingester before running"
        );
        assert!(cfg.capacity > 0, "ring capacity must be positive");
        assert!(!cfg.interval.is_zero(), "scrape interval must be positive");
        assert_eq!(
            cfg.windows.window.as_nanos() % cfg.interval.as_nanos(),
            0,
            "window must be a multiple of the scrape interval"
        );
        assert_eq!(
            cfg.windows.hop.as_nanos() % cfg.interval.as_nanos(),
            0,
            "hop must be a multiple of the scrape interval"
        );
        let state = Arc::new(Mutex::new(IngestState {
            cfg,
            metrics: cfg_metrics(catalog),
            metric_names: catalog.metric_names(),
            num_services,
            snaps: VecDeque::new(),
            rings: vec![vec![VecDeque::with_capacity(cfg.capacity); num_services]; catalog.len()],
            window_ends: VecDeque::with_capacity(cfg.capacity),
            emitted: 0,
        }));
        let shared = Arc::clone(&state);
        sim.schedule_periodic(SimTime::ZERO, cfg.interval, move |sim, cl: &mut Cluster| {
            let row: Vec<Counters> = (0..num_services)
                .map(|i| cl.counters(ServiceId::from_index(i)))
                .collect();
            shared
                .lock()
                .expect("ingest state lock")
                .on_scrape(sim.now(), row);
        });
        StreamingIngester { state }
    }

    /// Total windows finalized since attach (monotonic; includes windows
    /// already evicted from the ring).
    pub fn windows_emitted(&self) -> u64 {
        self.state.lock().expect("ingest state lock").emitted
    }

    /// Windows currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.state
            .lock()
            .expect("ingest state lock")
            .window_ends
            .len()
    }

    /// End time of the newest finalized window, if any.
    pub fn newest_window_end(&self) -> Option<SimTime> {
        self.state
            .lock()
            .expect("ingest state lock")
            .window_ends
            .back()
            .copied()
    }

    /// A [`Dataset`] of the `n` most recent windows (`None` until `n`
    /// windows have been retained). Shape-compatible with the offline
    /// datasets the causal model was trained on.
    pub fn last_n(&self, n: usize) -> Option<Dataset> {
        self.state.lock().expect("ingest state lock").last_n(n)
    }
}

fn cfg_metrics(catalog: &MetricCatalog) -> Vec<MetricSpec> {
    catalog.metrics().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{steps, ClusterSpec, ServiceSpec};
    use icfl_telemetry::Recorder;

    fn demo(seed: u64) -> (Sim<Cluster>, Cluster) {
        let spec = ClusterSpec::new("demo")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(2), steps::call("b", "/")]),
            )
            .service(
                ServiceSpec::web("b")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(1)]),
            );
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        (sim, cluster)
    }

    fn drive(sim: &mut Sim<Cluster>, until_s: u64) {
        for i in 0..(until_s * 10) {
            let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
            sim.schedule_at(at, |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, _| {});
            });
        }
    }

    #[test]
    fn emits_the_same_windows_as_the_offline_recorder() {
        let windows = WindowConfig::from_secs(10, 5);
        // Offline: record everything, extract the phase dataset at the end.
        let (mut sim, mut cluster) = demo(7);
        let recorder = Recorder::attach(&mut sim, cluster.num_services());
        drive(&mut sim, 120);
        sim.run_until(SimTime::from_secs(120), &mut cluster);
        let offline = recorder
            .dataset(
                &MetricCatalog::derived_all(),
                SimTime::ZERO,
                SimTime::from_secs(120),
                windows,
            )
            .unwrap();

        // Online: same seed, ring large enough to retain every window.
        let (mut sim, mut cluster) = demo(7);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::derived_all(),
            IngestConfig::new(windows, 64, SimTime::ZERO),
        );
        drive(&mut sim, 120);
        sim.run_until(SimTime::from_secs(120), &mut cluster);

        let n = offline.num_windows();
        assert_eq!(ingester.windows_emitted(), n as u64);
        let online = ingester.last_n(n).unwrap();
        assert_eq!(online.num_metrics(), offline.num_metrics());
        for m in 0..offline.num_metrics() {
            for s in 0..offline.num_services() {
                let svc = ServiceId::from_index(s);
                assert_eq!(
                    online.samples(m, svc),
                    offline.samples(m, svc),
                    "metric {m} service {s}: streaming and batch windows must agree"
                );
            }
        }
    }

    #[test]
    fn ring_evicts_oldest_windows() {
        let (mut sim, mut cluster) = demo(8);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO),
        );
        drive(&mut sim, 90);
        sim.run_until(SimTime::from_secs(90), &mut cluster);
        // 90 s → window ends 10, 15, ..., 90 = 17 emitted, 4 retained.
        assert_eq!(ingester.windows_emitted(), 17);
        assert_eq!(ingester.retained(), 4);
        assert_eq!(ingester.newest_window_end(), Some(SimTime::from_secs(90)));
        assert!(ingester.last_n(5).is_none());
        assert_eq!(ingester.last_n(4).unwrap().num_windows(), 4);
    }

    #[test]
    fn warmup_windows_are_discarded() {
        let (mut sim, mut cluster) = demo(9);
        let ingester = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 32, SimTime::from_secs(30)),
        );
        drive(&mut sim, 60);
        sim.run_until(SimTime::from_secs(60), &mut cluster);
        // Only windows starting at ≥ 30 s survive: starts 30..=50 → 5.
        assert_eq!(ingester.windows_emitted(), 5);
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn late_attach_panics() {
        let (mut sim, mut cluster) = demo(10);
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        let _ = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO),
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the scrape interval")]
    fn misaligned_hop_panics() {
        let (mut sim, mut cluster) = demo(11);
        let mut cfg = IngestConfig::new(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO);
        cfg.interval = SimDuration::from_secs(3);
        let _ = StreamingIngester::attach(
            &mut sim,
            cluster.num_services(),
            &MetricCatalog::raw_all(),
            cfg,
        );
        let _ = &mut cluster;
    }
}
