//! The online inference session: a long-running simulated cluster serving
//! continuous traffic while faults fire on a schedule and the streaming
//! ingester + incident detector + online localizer watch the live windows.
//!
//! The session is the in-process equivalent of the paper's production
//! platform (Fig. 3): data collection feeds the inference service, which
//! detects incidents on live windows and, on confirmation, runs
//! Algorithm 2 majority voting against a trained [`CausalModel`]. The
//! host drives detection ticks *between* `run_until` segments at window
//! boundaries, so every statistical decision happens at a deterministic
//! simulation time and the report is byte-identical for a given seed
//! regardless of thread count.

use icfl_apps::App;
use icfl_core::{CausalModel, Localization};
use icfl_faults::{FaultInjector, InterventionTrace};
use icfl_micro::{Cluster, FaultKind, ServiceId};
use icfl_scenario::Scenario;
use icfl_sim::{Sim, SimDuration, SimTime};
use icfl_telemetry::{DegradationConfig, WindowConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::detector::{DebounceConfig, DetectorEvent, IncidentDetector};
use crate::forensics::{self, EvidenceChain, FlightRecorder, ModelProvenance, TransitionEvidence};
use crate::ingest::{IngestConfig, IngesterTap};
use crate::report::{IncidentReport, SessionReport};
use icfl_stats::ShiftDetector;

/// One fault within an episode, offset from the episode start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeFault {
    /// Service to fault.
    pub service: ServiceId,
    /// Fault to inject.
    pub fault: FaultKind,
    /// Delay from the episode start to this fault's onset.
    pub offset: SimDuration,
    /// How long the fault stays active.
    pub duration: SimDuration,
}

/// One incident episode: one or more (possibly overlapping) faults
/// injected around the same time and expected to be detected as a single
/// incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Onset of the episode on the simulation clock.
    pub start: SimTime,
    /// The episode's faults. A single entry is an ordinary incident;
    /// several entries model overlapping faults.
    pub faults: Vec<EpisodeFault>,
}

impl Episode {
    /// A single-fault episode starting at `start`.
    pub fn single(
        start: SimTime,
        service: ServiceId,
        fault: FaultKind,
        duration: SimDuration,
    ) -> Self {
        Episode {
            start,
            faults: vec![EpisodeFault {
                service,
                fault,
                offset: SimDuration::from_secs(0),
                duration,
            }],
        }
    }

    /// When the last fault of the episode lifts.
    pub fn end(&self) -> SimTime {
        self.faults
            .iter()
            .map(|f| {
                self.start
                    .checked_add(f.offset)
                    .and_then(|t| t.checked_add(f.duration))
                    .expect("episode end overflows the simulation clock")
            })
            .max()
            .unwrap_or(self.start)
    }

    /// The distinct faulted services, in injection order.
    pub fn services(&self) -> Vec<ServiceId> {
        let mut out = Vec::new();
        for f in &self.faults {
            if !out.contains(&f.service) {
                out.push(f.service);
            }
        }
        out
    }
}

/// A validated, time-ordered list of non-overlapping episodes.
///
/// Faults *within* an episode may overlap freely; *episodes* must be
/// disjoint and ordered so each confirmation can be attributed to exactly
/// one episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentSchedule {
    episodes: Vec<Episode>,
}

impl IncidentSchedule {
    /// Builds a schedule.
    ///
    /// # Panics
    ///
    /// Panics if any episode is empty, or episodes are not strictly
    /// ordered with each starting after the previous one ends.
    pub fn new(episodes: Vec<Episode>) -> Self {
        for (i, ep) in episodes.iter().enumerate() {
            assert!(!ep.faults.is_empty(), "episode {i} has no faults");
            if i > 0 {
                assert!(
                    ep.start >= episodes[i - 1].end(),
                    "episode {i} starts before episode {} ends",
                    i - 1
                );
            }
        }
        IncidentSchedule { episodes }
    }

    /// The episodes, in order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Total faults across all episodes.
    pub fn num_faults(&self) -> usize {
        self.episodes.iter().map(|e| e.faults.len()).sum()
    }

    /// When the last episode ends ([`SimTime::ZERO`] if empty).
    pub fn end(&self) -> SimTime {
        self.episodes
            .iter()
            .map(Episode::end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Schedules every fault on the simulation (public so external
    /// drivers — the trace recorder, custom harnesses — can arm the same
    /// schedule on their own scenario).
    pub fn arm(&self, sim: &mut Sim<Cluster>, trace: &InterventionTrace) {
        for ep in &self.episodes {
            for f in &ep.faults {
                let from = ep
                    .start
                    .checked_add(f.offset)
                    .expect("fault onset overflows the simulation clock");
                let to = from
                    .checked_add(f.duration)
                    .expect("fault end overflows the simulation clock");
                FaultInjector::inject_between(sim, f.service, f.fault.clone(), from, to, trace);
            }
        }
    }
}

/// Tuning of one online session.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Hopping-window geometry; must match the trained model's windows so
    /// live windows are distribution-compatible with its baseline.
    pub windows: WindowConfig,
    /// Load scale (closed-loop user replicas per flow), matching training.
    pub replicas: usize,
    /// Cluster warmup; windows starting earlier are discarded, mirroring
    /// the offline campaign's warmup phase.
    pub warmup: SimDuration,
    /// Live windows fed to each detection tick's two-sample test.
    pub live_windows: usize,
    /// Live windows fed to Algorithm 2 at localization time.
    pub localize_windows: usize,
    /// Detection ticks to wait between confirmation and localization,
    /// letting fault windows accumulate for a sharper anomaly set.
    pub localize_delay_ticks: u32,
    /// (metric, service) pairs that must shift for a tick to count as
    /// anomalous.
    pub min_shifted_pairs: usize,
    /// Debounce/cool-down tuning of the incident state machine.
    pub debounce: DebounceConfig,
    /// Two-sample test for live-vs-reference comparison (KS by default;
    /// Anderson–Darling opt-in).
    pub detector: ShiftDetector,
    /// How long the session keeps running after the last scheduled fault
    /// lifts, so trailing incidents can resolve.
    pub drain: SimDuration,
    /// Grace period after an episode's end during which a confirmation is
    /// still attributed to it (detection lags injection by design).
    pub match_slack: SimDuration,
    /// Telemetry-degradation model applied to the scrape stream (`None`
    /// runs the clean in-order path byte-identically to before the model
    /// existed). With degradation on, detection and localization read only
    /// *valid* windows, so telemetry gaps alone never raise an alarm.
    pub degrade: Option<DegradationConfig>,
}

impl OnlineConfig {
    /// Quick-mode session tuning: 10 s/5 s windows, 10 s warmup.
    pub fn quick() -> Self {
        OnlineConfig {
            windows: WindowConfig::from_secs(10, 5),
            replicas: 1,
            warmup: SimDuration::from_secs(10),
            live_windows: 5,
            localize_windows: 8,
            localize_delay_ticks: 2,
            min_shifted_pairs: 1,
            debounce: DebounceConfig::default(),
            detector: ShiftDetector::ks(0.05).with_min_effect(0.1),
            drain: SimDuration::from_secs(60),
            match_slack: SimDuration::from_secs(40),
            degrade: None,
        }
    }

    /// Paper-mode session tuning: 60 s/30 s windows, 30 s warmup.
    pub fn paper() -> Self {
        OnlineConfig {
            windows: WindowConfig::default(),
            replicas: 1,
            warmup: SimDuration::from_secs(30),
            live_windows: 5,
            localize_windows: 8,
            localize_delay_ticks: 2,
            min_shifted_pairs: 1,
            debounce: DebounceConfig::default(),
            detector: ShiftDetector::ks(0.05).with_min_effect(0.1),
            drain: SimDuration::from_secs(360),
            match_slack: SimDuration::from_secs(240),
            degrade: None,
        }
    }

    /// Replaces the two-sample test, returning `self`.
    pub fn with_detector(mut self, detector: ShiftDetector) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the load scale, returning `self`.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Enables the telemetry-degradation model, returning `self`.
    pub fn with_degradation(mut self, degrade: DegradationConfig) -> Self {
        self.degrade = Some(degrade);
        self
    }
}

/// Errors surfaced while running an online session.
#[derive(Debug)]
pub enum OnlineError {
    /// The application failed to build.
    Build(icfl_micro::BuildError),
    /// The load generator rejected its configuration.
    Load(icfl_loadgen::LoadError),
    /// A two-sample test failed (degenerate live samples).
    Stats(icfl_stats::StatsError),
    /// Localization failed (shape mismatch with the model).
    Core(icfl_core::CoreError),
    /// An externally fed session rejected its input (out-of-order scrape,
    /// wrong row width, absurd time jump). The server maps these to
    /// client-error responses.
    Feed(String),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Build(e) => write!(f, "cluster build failed: {e}"),
            OnlineError::Load(e) => write!(f, "load generator failed: {e}"),
            OnlineError::Stats(e) => write!(f, "detection tick failed: {e}"),
            OnlineError::Core(e) => write!(f, "online localization failed: {e}"),
            OnlineError::Feed(e) => write!(f, "feed rejected: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<icfl_micro::BuildError> for OnlineError {
    fn from(e: icfl_micro::BuildError) -> Self {
        OnlineError::Build(e)
    }
}
impl From<icfl_loadgen::LoadError> for OnlineError {
    fn from(e: icfl_loadgen::LoadError) -> Self {
        OnlineError::Load(e)
    }
}
impl From<icfl_stats::StatsError> for OnlineError {
    fn from(e: icfl_stats::StatsError) -> Self {
        OnlineError::Stats(e)
    }
}
impl From<icfl_core::CoreError> for OnlineError {
    fn from(e: icfl_core::CoreError) -> Self {
        OnlineError::Core(e)
    }
}
impl From<icfl_scenario::ScenarioError> for OnlineError {
    fn from(e: icfl_scenario::ScenarioError) -> Self {
        match e {
            icfl_scenario::ScenarioError::Build(e) => OnlineError::Build(e),
            icfl_scenario::ScenarioError::Load(e) => OnlineError::Load(e),
        }
    }
}

/// Session result alias.
pub type Result<T> = std::result::Result<T, OnlineError>;

/// One confirmed incident as tracked while the session runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Detection {
    pub(crate) confirmed_at: SimTime,
    pub(crate) localize_not_before: SimTime,
    pub(crate) localized_at: Option<SimTime>,
    pub(crate) localization: Option<Localization>,
    pub(crate) resolved_at: Option<SimTime>,
    /// Forensic evidence chain: opened at confirmation, completed with
    /// per-candidate score breakdowns at verdict time. `serde(default)`
    /// keeps pre-forensics checkpoints loadable.
    #[serde(default)]
    pub(crate) chain: Option<EvidenceChain>,
}

/// The tick-invariant half of a session's decision state: the trained
/// model, its reference distribution, and the window/delay knobs. Built
/// once per session and handed to every [`decision_tick`].
pub(crate) struct TickContext<'a> {
    pub(crate) model: &'a CausalModel,
    pub(crate) reference: &'a icfl_telemetry::Dataset,
    pub(crate) app: &'a str,
    pub(crate) live_windows: usize,
    pub(crate) localize_windows: usize,
    pub(crate) localize_delay: SimDuration,
    /// Target labels by index (service names, or `service@replica` rows
    /// for instance-granularity sessions) — resolves ids in chains.
    pub(crate) service_names: &'a [String],
    /// Registry provenance of `model`, stamped into every chain.
    pub(crate) provenance: &'a ModelProvenance,
}

/// One detection tick's statistical decisions, shared verbatim between
/// the simulation-driven [`OnlineSession`] and the externally fed
/// [`FeedSession`](crate::FeedSession) so the two paths cannot drift:
/// gap-aware detection over valid live windows, detector-event
/// bookkeeping, and delayed Algorithm-2 localization of pending
/// confirmations. `fetch_valid(n)` returns the `n` most recent valid
/// windows (or `None` until enough are retained).
pub(crate) fn decision_tick<F>(
    detector: &mut IncidentDetector,
    detections: &mut Vec<Detection>,
    recorder: &mut FlightRecorder,
    ctx: &TickContext<'_>,
    tick: SimTime,
    mut fetch_valid: F,
) -> Result<()>
where
    F: FnMut(usize) -> Option<icfl_telemetry::Dataset>,
{
    let &TickContext {
        model,
        reference,
        app,
        live_windows,
        localize_windows,
        localize_delay,
        service_names,
        provenance,
    } = ctx;
    let label = |i: usize| {
        service_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("service-{i}"))
    };
    // Gap-aware detection: only *valid* windows feed the two-sample
    // test. When degraded telemetry leaves fewer than `live_windows`
    // trustworthy windows, the tick is skipped entirely — "no data" is
    // neither quiet nor anomalous, so gaps can neither raise an alarm
    // nor resolve a real one.
    if let Some(live) = fetch_valid(live_windows) {
        let decision = detector.observe(reference, &live)?;
        if let Some(event) = &decision.event {
            let name = match event {
                DetectorEvent::Suspected => "suspected",
                DetectorEvent::Confirmed => "confirmed",
                DetectorEvent::Dismissed => "dismissed",
                DetectorEvent::Resolved => "resolved",
            };
            icfl_obs::counter_add(
                "icfl_detector_events_total",
                &[("app", app), ("event", name)],
                1,
            );
            // Flight-record the transition with the (metric, target)
            // pairs that shifted — the raw signal behind the event.
            let metric_names = model.catalog().metric_names();
            recorder.record_transition(TransitionEvidence {
                tick_nanos: tick.as_nanos(),
                event: *event,
                shifted: decision
                    .shifted_pairs
                    .iter()
                    .map(|&(m, s)| {
                        (
                            metric_names
                                .get(m)
                                .cloned()
                                .unwrap_or_else(|| format!("metric-{m}")),
                            label(s.index()),
                        )
                    })
                    .collect(),
            });
        }
        match decision.event {
            Some(DetectorEvent::Confirmed) => {
                let incident = u32::try_from(detections.len()).unwrap_or(u32::MAX);
                let chain = forensics::open_chain(incident, provenance, recorder, tick);
                icfl_obs::counter_add("icfl_forensics_chains_total", &[("app", app)], 1);
                detections.push(Detection {
                    confirmed_at: tick,
                    localize_not_before: tick
                        .checked_add(localize_delay)
                        .expect("localize time fits"),
                    localized_at: None,
                    localization: None,
                    resolved_at: None,
                    chain: Some(chain),
                });
            }
            Some(DetectorEvent::Resolved) => {
                if let Some(d) = detections
                    .iter_mut()
                    .rev()
                    .find(|d| d.resolved_at.is_none())
                {
                    d.resolved_at = Some(tick);
                }
            }
            _ => {}
        }
    }

    // Localize pending confirmations once their delay has passed and
    // enough *valid* live windows are retained — Algorithm 2 votes only
    // over windows whose rates are trustworthy.
    for d in detections.iter_mut() {
        if d.localization.is_none() && tick >= d.localize_not_before {
            if let Some(live) = fetch_valid(localize_windows) {
                let mut span = icfl_obs::span("localize");
                span.arg("app", app);
                let loc = model.localize(&live)?;
                // Complete the evidence chain at verdict time: refresh
                // the flight-recorder view (windows/transitions now span
                // the localization delay) and attach the per-candidate
                // Algorithm-2 score breakdowns.
                if let Some(chain) = d.chain.as_mut() {
                    forensics::complete_chain(chain, recorder, model, &loc, service_names, tick);
                }
                d.localization = Some(loc);
                d.localized_at = Some(tick);
            }
        }
    }
    Ok(())
}

/// A serializable checkpoint of the *inference service's* entire state at
/// a detection-tick boundary: the ingest engine (and degrader, if any),
/// the incident detector, and every detection tracked so far. The
/// simulated cluster underneath is not part of it — in production the
/// monitoring substrate outlives an inference-service crash, and resuming
/// from this checkpoint continues the session byte-identically
/// (asserted by `tests/checkpoint_resume.rs`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    ingest: crate::ingest::IngestCheckpoint,
    detector: IncidentDetector,
    detections: Vec<Detection>,
    /// The flight recorder rides the checkpoint so evidence chains
    /// assembled after a restore are byte-identical to an uninterrupted
    /// run's. `serde(default)` keeps pre-forensics checkpoints loadable.
    #[serde(default)]
    recorder: FlightRecorder,
}

/// What the run loop hands to report assembly once the horizon is
/// reached.
struct SessionOutcome {
    detections: Vec<Detection>,
    windows_ingested: u64,
    degraded: icfl_telemetry::DegradeStats,
}

impl SessionOutcome {
    /// Extracts the evidence chains, in confirmation order (one per
    /// confirmed incident; pre-verdict chains have empty breakdowns).
    fn chains(&self) -> Vec<EvidenceChain> {
        self.detections
            .iter()
            .filter_map(|d| d.chain.clone())
            .collect()
    }
}

/// The online inference session driver.
#[derive(Debug)]
pub struct OnlineSession;

impl OnlineSession {
    /// Runs one session: builds `app` at `seed`, serves continuous load,
    /// injects `schedule`'s faults, and watches live windows with the
    /// incident detector and the online localizer backed by `model`.
    ///
    /// The model's catalog and baseline are used as-is; `cfg.windows` must
    /// match the geometry the model was trained with for its baseline to
    /// be a valid reference distribution.
    ///
    /// # Errors
    ///
    /// Fails if the cluster cannot be built, load cannot start, or a
    /// statistical step fails.
    pub fn run(
        app: &App,
        model: &CausalModel,
        schedule: &IncidentSchedule,
        cfg: &OnlineConfig,
        seed: u64,
    ) -> Result<SessionReport> {
        Self::run_inner(app, model, schedule, cfg, seed, None).map(|(report, _)| report)
    }

    /// Runs one session like [`OnlineSession::run`] and additionally
    /// returns the [`EvidenceChain`] of every confirmed incident, in
    /// confirmation order. The report is byte-identical to
    /// [`OnlineSession::run`]'s (chains are delivered out-of-band, never
    /// serialized into the report), and the chains themselves serialize
    /// byte-identically across thread counts and checkpoint/restores.
    ///
    /// # Errors
    ///
    /// As [`OnlineSession::run`].
    pub fn run_with_forensics(
        app: &App,
        model: &CausalModel,
        schedule: &IncidentSchedule,
        cfg: &OnlineConfig,
        seed: u64,
    ) -> Result<(SessionReport, Vec<EvidenceChain>)> {
        Self::run_inner(app, model, schedule, cfg, seed, None)
    }

    /// Runs one session like [`OnlineSession::run`], but crash-restarts
    /// the inference service at the `interrupt_after_ticks`-th detection
    /// tick: every piece of inference state (ingest engine, degrader,
    /// detector, detections) is serialized to a [`SessionCheckpoint`],
    /// dropped, and restored from the bytes before the session continues.
    /// The report is byte-identical to an uninterrupted run — the
    /// checkpoint provably captures the whole state.
    ///
    /// # Errors
    ///
    /// As [`OnlineSession::run`], plus [`OnlineError::Core`] if the
    /// checkpoint fails to (de)serialize.
    pub fn run_with_interruption(
        app: &App,
        model: &CausalModel,
        schedule: &IncidentSchedule,
        cfg: &OnlineConfig,
        seed: u64,
        interrupt_after_ticks: u64,
    ) -> Result<SessionReport> {
        Self::run_inner(app, model, schedule, cfg, seed, Some(interrupt_after_ticks))
            .map(|(report, _)| report)
    }

    fn run_inner(
        app: &App,
        model: &CausalModel,
        schedule: &IncidentSchedule,
        cfg: &OnlineConfig,
        seed: u64,
        interrupt_after_ticks: Option<u64>,
    ) -> Result<(SessionReport, Vec<EvidenceChain>)> {
        let mut session_span = icfl_obs::span("online.session");
        session_span.arg("app", &app.name);
        session_span.arg("seed", seed);
        let capacity = cfg.live_windows.max(cfg.localize_windows) + 4;
        let mut ingest_cfg = IngestConfig::new(
            cfg.windows,
            capacity,
            SimTime::ZERO.checked_add(cfg.warmup).expect("warmup fits"),
        );
        ingest_cfg.degrade = cfg.degrade;
        let tap = IngesterTap::new(model.catalog(), ingest_cfg);
        let (mut scenario, ingester) = Scenario::builder(app, seed)
            .replicas(cfg.replicas)
            .build_with(tap)?;
        let ingester = ingester?;

        let trace = InterventionTrace::new();
        schedule.arm(&mut scenario.sim, &trace);

        let service_names: Vec<String> = (0..model.num_services())
            .map(|i| {
                scenario
                    .cluster
                    .service_name(ServiceId::from_index(i))
                    .to_string()
            })
            .collect();
        // In-process sessions run an unregistered in-memory model: the
        // app name stands in for the registry key, at version 0.
        let provenance = ModelProvenance {
            key: app.name.clone(),
            version: 0,
            meta: crate::registry::ModelMeta::default(),
        };

        let horizon = schedule
            .end()
            .checked_add(cfg.drain)
            .expect("session horizon fits");
        let mut detector = IncidentDetector::new(cfg.detector, cfg.min_shifted_pairs, cfg.debounce);
        let reference = model.baseline().clone();
        let hop = cfg.windows.hop;
        let localize_delay =
            SimDuration::from_nanos(hop.as_nanos() * u64::from(cfg.localize_delay_ticks));

        let mut detections: Vec<Detection> = Vec::new();
        let mut recorder = FlightRecorder::new();
        let mut tick_index = 0u64;

        // Detection ticks sit on window-end boundaries: window + k·hop.
        let mut tick = SimTime::ZERO
            .checked_add(cfg.windows.window)
            .expect("first boundary fits");
        while tick <= horizon {
            scenario.run_until(tick);
            recorder.observe_windows(ingester.windows_emitted(), &ingester.retained_windows());

            if interrupt_after_ticks == Some(tick_index) {
                // Crash-restart the inference service: serialize all of
                // its state, drop it, and rebuild from the bytes. The
                // cluster and its scrape loop keep running underneath.
                let started = std::time::Instant::now();
                let ckpt = SessionCheckpoint {
                    ingest: ingester.checkpoint(),
                    detector: detector.clone(),
                    detections: detections.clone(),
                    recorder: recorder.clone(),
                };
                let json = serde_json::to_string(&ckpt)
                    .map_err(|e| icfl_core::CoreError::Serde(e.to_string()))?;
                let restored: SessionCheckpoint = serde_json::from_str(&json)
                    .map_err(|e| icfl_core::CoreError::Serde(e.to_string()))?;
                ingester.restore(restored.ingest);
                detector = restored.detector;
                detections = restored.detections;
                recorder = restored.recorder;
                icfl_obs::counter_add(
                    "icfl_checkpoint_bytes_total",
                    &[("app", &app.name)],
                    json.len() as u64,
                );
                icfl_obs::counter_add("icfl_checkpoints_total", &[("app", &app.name)], 1);
                icfl_obs::stat_add("online.checkpoint", started.elapsed());
            }

            decision_tick(
                &mut detector,
                &mut detections,
                &mut recorder,
                &TickContext {
                    model,
                    reference: &reference,
                    app: &app.name,
                    live_windows: cfg.live_windows,
                    localize_windows: cfg.localize_windows,
                    localize_delay,
                    service_names: &service_names,
                    provenance: &provenance,
                },
                tick,
                |n| ingester.last_n_valid(n),
            )?;

            tick = match tick.checked_add(hop) {
                Some(t) => t,
                None => break,
            };
            tick_index += 1;
        }
        icfl_obs::counter_add("icfl_online_ticks_total", &[("app", &app.name)], tick_index);

        let outcome = SessionOutcome {
            detections,
            windows_ingested: ingester.windows_emitted(),
            degraded: ingester.degrade_stats(),
        };
        let chains = outcome.chains();
        Ok((
            Self::assemble_report(app, &scenario.cluster, schedule, cfg, seed, outcome),
            chains,
        ))
    }

    fn assemble_report(
        app: &App,
        cluster: &Cluster,
        schedule: &IncidentSchedule,
        cfg: &OnlineConfig,
        seed: u64,
        outcome: SessionOutcome,
    ) -> SessionReport {
        let SessionOutcome {
            detections,
            windows_ingested,
            degraded,
        } = outcome;
        // Attribute each confirmation to the episode whose active span
        // (onset through end + slack) contains it; both lists are time
        // ordered and episodes are disjoint, so a greedy scan is exact.
        let mut matched: Vec<Option<usize>> = vec![None; schedule.episodes().len()];
        let mut false_alarms = 0usize;
        for (di, d) in detections.iter().enumerate() {
            let mut hit = false;
            for (ei, ep) in schedule.episodes().iter().enumerate() {
                let open = ep
                    .end()
                    .checked_add(cfg.match_slack)
                    .expect("match window fits");
                if matched[ei].is_none() && d.confirmed_at >= ep.start && d.confirmed_at <= open {
                    matched[ei] = Some(di);
                    hit = true;
                    break;
                }
            }
            if !hit {
                false_alarms += 1;
            }
        }

        let incidents = schedule
            .episodes()
            .iter()
            .enumerate()
            .map(|(ei, ep)| {
                let services: Vec<String> = ep
                    .services()
                    .iter()
                    .map(|&s| cluster.service_name(s).to_string())
                    .collect();
                let detection = matched[ei].map(|di| &detections[di]);
                let start = ep.start;
                let secs_since = |t: SimTime| t.saturating_since(start).as_secs_f64();
                let ranked: Vec<(String, f64)> = detection
                    .and_then(|d| d.localization.as_ref())
                    .map(|loc| {
                        loc.ranked()
                            .into_iter()
                            .map(|(s, v)| (cluster.service_name(s).to_string(), v))
                            .collect()
                    })
                    .unwrap_or_default();
                let top1 = ranked.first().map(|(name, _)| name.clone());
                let top1_correct = top1
                    .as_ref()
                    .is_some_and(|name| services.iter().any(|s| s == name));
                IncidentReport {
                    episode: ei,
                    services,
                    injected_start_secs: start.as_secs_f64(),
                    injected_end_secs: ep.end().as_secs_f64(),
                    detected: detection.is_some(),
                    time_to_detect_secs: detection.map(|d| secs_since(d.confirmed_at)),
                    time_to_localize_secs: detection.and_then(|d| d.localized_at).map(secs_since),
                    resolved_secs: detection
                        .and_then(|d| d.resolved_at)
                        .map(|t| t.as_secs_f64()),
                    ranked,
                    top1,
                    top1_correct,
                }
            })
            .collect();

        SessionReport {
            app: app.name.clone(),
            seed,
            incidents,
            false_alarms,
            windows_ingested,
            injected_faults: schedule.num_faults(),
            degraded,
        }
    }
}
