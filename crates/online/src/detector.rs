//! Incident detection over live windows: a debounced
//! quiet → suspected → confirmed → resolved state machine driven by the
//! configured two-sample test.
//!
//! The [`IncidentStateMachine`] is a pure transition system (property
//! tested in `tests/proptests.rs`): it consumes one boolean "anomaly
//! observed this tick" signal per detection tick and emits at most one
//! [`DetectorEvent`]. The [`IncidentDetector`] wraps it with the actual
//! statistics: per (metric, service) pair it runs the configured
//! [`ShiftDetector`] (KS by default, Anderson–Darling opt-in) on the
//! sliding live windows against the trained reference baseline `D_0`.

use icfl_micro::ServiceId;
use icfl_stats::{Result as StatsResult, ShiftDetector};
use icfl_telemetry::Dataset;
use serde::{Deserialize, Serialize};

/// Debounce/cool-down tuning of the incident state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DebounceConfig {
    /// Consecutive anomalous ticks required to confirm an incident
    /// (suppresses one-tick statistical flukes). Minimum 1.
    pub confirm_ticks: u32,
    /// Consecutive quiet ticks required to resolve a confirmed incident
    /// (suppresses flapping while mixed windows age out). Minimum 1.
    pub clear_ticks: u32,
    /// Ticks to ignore all signals after a resolution (cool-down while the
    /// live ring flushes residual fault windows). Zero disables.
    pub cooldown_ticks: u32,
}

impl Default for DebounceConfig {
    fn default() -> Self {
        DebounceConfig {
            confirm_ticks: 2,
            clear_ticks: 2,
            cooldown_ticks: 1,
        }
    }
}

/// Where the detector currently is in an incident's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentPhase {
    /// No anomaly under observation.
    Quiet,
    /// Anomalous ticks observed, but fewer than the confirmation debounce.
    Suspected,
    /// An incident is confirmed and ongoing.
    Confirmed,
    /// Post-resolution cool-down; signals are ignored.
    Cooldown,
}

/// A state-machine transition worth reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorEvent {
    /// First anomalous tick out of quiet.
    Suspected,
    /// The suspicion survived the debounce — an incident is declared.
    Confirmed,
    /// A suspicion cleared before confirmation (no incident counted).
    Dismissed,
    /// A confirmed incident's signal stayed quiet through the clear
    /// debounce — the incident is over.
    Resolved,
}

/// The debounced incident lifecycle automaton.
///
/// Guarantees (property-tested): `Resolved` is only ever emitted while an
/// incident is confirmed, every confirmed incident is resolved at most
/// once, and two `Confirmed` events always have exactly one `Resolved`
/// between them — an incident is never double-counted no matter how
/// suspect/clear signals interleave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncidentStateMachine {
    cfg: DebounceConfig,
    phase: IncidentPhase,
    suspect_streak: u32,
    clear_streak: u32,
    cooldown_left: u32,
    confirmed: u64,
    resolved: u64,
}

impl IncidentStateMachine {
    /// A machine in the quiet state.
    ///
    /// # Panics
    ///
    /// Panics if `confirm_ticks` or `clear_ticks` is zero (the debounce
    /// would be meaningless).
    pub fn new(cfg: DebounceConfig) -> Self {
        assert!(cfg.confirm_ticks >= 1, "confirm_ticks must be at least 1");
        assert!(cfg.clear_ticks >= 1, "clear_ticks must be at least 1");
        IncidentStateMachine {
            cfg,
            phase: IncidentPhase::Quiet,
            suspect_streak: 0,
            clear_streak: 0,
            cooldown_left: 0,
            confirmed: 0,
            resolved: 0,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> IncidentPhase {
        self.phase
    }

    /// Incidents confirmed so far.
    pub fn confirmed_count(&self) -> u64 {
        self.confirmed
    }

    /// Incidents resolved so far. Always `confirmed_count()` or
    /// `confirmed_count() - 1` (the ongoing incident).
    pub fn resolved_count(&self) -> u64 {
        self.resolved
    }

    /// Advances one detection tick with the tick's anomaly signal,
    /// returning the transition event if one fired.
    pub fn step(&mut self, suspect: bool) -> Option<DetectorEvent> {
        match self.phase {
            IncidentPhase::Quiet => {
                if suspect {
                    self.suspect_streak = 1;
                    if self.suspect_streak >= self.cfg.confirm_ticks {
                        self.confirm()
                    } else {
                        self.phase = IncidentPhase::Suspected;
                        Some(DetectorEvent::Suspected)
                    }
                } else {
                    None
                }
            }
            IncidentPhase::Suspected => {
                if suspect {
                    self.suspect_streak += 1;
                    if self.suspect_streak >= self.cfg.confirm_ticks {
                        self.confirm()
                    } else {
                        None
                    }
                } else {
                    self.phase = IncidentPhase::Quiet;
                    self.suspect_streak = 0;
                    Some(DetectorEvent::Dismissed)
                }
            }
            IncidentPhase::Confirmed => {
                if suspect {
                    self.clear_streak = 0;
                    None
                } else {
                    self.clear_streak += 1;
                    if self.clear_streak >= self.cfg.clear_ticks {
                        self.resolved += 1;
                        if self.cfg.cooldown_ticks > 0 {
                            self.phase = IncidentPhase::Cooldown;
                            self.cooldown_left = self.cfg.cooldown_ticks;
                        } else {
                            self.phase = IncidentPhase::Quiet;
                            self.suspect_streak = 0;
                        }
                        Some(DetectorEvent::Resolved)
                    } else {
                        None
                    }
                }
            }
            IncidentPhase::Cooldown => {
                self.cooldown_left -= 1;
                if self.cooldown_left == 0 {
                    self.phase = IncidentPhase::Quiet;
                    self.suspect_streak = 0;
                }
                None
            }
        }
    }

    fn confirm(&mut self) -> Option<DetectorEvent> {
        self.phase = IncidentPhase::Confirmed;
        self.clear_streak = 0;
        self.confirmed += 1;
        Some(DetectorEvent::Confirmed)
    }
}

/// One detection tick's statistical outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickDecision {
    /// (metric index, service) pairs whose live distribution shifted from
    /// the reference.
    pub shifted_pairs: Vec<(usize, ServiceId)>,
    /// The state-machine transition, if any.
    pub event: Option<DetectorEvent>,
}

/// The live incident detector: the configured two-sample test on sliding
/// live-vs-reference windows, debounced by an [`IncidentStateMachine`].
///
/// Fully serializable (detector tuning and lifecycle state alike) so an
/// online session can checkpoint mid-stream and resume byte-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentDetector {
    detector: ShiftDetector,
    min_shifted_pairs: usize,
    machine: IncidentStateMachine,
}

impl IncidentDetector {
    /// A detector running `detector` per (metric, service) pair; a tick is
    /// anomalous when at least `min_shifted_pairs` pairs shift.
    pub fn new(
        detector: ShiftDetector,
        min_shifted_pairs: usize,
        debounce: DebounceConfig,
    ) -> Self {
        IncidentDetector {
            detector,
            min_shifted_pairs: min_shifted_pairs.max(1),
            machine: IncidentStateMachine::new(debounce),
        }
    }

    /// The underlying lifecycle automaton.
    pub fn machine(&self) -> &IncidentStateMachine {
        &self.machine
    }

    /// Runs one detection tick: tests every (metric, service) pair of
    /// `live` against `reference` and advances the state machine.
    ///
    /// `reference` and `live` must be shape-compatible (same metric and
    /// service counts); the live window count may differ from the
    /// reference's.
    ///
    /// # Errors
    ///
    /// Propagates statistics errors (degenerate samples).
    pub fn observe(&mut self, reference: &Dataset, live: &Dataset) -> StatsResult<TickDecision> {
        debug_assert_eq!(reference.num_metrics(), live.num_metrics());
        debug_assert_eq!(reference.num_services(), live.num_services());
        let mut shifted_pairs = Vec::new();
        for m in 0..reference.num_metrics() {
            for s in 0..reference.num_services() {
                let svc = ServiceId::from_index(s);
                if self
                    .detector
                    .shifted(reference.samples(m, svc), live.samples(m, svc))?
                    .shifted
                {
                    shifted_pairs.push((m, svc));
                }
            }
        }
        let event = self
            .machine
            .step(shifted_pairs.len() >= self.min_shifted_pairs);
        Ok(TickDecision {
            shifted_pairs,
            event,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(confirm: u32, clear: u32, cooldown: u32) -> IncidentStateMachine {
        IncidentStateMachine::new(DebounceConfig {
            confirm_ticks: confirm,
            clear_ticks: clear,
            cooldown_ticks: cooldown,
        })
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut m = machine(2, 2, 1);
        assert_eq!(m.step(true), Some(DetectorEvent::Suspected));
        assert_eq!(m.phase(), IncidentPhase::Suspected);
        assert_eq!(m.step(true), Some(DetectorEvent::Confirmed));
        assert_eq!(m.phase(), IncidentPhase::Confirmed);
        assert_eq!(m.step(true), None);
        assert_eq!(m.step(false), None);
        assert_eq!(m.step(false), Some(DetectorEvent::Resolved));
        assert_eq!(m.phase(), IncidentPhase::Cooldown);
        assert_eq!(m.step(true), None, "cool-down swallows signals");
        assert_eq!(m.phase(), IncidentPhase::Quiet);
        assert_eq!(m.confirmed_count(), 1);
        assert_eq!(m.resolved_count(), 1);
    }

    #[test]
    fn flake_is_dismissed_without_counting() {
        let mut m = machine(3, 2, 0);
        assert_eq!(m.step(true), Some(DetectorEvent::Suspected));
        assert_eq!(m.step(true), None);
        assert_eq!(m.step(false), Some(DetectorEvent::Dismissed));
        assert_eq!(m.confirmed_count(), 0);
        assert_eq!(m.phase(), IncidentPhase::Quiet);
    }

    #[test]
    fn intermittent_signal_keeps_incident_open() {
        let mut m = machine(1, 3, 0);
        assert_eq!(m.step(true), Some(DetectorEvent::Confirmed));
        // Clears interleaved with suspects never reach the clear debounce.
        for _ in 0..5 {
            assert_eq!(m.step(false), None);
            assert_eq!(m.step(false), None);
            assert_eq!(m.step(true), None);
        }
        assert_eq!(m.phase(), IncidentPhase::Confirmed);
        assert_eq!(m.step(false), None);
        assert_eq!(m.step(false), None);
        assert_eq!(m.step(false), Some(DetectorEvent::Resolved));
        assert_eq!(m.phase(), IncidentPhase::Quiet, "no cool-down configured");
    }

    #[test]
    fn confirm_ticks_of_one_confirms_immediately() {
        let mut m = machine(1, 1, 0);
        assert_eq!(m.step(true), Some(DetectorEvent::Confirmed));
        assert_eq!(m.step(false), Some(DetectorEvent::Resolved));
        assert_eq!(m.step(true), Some(DetectorEvent::Confirmed));
        assert_eq!(m.confirmed_count(), 2);
        assert_eq!(m.resolved_count(), 1);
    }

    #[test]
    #[should_panic(expected = "confirm_ticks")]
    fn zero_confirm_rejected() {
        machine(0, 1, 0);
    }

    #[test]
    fn detector_flags_shifted_pairs_and_confirms() {
        let base: Vec<f64> = (0..19).map(|i| 100.0 + (i % 5) as f64).collect();
        let hot: Vec<f64> = base.iter().map(|x| x + 80.0).collect();
        let reference = Dataset::new(vec!["m".into()], vec![vec![base.clone(), base.clone()]]);
        let quiet = Dataset::new(vec!["m".into()], vec![vec![base.clone(), base.clone()]]);
        let anomalous = Dataset::new(vec!["m".into()], vec![vec![base.clone(), hot]]);
        let mut det = IncidentDetector::new(
            ShiftDetector::ks(0.05).with_min_effect(0.1),
            1,
            DebounceConfig {
                confirm_ticks: 2,
                clear_ticks: 1,
                cooldown_ticks: 0,
            },
        );
        let t = det.observe(&reference, &quiet).unwrap();
        assert!(t.shifted_pairs.is_empty());
        assert_eq!(t.event, None);
        let t = det.observe(&reference, &anomalous).unwrap();
        assert_eq!(t.shifted_pairs, vec![(0, ServiceId::from_index(1))]);
        assert_eq!(t.event, Some(DetectorEvent::Suspected));
        let t = det.observe(&reference, &anomalous).unwrap();
        assert_eq!(t.event, Some(DetectorEvent::Confirmed));
        let t = det.observe(&reference, &quiet).unwrap();
        assert_eq!(t.event, Some(DetectorEvent::Resolved));
    }
}
