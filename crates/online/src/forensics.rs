//! Incident forensics: byte-deterministic evidence chains and the bounded
//! flight recorder that feeds them.
//!
//! Every verdict the online pipeline emits is backed by an
//! [`EvidenceChain`] — a structured record of *why* the detector and
//! Algorithm 2 decided what they decided: the recent finalized windows
//! with their validity flags (invalid/gap/degraded telemetry is evidence,
//! not noise), the detector state transitions with tick timestamps and
//! the (metric, target) pairs that shifted, the per-candidate score
//! breakdowns showing which causal-set entries fired and what vote share
//! each metric contributed, and the registry provenance of the model
//! consulted. Chains are assembled inside the shared
//! `session::decision_tick`, so the simulation-driven
//! [`OnlineSession`](crate::OnlineSession) and the externally fed
//! [`FeedSession`](crate::FeedSession) produce identical chains for the
//! same stream, and serialization is plain ordered serde — byte-identical
//! across thread counts and across crash/recovery (the recorder rides the
//! session checkpoints).
//!
//! The [`FlightRecorder`] is the bounded memory behind the chain: two
//! small rings (recent windows, recent detector transitions) whose
//! content is a pure function of the scrape stream. It is serialized with
//! [`FeedCheckpoint`](crate::FeedCheckpoint) /
//! [`SessionCheckpoint`](crate::SessionCheckpoint) so a SIGKILL'd server
//! re-assembles byte-identical chains after WAL replay.

use icfl_core::{CausalModel, Localization};
use icfl_sim::SimTime;
use icfl_telemetry::WindowValidity;
use serde::{Deserialize, Serialize};

use crate::detector::DetectorEvent;
use crate::registry::ModelMeta;

/// Schema version stamped into every [`EvidenceChain`].
pub const CHAIN_FORMAT_VERSION: u32 = 1;

/// Windows retained by the flight recorder.
const WINDOWS_CAP: usize = 64;

/// Detector transitions retained by the flight recorder.
const TRANSITIONS_CAP: usize = 64;

/// Provenance of the model a verdict consulted: which registry entry (if
/// any) the session serves, so an operator can audit exactly what was
/// trained, from what campaign, when the verdict fired.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelProvenance {
    /// Registry key the model was loaded under (the server's model key;
    /// the app name for in-process sessions).
    pub key: String,
    /// Registry version served (0 for an unregistered in-memory model).
    pub version: u32,
    /// The registry metadata of the record (app, seed, catalog, detector,
    /// targets, note). Default-empty for unregistered models.
    pub meta: ModelMeta,
}

/// One finalized window as the flight recorder saw it: its end on the
/// stream clock and the watermarked engine's validity flag, so a chain
/// shows exactly which windows around an incident were trustworthy and
/// which were invalidated by degraded telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEvidence {
    /// Window end on the stream clock, in nanoseconds.
    pub end_nanos: u64,
    /// Validity flag from the watermarked window engine.
    pub validity: WindowValidity,
}

/// One detector state transition with its tick timestamp and the
/// (metric, target) pairs whose live distribution had shifted at that
/// tick — the raw statistical signal behind the lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionEvidence {
    /// Detection tick the transition fired at, in nanoseconds.
    pub tick_nanos: u64,
    /// The lifecycle event (suspected/confirmed/dismissed/resolved).
    pub event: DetectorEvent,
    /// `(metric name, target label)` pairs that shifted at this tick.
    pub shifted: Vec<(String, String)>,
}

/// One metric's contribution to a candidate's score, with labels resolved
/// (the name-level view of [`icfl_core::TargetContribution`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContributionEvidence {
    /// Metric display name.
    pub metric: String,
    /// Vote share this metric contributed to the candidate.
    pub delta: f64,
    /// Causal-set entries that fired: labels of `A(M) ∩ C(target, M)`.
    pub matched: Vec<String>,
    /// `|C(target, M)|` — specificity of the winning explanation.
    pub causal_set_size: usize,
    /// The metric's winning match score.
    pub match_score: f64,
}

/// The Algorithm-2 accounting for one ranked candidate: its total score
/// (the deltas sum to it exactly — same accumulation order as the
/// election) and the per-metric contributions behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateEvidence {
    /// Target label (service name, or `service@replica` for
    /// instance-granularity sessions).
    pub target: String,
    /// True when the target label names a single replica row rather than
    /// a service aggregate.
    pub replica: bool,
    /// The candidate's total vote, bit-identical to the reported score.
    pub score: f64,
    /// Per-metric contributions in catalog order.
    pub contributions: Vec<ContributionEvidence>,
}

/// The full, byte-deterministic audit trail of one confirmed incident.
///
/// Created at confirmation time (windows + transitions + provenance) and
/// completed at verdict time (candidates + per-candidate breakdowns,
/// refreshed windows/transitions). Serialization is ordered serde JSON:
/// byte-identical across thread counts, across a checkpoint/restore, and
/// across a SIGKILL + WAL replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceChain {
    /// Chain schema version ([`CHAIN_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Incident index within the session, in confirmation order — the id
    /// `/explain/<tenant>/<incident>` addresses.
    pub incident: u32,
    /// Provenance of the model consulted (its key doubles as the session
    /// label; deliberately not the per-path app tag, so a trace replayed
    /// through a [`FeedSession`](crate::FeedSession) yields chains
    /// byte-identical to the in-process session that watched it live).
    pub model: ModelProvenance,
    /// Confirmation tick, in nanoseconds.
    pub confirmed_at_nanos: u64,
    /// Localization tick, in nanoseconds (absent until Algorithm 2 ran).
    pub localized_at_nanos: Option<u64>,
    /// Recent finalized windows (flight-recorder ring at assembly time),
    /// oldest first, with validity flags.
    pub windows: Vec<WindowEvidence>,
    /// Recent detector transitions (flight-recorder ring), oldest first.
    pub transitions: Vec<TransitionEvidence>,
    /// Every ranked candidate, by label, highest vote first — one per
    /// breakdown row below, in the same order.
    pub candidates: Vec<String>,
    /// Per-candidate score breakdowns, rank order (empty until verdict).
    pub breakdowns: Vec<CandidateEvidence>,
}

/// The bounded flight recorder: rings of recent windows and detector
/// transitions, cheap enough to run always-on per tenant. Content is a
/// pure function of the scrape stream, and the recorder serializes with
/// the session checkpoints, so chains assembled after a crash/restore are
/// byte-identical to an uninterrupted run's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecorder {
    windows: Vec<WindowEvidence>,
    transitions: Vec<TransitionEvidence>,
    /// High-water mark of the engine's monotonic emitted-window count,
    /// so each finalized window is recorded exactly once.
    windows_seen: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            windows: Vec::new(),
            transitions: Vec::new(),
            windows_seen: 0,
        }
    }

    /// Absorbs newly finalized windows from a window engine: `emitted` is
    /// the engine's monotonic emitted count, `retained` its retained ring
    /// (oldest first). Windows already recorded are skipped via the
    /// high-water mark; windows evicted from the engine before the
    /// recorder saw them are simply absent (both rings are bounded).
    pub fn observe_windows(&mut self, emitted: u64, retained: &[(SimTime, WindowValidity)]) {
        if emitted <= self.windows_seen {
            return;
        }
        let new = usize::try_from(emitted - self.windows_seen).unwrap_or(usize::MAX);
        let take = new.min(retained.len());
        for &(end, validity) in &retained[retained.len() - take..] {
            if self.windows.len() == WINDOWS_CAP {
                self.windows.remove(0);
            }
            self.windows.push(WindowEvidence {
                end_nanos: end.as_nanos(),
                validity,
            });
        }
        self.windows_seen = emitted;
    }

    /// Records one detector transition.
    pub(crate) fn record_transition(&mut self, t: TransitionEvidence) {
        if self.transitions.len() == TRANSITIONS_CAP {
            self.transitions.remove(0);
        }
        self.transitions.push(t);
    }

    /// The recorded windows, oldest first.
    pub fn windows(&self) -> Vec<WindowEvidence> {
        self.windows.clone()
    }

    /// The recorded transitions, oldest first.
    pub fn transitions(&self) -> Vec<TransitionEvidence> {
        self.transitions.clone()
    }
}

/// Opens a chain at confirmation time: flight-recorder contents plus
/// provenance, with no verdict yet.
pub(crate) fn open_chain(
    incident: u32,
    provenance: &ModelProvenance,
    recorder: &FlightRecorder,
    confirmed_at: SimTime,
) -> EvidenceChain {
    EvidenceChain {
        format_version: CHAIN_FORMAT_VERSION,
        incident,
        model: provenance.clone(),
        confirmed_at_nanos: confirmed_at.as_nanos(),
        localized_at_nanos: None,
        windows: recorder.windows(),
        transitions: recorder.transitions(),
        candidates: Vec::new(),
        breakdowns: Vec::new(),
    }
}

/// Maps an Algorithm-2 verdict to its evidence view: the ranked candidate
/// labels and, in the same order, each candidate's score breakdown. The
/// breakdown deltas are accumulated in the same metric order the election
/// used, so every [`CandidateEvidence::score`] reproduces the
/// corresponding `loc.votes` entry bit-for-bit.
pub fn verdict_evidence(
    model: &CausalModel,
    loc: &Localization,
    service_names: &[String],
) -> (Vec<String>, Vec<CandidateEvidence>) {
    let label = |i: usize| {
        service_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("service-{i}"))
    };
    let candidates = loc
        .ranked()
        .into_iter()
        .map(|(s, _)| label(s.index()))
        .collect();
    let breakdowns = model
        .score_breakdowns(loc)
        .into_iter()
        .map(|b| {
            let target = label(b.target.index());
            CandidateEvidence {
                replica: target.contains('@'),
                target,
                score: b.score,
                contributions: b
                    .contributions
                    .into_iter()
                    .map(|c| ContributionEvidence {
                        metric: c.metric,
                        delta: c.delta,
                        matched: c.matched.iter().map(|s| label(s.index())).collect(),
                        causal_set_size: c.causal_set_size,
                        match_score: c.match_score,
                    })
                    .collect(),
            }
        })
        .collect();
    (candidates, breakdowns)
}

/// Completes a chain at verdict time: refreshes the flight-recorder view
/// (the windows and transitions now cover the localization delay) and
/// fills in the candidate set and per-candidate score breakdowns.
pub(crate) fn complete_chain(
    chain: &mut EvidenceChain,
    recorder: &FlightRecorder,
    model: &CausalModel,
    loc: &Localization,
    service_names: &[String],
    localized_at: SimTime,
) {
    chain.localized_at_nanos = Some(localized_at.as_nanos());
    chain.windows = recorder.windows();
    chain.transitions = recorder.transitions();
    let (candidates, breakdowns) = verdict_evidence(model, loc, service_names);
    chain.candidates = candidates;
    chain.breakdowns = breakdowns;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(end: u64, validity: WindowValidity) -> (SimTime, WindowValidity) {
        (SimTime::from_nanos(end), validity)
    }

    #[test]
    fn recorder_dedupes_by_emitted_count_and_stays_bounded() {
        let mut r = FlightRecorder::new();
        // First observation: 3 emitted, 3 retained.
        let ring = vec![
            win(10, WindowValidity::Valid),
            win(15, WindowValidity::MissingBoundary),
            win(20, WindowValidity::Valid),
        ];
        r.observe_windows(3, &ring);
        assert_eq!(r.windows().len(), 3);
        // Re-observing the same state records nothing.
        r.observe_windows(3, &ring);
        assert_eq!(r.windows().len(), 3);
        // One new window: only the newest retained entry is appended.
        let ring = vec![
            win(15, WindowValidity::MissingBoundary),
            win(20, WindowValidity::Valid),
            win(25, WindowValidity::CounterReset),
        ];
        r.observe_windows(4, &ring);
        let windows = r.windows();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[3].end_nanos, 25);
        assert_eq!(windows[3].validity, WindowValidity::CounterReset);
        // The ring never exceeds its cap.
        for i in 0..(WINDOWS_CAP as u64 + 10) {
            r.observe_windows(5 + i, &[win(100 + i, WindowValidity::Valid)]);
        }
        assert_eq!(r.windows().len(), WINDOWS_CAP);
    }

    #[test]
    fn recorder_handles_windows_evicted_before_observation() {
        let mut r = FlightRecorder::new();
        // 10 windows emitted but only 2 still retained: record those 2.
        r.observe_windows(
            10,
            &[
                win(45, WindowValidity::Valid),
                win(50, WindowValidity::Valid),
            ],
        );
        assert_eq!(r.windows().len(), 2);
        assert_eq!(r.windows()[0].end_nanos, 45);
    }

    #[test]
    fn transition_ring_is_bounded() {
        let mut r = FlightRecorder::new();
        for i in 0..(TRANSITIONS_CAP + 5) {
            r.record_transition(TransitionEvidence {
                tick_nanos: i as u64,
                event: DetectorEvent::Suspected,
                shifted: Vec::new(),
            });
        }
        let ts = r.transitions();
        assert_eq!(ts.len(), TRANSITIONS_CAP);
        assert_eq!(ts[0].tick_nanos, 5);
    }

    #[test]
    fn chain_serialization_roundtrips_byte_equal() {
        let mut r = FlightRecorder::new();
        r.observe_windows(1, &[win(10_000_000_000, WindowValidity::Valid)]);
        r.record_transition(TransitionEvidence {
            tick_nanos: 10_000_000_000,
            event: DetectorEvent::Confirmed,
            shifted: vec![("req_rate".into(), "frontend".into())],
        });
        let chain = open_chain(
            0,
            &ModelProvenance {
                key: "demo".into(),
                version: 3,
                meta: ModelMeta::default(),
            },
            &r,
            SimTime::from_nanos(10_000_000_000),
        );
        let json = serde_json::to_string(&chain).unwrap();
        let back: EvidenceChain = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chain);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
