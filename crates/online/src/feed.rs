//! The externally fed inference session: the same detection/localization
//! core as [`OnlineSession`](crate::OnlineSession), driven by scrapes
//! arriving from *outside* — a socket, a replayed trace — instead of a
//! simulation the session owns.
//!
//! [`FeedSession`] is what `icfl-server` runs per tenant: the caller
//! pushes `(time, counters-per-service)` rows in order, and the session
//! finalizes hopping windows and fires a detection tick at every window
//! boundary the stream crosses, exactly where [`OnlineSession`]'s driver
//! loop would have fired it. Both paths share one decision function
//! (`session::decision_tick`), so a trace recorded from a scenario and
//! replayed through a `FeedSession` yields byte-identical verdicts to the
//! in-process session that watched the scenario live — the property the
//! loopback test pins across a real TCP connection.
//!
//! Tick placement mirrors the simulation semantics: a scrape scheduled
//! exactly at a window boundary executes *before* the boundary's
//! detection tick (events at the horizon run inside `run_until(horizon)`),
//! so [`FeedSession::push`] ingests the row first and then fires every
//! boundary at or before it.

use icfl_core::CausalModel;
use icfl_micro::Counters;
use icfl_scenario::trace::{ScrapeTrace, TraceEpisode, TraceMeta};
use icfl_scenario::{Scenario, TraceTap};
use icfl_sim::{SimDuration, SimTime};
use icfl_stats::ShiftDetector;
use icfl_telemetry::{Dataset, EngineConfig, WindowConfig, WindowEngine};
use serde::{Deserialize, Serialize};

use crate::detector::{DebounceConfig, IncidentDetector};
use crate::forensics::{EvidenceChain, FlightRecorder, ModelProvenance};
use crate::session::{decision_tick, Detection, Result, TickContext};
use crate::{IncidentSchedule, OnlineConfig, OnlineError};

/// Tuning of one externally fed session. Mirrors the inference-side
/// fields of [`OnlineConfig`] (no load/fault/drain knobs — the feed's
/// producer owns those).
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Hopping-window geometry; must match the trained model's windows.
    pub windows: WindowConfig,
    /// Expected scrape interval. Window and hop must be multiples of it.
    pub interval: SimDuration,
    /// Windows starting before this instant are discarded (producer-side
    /// warmup).
    pub collect_from: SimTime,
    /// Live windows fed to each detection tick's two-sample test.
    pub live_windows: usize,
    /// Live windows fed to Algorithm 2 at localization time.
    pub localize_windows: usize,
    /// Detection ticks between confirmation and localization.
    pub localize_delay_ticks: u32,
    /// (metric, service) pairs that must shift for an anomalous tick.
    pub min_shifted_pairs: usize,
    /// Debounce/cool-down tuning of the incident state machine.
    pub debounce: DebounceConfig,
    /// Two-sample test for live-vs-reference comparison.
    pub detector: ShiftDetector,
}

impl FeedConfig {
    /// The feed-side view of an [`OnlineConfig`]: identical window
    /// geometry, warmup cutoff, ring capacity, and decision tuning, so a
    /// `FeedSession` replaying a session's scrape stream reproduces its
    /// decisions exactly.
    pub fn from_online(cfg: &OnlineConfig) -> FeedConfig {
        FeedConfig {
            windows: cfg.windows,
            interval: SimDuration::from_secs(1),
            collect_from: SimTime::ZERO.checked_add(cfg.warmup).expect("warmup fits"),
            live_windows: cfg.live_windows,
            localize_windows: cfg.localize_windows,
            localize_delay_ticks: cfg.localize_delay_ticks,
            min_shifted_pairs: cfg.min_shifted_pairs,
            debounce: cfg.debounce,
            detector: cfg.detector,
        }
    }

    /// Ring capacity in windows, matching [`OnlineSession`]'s sizing.
    fn capacity(&self) -> usize {
        self.live_windows.max(self.localize_windows) + 4
    }
}

/// What one [`FeedSession::push`] did: how many detection ticks fired and
/// which incident transitions they produced. The server uses the
/// transition counts to timestamp ingest-to-verdict latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedProgress {
    /// Detection ticks fired by this push.
    pub ticks: u32,
    /// Incidents newly confirmed.
    pub confirmed: u32,
    /// Incidents newly localized.
    pub localized: u32,
    /// Incidents newly resolved.
    pub resolved: u32,
}

/// One incident verdict as exposed to feed consumers (`/incidents`): the
/// decision timeline plus the ranked localization, with service *names*
/// so the consumer needs no cluster to interpret it. Serialization is
/// deterministic, which is what lets the loopback test byte-compare
/// server-side verdicts against an in-process replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedVerdict {
    /// Confirmation time, seconds on the producer's clock.
    pub confirmed_at_secs: f64,
    /// Localization time, if Algorithm 2 has run.
    pub localized_at_secs: Option<f64>,
    /// Resolution time, if the detector saw the stream go quiet.
    pub resolved_at_secs: Option<f64>,
    /// Full ranked localization (service name, vote share), best first.
    pub ranked: Vec<(String, f64)>,
    /// The top-ranked service, if localized.
    pub top1: Option<String>,
}

/// Hard cap on detection ticks fired by a single push: at one tick per
/// hop this is weeks of stream time, far beyond any sane gap, so hitting
/// it means a corrupt or hostile timestamp rather than a slow producer.
const MAX_TICKS_PER_PUSH: u64 = 100_000;

/// A serializable checkpoint of one [`FeedSession`]'s entire mutable
/// state: the window engine, the incident detector, every detection
/// tracked so far, and the stream cursor (next tick, last scrape, scrape
/// count). The model, service names, and tuning are *not* part of it —
/// they come from the registry and server configuration at resume time —
/// so a checkpoint stays small and a recovered session provably continues
/// byte-identically (`FeedSession::restore` overwrites every mutable
/// field).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedCheckpoint {
    engine: icfl_telemetry::EngineSnapshot,
    detector: IncidentDetector,
    detections: Vec<Detection>,
    next_tick: SimTime,
    last_scrape: Option<SimTime>,
    scrapes: u64,
    /// The flight recorder rides the checkpoint (it is stream state), so
    /// evidence chains assembled after a crash/restore are byte-identical
    /// to an uninterrupted session's. `serde(default)` keeps
    /// pre-forensics checkpoints loadable.
    #[serde(default)]
    recorder: FlightRecorder,
}

/// The externally fed inference session (one per server tenant).
#[derive(Debug)]
pub struct FeedSession {
    model: CausalModel,
    service_names: Vec<String>,
    cfg: FeedConfig,
    engine: WindowEngine,
    reference: Dataset,
    detector: IncidentDetector,
    detections: Vec<Detection>,
    next_tick: SimTime,
    last_scrape: Option<SimTime>,
    scrapes: u64,
    recorder: FlightRecorder,
    provenance: ModelProvenance,
}

impl FeedSession {
    /// Opens a session localizing against `model`, naming services per
    /// `service_names` (in [`icfl_micro::ServiceId`] index order).
    ///
    /// # Errors
    ///
    /// [`OnlineError::Feed`] if `service_names` does not have exactly one
    /// name per model service.
    pub fn new(
        model: CausalModel,
        service_names: Vec<String>,
        cfg: FeedConfig,
    ) -> Result<FeedSession> {
        if service_names.len() != model.num_services() {
            return Err(OnlineError::Feed(format!(
                "{} service names for a {}-service model",
                service_names.len(),
                model.num_services()
            )));
        }
        let mut engine_cfg = EngineConfig::streaming(cfg.windows, cfg.capacity(), cfg.collect_from);
        engine_cfg.interval = cfg.interval;
        let engine = WindowEngine::new(engine_cfg, service_names.len());
        let detector = IncidentDetector::new(cfg.detector, cfg.min_shifted_pairs, cfg.debounce);
        let reference = model.baseline().clone();
        let next_tick = SimTime::ZERO
            .checked_add(cfg.windows.window)
            .expect("first boundary fits");
        Ok(FeedSession {
            model,
            service_names,
            cfg,
            engine,
            reference,
            detector,
            detections: Vec::new(),
            next_tick,
            last_scrape: None,
            scrapes: 0,
            recorder: FlightRecorder::new(),
            provenance: ModelProvenance::default(),
        })
    }

    /// Sets the model provenance stamped into every evidence chain the
    /// session assembles (the server passes the registry key, version,
    /// and metadata it loaded the model from), returning `self`.
    ///
    /// Provenance is *not* part of [`FeedCheckpoint`] — like the model
    /// itself, it comes from the registry at resume time, so a recovered
    /// tenant set up with the same record re-assembles byte-identical
    /// chains.
    #[must_use]
    pub fn with_provenance(mut self, provenance: ModelProvenance) -> FeedSession {
        self.provenance = provenance;
        self
    }

    /// Ingests one scrape at stream time `at`, then fires every detection
    /// tick at a window boundary ≤ `at`.
    ///
    /// # Errors
    ///
    /// [`OnlineError::Feed`] if `at` does not strictly increase, the row
    /// width disagrees with the model, or `at` jumps so far ahead that the
    /// tick cap trips; statistical errors as in
    /// [`OnlineSession::run`](crate::OnlineSession::run).
    pub fn push(&mut self, at: SimTime, row: Vec<Counters>) -> Result<FeedProgress> {
        if self.last_scrape.is_some_and(|last| at <= last) {
            return Err(OnlineError::Feed(format!(
                "out-of-order scrape at {at} (last was {})",
                self.last_scrape.expect("checked above")
            )));
        }
        if row.len() != self.service_names.len() {
            return Err(OnlineError::Feed(format!(
                "{} services in scrape, session has {}",
                row.len(),
                self.service_names.len()
            )));
        }
        let hop_nanos = self.cfg.windows.hop.as_nanos();
        if at >= self.next_tick
            && (at.as_nanos() - self.next_tick.as_nanos()) / hop_nanos >= MAX_TICKS_PER_PUSH
        {
            return Err(OnlineError::Feed(format!(
                "scrape at {at} implies more than {MAX_TICKS_PER_PUSH} detection ticks"
            )));
        }
        self.last_scrape = Some(at);
        self.scrapes += 1;
        self.engine.push(at, row);
        // Flight-record windows finalized by this scrape *before* the
        // boundary ticks fire — the same observation point (relative to
        // `decision_tick`) as `OnlineSession`'s driver loop, so recorder
        // state at any tick is identical across the two paths.
        self.recorder
            .observe_windows(self.engine.emitted(), &self.engine.retained_windows());

        let mut progress = FeedProgress::default();
        let hop = self.cfg.windows.hop;
        let localize_delay =
            SimDuration::from_nanos(hop.as_nanos() * u64::from(self.cfg.localize_delay_ticks));
        while self.next_tick <= at {
            let before = Snapshot::of(&self.detections);
            decision_tick(
                &mut self.detector,
                &mut self.detections,
                &mut self.recorder,
                &TickContext {
                    model: &self.model,
                    reference: &self.reference,
                    app: "feed",
                    live_windows: self.cfg.live_windows,
                    localize_windows: self.cfg.localize_windows,
                    localize_delay,
                    service_names: &self.service_names,
                    provenance: &self.provenance,
                },
                self.next_tick,
                |n| self.engine.last_n_valid(self.model.catalog(), n),
            )?;
            progress.ticks += 1;
            let after = Snapshot::of(&self.detections);
            progress.confirmed += after.confirmed - before.confirmed;
            progress.localized += after.localized - before.localized;
            progress.resolved += after.resolved - before.resolved;
            self.next_tick = match self.next_tick.checked_add(hop) {
                Some(t) => t,
                None => break,
            };
        }
        Ok(progress)
    }

    /// Serializes the session's entire mutable state for crash-safe
    /// checkpointing (see [`FeedCheckpoint`]).
    pub fn checkpoint(&self) -> FeedCheckpoint {
        FeedCheckpoint {
            engine: self.engine.snapshot(),
            detector: self.detector.clone(),
            detections: self.detections.clone(),
            next_tick: self.next_tick,
            last_scrape: self.last_scrape,
            scrapes: self.scrapes,
            recorder: self.recorder.clone(),
        }
    }

    /// Restores the session's mutable state from a checkpoint, in place.
    /// The model, service names, and tuning are kept — only the stream
    /// state (engine, detector, detections, cursor) is overwritten, so a
    /// session that panicked mid-push is fully repaired and continues the
    /// stream byte-identically from the checkpointed position.
    pub fn restore(&mut self, ckpt: FeedCheckpoint) {
        self.engine = WindowEngine::from_snapshot(ckpt.engine);
        self.detector = ckpt.detector;
        self.detections = ckpt.detections;
        self.next_tick = ckpt.next_tick;
        self.last_scrape = ckpt.last_scrape;
        self.scrapes = ckpt.scrapes;
        self.recorder = ckpt.recorder;
    }

    /// Opens a session positioned at `ckpt`: [`FeedSession::new`]
    /// followed by [`FeedSession::restore`]. This is the cross-process
    /// recovery path — the server rebuilds a crashed tenant from the
    /// registry model plus the persisted checkpoint, then replays
    /// write-ahead-logged scrapes past it.
    ///
    /// # Errors
    ///
    /// As [`FeedSession::new`].
    pub fn resume(
        model: CausalModel,
        service_names: Vec<String>,
        cfg: FeedConfig,
        ckpt: FeedCheckpoint,
    ) -> Result<FeedSession> {
        let mut session = FeedSession::new(model, service_names, cfg)?;
        session.restore(ckpt);
        Ok(session)
    }

    /// Scrapes ingested so far.
    pub fn scrapes_ingested(&self) -> u64 {
        self.scrapes
    }

    /// Windows finalized so far.
    pub fn windows_emitted(&self) -> u64 {
        self.engine.emitted()
    }

    /// The stream time of the newest ingested scrape.
    pub fn last_scrape_at(&self) -> Option<SimTime> {
        self.last_scrape
    }

    /// The service names the session was opened with.
    pub fn service_names(&self) -> &[String] {
        &self.service_names
    }

    /// The evidence chain of one incident (by confirmation-order index,
    /// the same index `/incidents` rows appear in), if tracked.
    pub fn explain(&self, incident: usize) -> Option<&EvidenceChain> {
        self.detections.get(incident).and_then(|d| d.chain.as_ref())
    }

    /// Every evidence chain tracked so far, in confirmation order.
    pub fn chains(&self) -> Vec<&EvidenceChain> {
        self.detections
            .iter()
            .filter_map(|d| d.chain.as_ref())
            .collect()
    }

    /// Every incident tracked so far, in confirmation order.
    pub fn verdicts(&self) -> Vec<FeedVerdict> {
        self.detections
            .iter()
            .map(|d| {
                let ranked: Vec<(String, f64)> = d
                    .localization
                    .as_ref()
                    .map(|loc| {
                        loc.ranked()
                            .into_iter()
                            .map(|(s, v)| (self.service_names[s.index()].clone(), v))
                            .collect()
                    })
                    .unwrap_or_default();
                let top1 = ranked.first().map(|(name, _)| name.clone());
                FeedVerdict {
                    confirmed_at_secs: d.confirmed_at.as_secs_f64(),
                    localized_at_secs: d.localized_at.map(SimTime::as_secs_f64),
                    resolved_at_secs: d.resolved_at.map(SimTime::as_secs_f64),
                    ranked,
                    top1,
                }
            })
            .collect()
    }
}

/// Counts of incident milestones, for diffing across one tick.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    confirmed: u32,
    localized: u32,
    resolved: u32,
}

impl Snapshot {
    fn of(detections: &[Detection]) -> Snapshot {
        Snapshot {
            confirmed: detections.len() as u32,
            localized: detections
                .iter()
                .filter(|d| d.localized_at.is_some())
                .count() as u32,
            resolved: detections
                .iter()
                .filter(|d| d.resolved_at.is_some())
                .count() as u32,
        }
    }
}

/// Records the raw scrape stream of one online-session scenario — same
/// app, seed, load, fault schedule, and horizon as
/// [`OnlineSession::run`](crate::OnlineSession::run) with `cfg`, but with
/// a [`TraceTap`] in place of the streaming ingester. The returned trace
/// replays through a [`FeedSession`] (or over the wire through
/// `icfl-server`) to the same verdicts the in-process session would have
/// produced.
///
/// # Errors
///
/// As scenario assembly in [`OnlineSession::run`](crate::OnlineSession::run).
pub fn record_trace(
    app: &icfl_apps::App,
    schedule: &IncidentSchedule,
    cfg: &OnlineConfig,
    seed: u64,
) -> Result<ScrapeTrace> {
    let interval = SimDuration::from_secs(1);
    let (mut scenario, sink) = Scenario::builder(app, seed)
        .replicas(cfg.replicas)
        .build_with(TraceTap::new(interval))?;
    let trace = icfl_faults::InterventionTrace::new();
    schedule.arm(&mut scenario.sim, &trace);
    let horizon = schedule
        .end()
        .checked_add(cfg.drain)
        .expect("trace horizon fits");
    scenario.run_until(horizon);

    let service_names: Vec<String> = (0..scenario.cluster.num_services())
        .map(|i| {
            scenario
                .cluster
                .service_name(icfl_micro::ServiceId::from_index(i))
                .to_owned()
        })
        .collect();
    let episodes = schedule
        .episodes()
        .iter()
        .map(|ep| TraceEpisode {
            start_nanos: ep.start.as_nanos(),
            end_nanos: ep.end().as_nanos(),
            services: ep
                .services()
                .iter()
                .map(|&s| service_names[s.index()].clone())
                .collect(),
        })
        .collect();
    Ok(ScrapeTrace {
        meta: TraceMeta {
            app: app.name.clone(),
            seed,
            interval_nanos: interval.as_nanos(),
            service_names,
            episodes,
        },
        scrapes: sink.take(),
    })
}
