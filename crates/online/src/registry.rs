//! Versioned on-disk persistence for trained [`CausalModel`]s.
//!
//! Layout: one directory per model name under the registry root, one
//! pretty-printed JSON file per version (`<root>/<name>/v00001.json`,
//! `v00002.json`, …). Each file is a [`ModelRecord`]: a format version, a
//! monotonically increasing model version, provenance metadata
//! ([`ModelMeta`]: app, training seed, catalog, detector, targets), and
//! the serialized model itself. Versions are assigned by the registry
//! (`latest + 1`), never by callers, so concurrent-looking saves from a
//! single process stay ordered. No timestamps are recorded — records are
//! byte-reproducible from the same training inputs.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use icfl_core::CausalModel;
use serde::{Deserialize, Serialize};

/// Record format understood by this crate.
pub const FORMAT_VERSION: u32 = 1;

/// Provenance for a persisted model: everything needed to retrain or to
/// audit where a localization verdict came from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Application the model was trained on (e.g. `"causalbench"`).
    pub app: String,
    /// Seed of the training campaign.
    pub seed: u64,
    /// Metric catalog name (e.g. `"derived_all"`).
    pub catalog: String,
    /// Two-sample test used during learning (e.g. `"ks"`).
    pub detector: String,
    /// Number of services in the cluster the model covers.
    pub num_services: usize,
    /// Human-readable names of the targets the model can implicate.
    pub targets: Vec<String>,
    /// Free-form note (e.g. which binary produced the model).
    pub note: String,
}

/// One persisted registry entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Record format, for forward-compatible readers.
    pub format_version: u32,
    /// Registry-assigned model version, starting at 1.
    pub version: u32,
    /// Training provenance.
    pub meta: ModelMeta,
    /// The trained model.
    pub model: CausalModel,
}

/// Errors surfaced by registry operations.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem failure.
    Io(io::Error),
    /// A record failed to (de)serialize.
    Serde(String),
    /// A version file exists on disk but is truncated or garbled.
    Corrupt {
        /// Path of the unreadable record.
        path: String,
        /// What failed while reading it.
        detail: String,
    },
    /// No model directory with that name exists.
    UnknownModel(String),
    /// The model exists but not at the requested version.
    UnknownVersion(String, u32),
    /// The record was written by an incompatible (newer) format.
    UnsupportedFormat {
        /// Format version found in the record.
        found: u32,
        /// Format version this reader understands.
        supported: u32,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry I/O error: {e}"),
            RegistryError::Serde(e) => write!(f, "registry serialization error: {e}"),
            RegistryError::Corrupt { path, detail } => {
                write!(f, "corrupt registry record {path}: {detail}")
            }
            RegistryError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            RegistryError::UnknownVersion(name, v) => {
                write!(f, "model '{name}' has no version {v}")
            }
            RegistryError::UnsupportedFormat { found, supported } => {
                write!(
                    f,
                    "record format {found} is newer than supported {supported}"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<RegistryError> for icfl_core::CoreError {
    fn from(e: RegistryError) -> Self {
        match e {
            RegistryError::Serde(s) => icfl_core::CoreError::Serde(s),
            e @ RegistryError::Corrupt { .. } => icfl_core::CoreError::Serde(e.to_string()),
            other => icfl_core::CoreError::Io(other.to_string()),
        }
    }
}

/// Registry result alias.
pub type Result<T> = std::result::Result<T, RegistryError>;

/// A directory-backed model registry.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the root directory cannot be created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(ModelRegistry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn version_path(&self, name: &str, version: u32) -> PathBuf {
        self.model_dir(name).join(format!("v{version:05}.json"))
    }

    /// Persists `model` as the next version of `name`, returning the
    /// assigned version number (1 for a fresh model).
    ///
    /// The write is crash-safe: the record is staged in a temp file in the
    /// same directory, fsynced, and atomically renamed onto the version
    /// path. A crash mid-save leaves either no version file at all or the
    /// complete record — never a truncated one. (A stale `*.tmp` from a
    /// crashed save is invisible to [`ModelRegistry::versions`], which only
    /// recognizes `vNNNNN.json` names.)
    ///
    /// # Errors
    ///
    /// Fails on filesystem or serialization errors.
    pub fn save(&self, name: &str, meta: ModelMeta, model: &CausalModel) -> Result<u32> {
        let dir = self.model_dir(name);
        fs::create_dir_all(&dir)?;
        let version = self.latest_version(name)?.unwrap_or(0) + 1;
        let record = ModelRecord {
            format_version: FORMAT_VERSION,
            version,
            meta,
            model: model.clone(),
        };
        let json = serde_json::to_string_pretty(&record)
            .map_err(|e| RegistryError::Serde(e.to_string()))?;
        let final_path = self.version_path(name, version);
        let tmp_path = dir.join(format!("v{version:05}.json.tmp-{}", std::process::id()));
        let staged = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp_path)?;
            io::Write::write_all(&mut file, json.as_bytes())?;
            // Durable before visible: the rename below must never expose
            // a record whose bytes are still in the page cache only.
            file.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        })();
        if let Err(e) = staged {
            let _ = fs::remove_file(&tmp_path);
            return Err(e.into());
        }
        Ok(version)
    }

    /// All versions of `name`, ascending. Empty if the model is unknown.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors other than a missing model directory.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>> {
        let dir = self.model_dir(name);
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut versions = Vec::new();
        for entry in entries {
            let file_name = entry?.file_name();
            let file_name = file_name.to_string_lossy();
            if let Some(v) = file_name
                .strip_prefix('v')
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u32>().ok())
            {
                versions.push(v);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// The highest stored version of `name`, if any.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn latest_version(&self, name: &str) -> Result<Option<u32>> {
        Ok(self.versions(name)?.last().copied())
    }

    /// All model names in the registry, sorted.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Loads a specific version of `name`.
    ///
    /// # Errors
    ///
    /// Fails if the model or version does not exist, or the record cannot
    /// be read or parsed.
    pub fn load(&self, name: &str, version: u32) -> Result<ModelRecord> {
        let path = self.version_path(name, version);
        let json = match fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return if self.model_dir(name).is_dir() {
                    Err(RegistryError::UnknownVersion(name.to_string(), version))
                } else {
                    Err(RegistryError::UnknownModel(name.to_string()))
                };
            }
            Err(e) => return Err(e.into()),
        };
        let record: ModelRecord = serde_json::from_str(&json).map_err(|e| {
            // A version file that exists but does not parse is damage on
            // disk (truncation, bit rot, partial copy), not a caller
            // mistake — surface it as such so `load_latest` can fall back.
            RegistryError::Corrupt {
                path: path.display().to_string(),
                detail: e.to_string(),
            }
        })?;
        if record.format_version > FORMAT_VERSION {
            return Err(RegistryError::UnsupportedFormat {
                found: record.format_version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(record)
    }

    /// Loads the newest *readable* version of `name`.
    ///
    /// Corrupt records (truncated or garbled on disk) are skipped with a
    /// warning on stderr and the next-newest version is tried, so one
    /// damaged file never takes a model offline while older good versions
    /// exist.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] if the model has no versions;
    /// [`RegistryError::Corrupt`] (for the newest file) if *every* stored
    /// version is corrupt; other errors as [`ModelRegistry::load`].
    pub fn load_latest(&self, name: &str) -> Result<ModelRecord> {
        let versions = self.versions(name)?;
        if versions.is_empty() {
            return Err(RegistryError::UnknownModel(name.to_string()));
        }
        let mut first_err = None;
        for &v in versions.iter().rev() {
            match self.load(name, v) {
                Err(e @ RegistryError::Corrupt { .. }) => {
                    eprintln!("warning: skipping {e}");
                    first_err.get_or_insert(e);
                }
                other => return other,
            }
        }
        Err(first_err.expect("at least one version was tried"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_core::{CampaignRun, RunConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("icfl-registry-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn trained_model() -> CausalModel {
        let app = icfl_apps::pattern1();
        let cfg = RunConfig::quick(7);
        let run = CampaignRun::execute(&app, &cfg).unwrap();
        let catalog = icfl_telemetry::MetricCatalog::derived_all();
        run.learn(&catalog, RunConfig::default_detector()).unwrap()
    }

    #[test]
    fn save_load_list_latest_roundtrip() {
        let root = tmp_dir("roundtrip");
        let registry = ModelRegistry::open(&root).unwrap();
        let model = trained_model();
        let meta = ModelMeta {
            app: "pattern1".into(),
            seed: 7,
            catalog: "derived_all".into(),
            detector: "ks".into(),
            num_services: model.num_services(),
            targets: vec!["A".into(), "B".into(), "C".into()],
            note: "unit test".into(),
        };

        assert_eq!(registry.latest_version("pattern1").unwrap(), None);
        let v1 = registry.save("pattern1", meta.clone(), &model).unwrap();
        let v2 = registry.save("pattern1", meta.clone(), &model).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(registry.versions("pattern1").unwrap(), vec![1, 2]);
        assert_eq!(registry.latest_version("pattern1").unwrap(), Some(2));
        assert_eq!(registry.list().unwrap(), vec!["pattern1".to_string()]);

        let record = registry.load_latest("pattern1").unwrap();
        assert_eq!(record.format_version, FORMAT_VERSION);
        assert_eq!(record.version, 2);
        assert_eq!(record.meta, meta);
        assert_eq!(
            record.model.to_json().unwrap(),
            model.to_json().unwrap(),
            "reloaded model must serialize byte-identically"
        );

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_model_and_version_are_distinct_errors() {
        let root = tmp_dir("missing");
        let registry = ModelRegistry::open(&root).unwrap();
        assert!(matches!(
            registry.load_latest("ghost"),
            Err(RegistryError::UnknownModel(_))
        ));

        let model = trained_model();
        let meta = ModelMeta {
            app: "pattern1".into(),
            seed: 7,
            catalog: "derived_all".into(),
            detector: "ks".into(),
            num_services: model.num_services(),
            targets: Vec::new(),
            note: String::new(),
        };
        registry.save("pattern1", meta, &model).unwrap();
        assert!(matches!(
            registry.load("pattern1", 9),
            Err(RegistryError::UnknownVersion(_, 9))
        ));

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let root = tmp_dir("atomic");
        let registry = ModelRegistry::open(&root).unwrap();
        let model = trained_model();
        registry
            .save("pattern1", ModelMeta::default(), &model)
            .unwrap();
        registry
            .save("pattern1", ModelMeta::default(), &model)
            .unwrap();

        let leftovers: Vec<String> = fs::read_dir(root.join("pattern1"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| !(n.starts_with('v') && n.ends_with(".json")))
            .collect();
        assert!(leftovers.is_empty(), "stray staging files: {leftovers:?}");

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_record_is_a_corrupt_error() {
        let root = tmp_dir("truncated");
        let registry = ModelRegistry::open(&root).unwrap();
        let model = trained_model();
        registry
            .save("pattern1", ModelMeta::default(), &model)
            .unwrap();

        // Simulate a torn write from a non-atomic writer: keep the first
        // half of the record only.
        let path = root.join("pattern1").join("v00001.json");
        let json = fs::read_to_string(&path).unwrap();
        fs::write(&path, &json[..json.len() / 2]).unwrap();

        match registry.load("pattern1", 1) {
            Err(RegistryError::Corrupt { path: p, .. }) => {
                assert!(p.ends_with("v00001.json"), "path in error: {p}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn load_latest_falls_back_past_corrupt_newest() {
        let root = tmp_dir("fallback");
        let registry = ModelRegistry::open(&root).unwrap();
        let model = trained_model();
        registry
            .save("pattern1", ModelMeta::default(), &model)
            .unwrap();
        registry
            .save("pattern1", ModelMeta::default(), &model)
            .unwrap();

        // Garble the newest record; the older one must still serve.
        let newest = root.join("pattern1").join("v00002.json");
        fs::write(&newest, "{ garbled").unwrap();
        let record = registry.load_latest("pattern1").unwrap();
        assert_eq!(record.version, 1);

        // With every version damaged, the corruption surfaces (newest
        // first), not UnknownModel.
        let oldest = root.join("pattern1").join("v00001.json");
        fs::write(&oldest, "").unwrap();
        match registry.load_latest("pattern1") {
            Err(RegistryError::Corrupt { path, .. }) => {
                assert!(path.ends_with("v00002.json"), "path in error: {path}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn newer_format_is_rejected_on_load() {
        let root = tmp_dir("format");
        let registry = ModelRegistry::open(&root).unwrap();
        let model = trained_model();
        let meta = ModelMeta::default();
        registry.save("pattern1", meta, &model).unwrap();

        // Rewrite the record claiming a future format version.
        let path = root.join("pattern1").join("v00001.json");
        let json = fs::read_to_string(&path).unwrap();
        let bumped = json.replacen("\"format_version\": 1", "\"format_version\": 99", 1);
        assert_ne!(json, bumped, "fixture must actually bump the version");
        fs::write(&path, bumped).unwrap();

        match registry.load("pattern1", 1) {
            Err(RegistryError::UnsupportedFormat { found, supported }) => {
                assert_eq!((found, supported), (99, FORMAT_VERSION));
            }
            other => panic!("expected UnsupportedFormat, got {other:?}"),
        }

        let _ = fs::remove_dir_all(&root);
    }
}
