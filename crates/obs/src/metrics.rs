//! The deterministic event journal: counters, high-water gauges, and
//! bucketed latency histograms.
//!
//! Everything in this registry must be a *commutative aggregate* —
//! counters only add, gauges only take maxima, histogram buckets only
//! add — so a snapshot's bytes cannot depend on the order updates
//! arrived in. Counters and gauges must additionally carry only
//! *deterministic per-run values*, making their snapshots byte-identical
//! regardless of worker-thread count or scheduling; quantities that
//! depend on the host (thread counts, wall-clock durations, per-worker
//! task splits) belong in the [`Profiler`](crate::Profiler) side instead.
//! The split is the crate's core contract and is asserted by
//! `tests/obs_determinism.rs`.
//!
//! Histograms are the one deliberate carve-out: they exist for the
//! `icfl-server` network surface, whose ingest-to-verdict latencies are
//! wall-clock by nature but must still be scrapeable from the `/metrics`
//! exposition next to the server's counters. Histogram samples are never
//! part of byte-compared goldens.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Histogram bucket upper bounds in nanoseconds, spanning 250 µs – 10 s
/// (a `+Inf` bucket is implicit). Chosen for request-scale latencies:
/// sub-millisecond loopback ingests land in the low buckets, degraded
/// tail latencies under overload in the top ones.
const HISTOGRAM_BOUNDS_NANOS: [u64; 15] = [
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Renders a bucket bound as a Prometheus `le` label value, in seconds.
fn le_label(bound_nanos: u64) -> String {
    // Bounds are exact multiples of 250 µs, so six decimals are always
    // enough and trailing zeros are trimmed for conventional labels.
    let secs = bound_nanos as f64 / 1e9;
    let mut s = format!("{secs:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// One bucketed latency histogram: cumulative counts per bound plus the
/// running sum and count (Prometheus histogram semantics).
#[derive(Debug, Clone, Default)]
struct Histogram {
    /// Per-bucket (non-cumulative) observation counts; index i counts
    /// observations ≤ `HISTOGRAM_BOUNDS_NANOS[i]`, with one extra slot
    /// for `+Inf`.
    counts: [u64; HISTOGRAM_BOUNDS_NANOS.len() + 1],
    sum_nanos: u64,
    count: u64,
}

impl Histogram {
    fn observe(&mut self, nanos: u64) {
        let idx = HISTOGRAM_BOUNDS_NANOS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(HISTOGRAM_BOUNDS_NANOS.len());
        self.counts[idx] += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.count += 1;
    }
}

/// A metric identity: name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    labels.sort();
    (name.to_owned(), labels)
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A registry of journal metrics (see the module docs for the determinism
/// contract). All methods are `&self` and internally locked, so any
/// instrumentation point can update it concurrently.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// One exported metric sample.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (Prometheus-compatible: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Aggregated value (sum for counters, max for gauges).
    pub value: u64,
    /// `"counter"` or `"gauge"`, mirroring the Prometheus `# TYPE` line.
    pub kind: String,
}

/// An immutable, deterministically ordered snapshot of the journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Every sample, sorted by (name, labels) with counters and gauges
    /// interleaved in name order.
    pub samples: Vec<MetricSample>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the counter `name{labels}` (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.counters.entry(key(name, labels)).or_insert(0) += v;
    }

    /// Raises the high-water gauge `name{labels}` to at least `v`.
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let slot = inner.gauges.entry(key(name, labels)).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Records one observation of `nanos` in the bucketed latency
    /// histogram `name{labels}`. Unlike counters and gauges, histogram
    /// observations are typically wall-clock measurements (the server
    /// ingest path) and are excluded from byte-compared goldens; bucket
    /// totals are still update-order-invariant.
    pub fn histogram_observe_nanos(&self, name: &str, labels: &[(&str, &str)], nanos: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner
            .histograms
            .entry(key(name, labels))
            .or_default()
            .observe(nanos);
    }

    /// Snapshots every metric in deterministic order. Histograms flatten
    /// into Prometheus-convention samples: `<name>_bucket{le="..."}`
    /// cumulative counts (including `le="+Inf"`), `<name>_count`, and
    /// `<name>_sum_ns` (nanoseconds, so the snapshot stays integral).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        let mut samples: Vec<MetricSample> = inner
            .counters
            .iter()
            .map(|((name, labels), &value)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value,
                kind: "counter".to_owned(),
            })
            .chain(
                inner
                    .gauges
                    .iter()
                    .map(|((name, labels), &value)| MetricSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        value,
                        kind: "gauge".to_owned(),
                    }),
            )
            .collect();
        for ((name, labels), h) in &inner.histograms {
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = HISTOGRAM_BOUNDS_NANOS
                    .get(i)
                    .map(|&b| le_label(b))
                    .unwrap_or_else(|| "+Inf".to_owned());
                let mut bucket_labels = labels.clone();
                bucket_labels.push(("le".to_owned(), le));
                bucket_labels.sort();
                samples.push(MetricSample {
                    name: format!("{name}_bucket"),
                    labels: bucket_labels,
                    value: cumulative,
                    kind: "counter".to_owned(),
                });
            }
            samples.push(MetricSample {
                name: format!("{name}_count"),
                labels: labels.clone(),
                value: h.count,
                kind: "counter".to_owned(),
            });
            samples.push(MetricSample {
                name: format!("{name}_sum_ns"),
                labels: labels.clone(),
                value: h.sum_nanos,
                kind: "counter".to_owned(),
            });
        }
        samples.sort();
        MetricsSnapshot { samples }
    }
}

impl MetricsSnapshot {
    /// The summed value of every sample named `name` across its label
    /// sets, or `None` if the metric was never touched.
    pub fn total(&self, name: &str) -> Option<u64> {
        let mut seen = false;
        let mut sum = 0u64;
        for s in self.samples.iter().filter(|s| s.name == name) {
            seen = true;
            sum += s.value;
        }
        seen.then_some(sum)
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) of the histogram `name` in
    /// milliseconds, aggregated across all of its label sets, by linear
    /// interpolation inside the covering bucket (the classic
    /// `histogram_quantile` estimate). Observations that overflowed into
    /// `+Inf` clamp to the largest finite bound. Returns `None` if the
    /// histogram is absent or empty.
    pub fn histogram_quantile_ms(&self, name: &str, q: f64) -> Option<f64> {
        let bucket_name = format!("{name}_bucket");
        // (upper bound in secs, summed cumulative count) per `le` value.
        let mut buckets: BTreeMap<String, u64> = BTreeMap::new();
        for s in self.samples.iter().filter(|s| s.name == bucket_name) {
            let le = s.labels.iter().find(|(k, _)| k == "le")?;
            *buckets.entry(le.1.clone()).or_insert(0) += s.value;
        }
        let mut bounds: Vec<(f64, u64)> = buckets
            .into_iter()
            .map(|(le, c)| {
                let secs = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().unwrap_or(f64::INFINITY)
                };
                (secs, c)
            })
            .collect();
        bounds.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total = bounds.last().map(|&(_, c)| c)?;
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut prev_bound = 0.0f64;
        let mut prev_cum = 0u64;
        for &(bound, cum) in &bounds {
            if (cum as f64) >= rank {
                if bound.is_infinite() || cum == prev_cum {
                    // +Inf has no upper edge to interpolate against;
                    // clamp to the largest finite lower edge.
                    return Some(prev_bound * 1e3);
                }
                let in_bucket = (cum - prev_cum) as f64;
                let frac = ((rank - prev_cum as f64) / in_bucket).clamp(0.0, 1.0);
                return Some((prev_bound + (bound - prev_bound) * frac) * 1e3);
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        Some(prev_bound * 1e3)
    }

    /// Renders the snapshot as a Prometheus text exposition: one `# TYPE`
    /// line per metric name followed by its samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            if last_name != Some(s.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&s.name);
                out.push(' ');
                out.push_str(&s.kind);
                out.push('\n');
                last_name = Some(s.name.as_str());
            }
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    // Prometheus label values escape backslash, quote, \n.
                    for c in v.chars() {
                        match c {
                            '\\' => out.push_str("\\\\"),
                            '"' => out.push_str("\\\""),
                            '\n' => out.push_str("\\n"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&s.value.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the snapshot as JSONL: one JSON object per sample, in the
    /// snapshot's deterministic order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&serde_json::to_string(s).expect("metric samples serialize"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_jobs_total", &[], 3);
        r.counter_add("icfl_jobs_total", &[], 4);
        r.gauge_max("icfl_depth_peak", &[], 2);
        r.gauge_max("icfl_depth_peak", &[], 7);
        r.gauge_max("icfl_depth_peak", &[], 5);
        let snap = r.snapshot();
        assert_eq!(snap.total("icfl_jobs_total"), Some(7));
        assert_eq!(snap.total("icfl_depth_peak"), Some(7));
        assert_eq!(snap.total("icfl_absent"), None);
    }

    #[test]
    fn labels_are_sorted_into_one_identity() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_x_total", &[("b", "2"), ("a", "1")], 1);
        r.counter_add("icfl_x_total", &[("a", "1"), ("b", "2")], 1);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.samples[0].value, 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_b_total", &[("app", "demo")], 2);
        r.counter_add("icfl_a_total", &[], 1);
        r.gauge_max("icfl_a_peak", &[], 9);
        let text = r.snapshot().to_prometheus();
        let expected = "# TYPE icfl_a_peak gauge\n\
                        icfl_a_peak 9\n\
                        # TYPE icfl_a_total counter\n\
                        icfl_a_total 1\n\
                        # TYPE icfl_b_total counter\n\
                        icfl_b_total{app=\"demo\"} 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn snapshot_bytes_are_update_order_invariant() {
        let mk = |order: &[usize]| {
            let r = MetricsRegistry::new();
            for &i in order {
                r.counter_add("icfl_n_total", &[("i", &(i % 2).to_string())], i as u64);
                r.gauge_max("icfl_n_peak", &[], i as u64);
            }
            (r.snapshot().to_prometheus(), r.snapshot().to_jsonl())
        };
        assert_eq!(mk(&[1, 2, 3, 4]), mk(&[4, 3, 2, 1]));
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let r = MetricsRegistry::new();
        let ms = 1_000_000u64;
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], ms / 10); // 0.1ms
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 3 * ms); // 3ms
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 20_000 * ms); // > 10s
        let snap = r.snapshot();
        assert_eq!(snap.total("icfl_lat_count"), Some(3));
        assert_eq!(
            snap.total("icfl_lat_sum_ns"),
            Some(ms / 10 + 3 * ms + 20_000 * ms)
        );
        let le = |v: &str| {
            snap.samples
                .iter()
                .find(|s| {
                    s.name == "icfl_lat_bucket" && s.labels.contains(&("le".into(), v.into()))
                })
                .map(|s| s.value)
        };
        // Cumulative: 0.1ms lands <= 0.25ms, 3ms <= 5ms, 20s only in +Inf.
        assert_eq!(le("0.00025"), Some(1));
        assert_eq!(le("0.0025"), Some(1));
        assert_eq!(le("0.005"), Some(2));
        assert_eq!(le("10"), Some(2));
        assert_eq!(le("+Inf"), Some(3));
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let r = MetricsRegistry::new();
        // 100 observations spread evenly through the (0.5ms, 1ms] bucket.
        for i in 0..100u64 {
            r.histogram_observe_nanos("icfl_lat", &[], 500_001 + i * 4_000);
        }
        let snap = r.snapshot();
        // All mass is in one bucket, so quantiles interpolate linearly
        // between the 0.5ms and 1ms edges.
        let p50 = snap.histogram_quantile_ms("icfl_lat", 0.5).unwrap();
        assert!((p50 - 0.75).abs() < 0.01, "p50 = {p50}");
        let p99 = snap.histogram_quantile_ms("icfl_lat", 0.99).unwrap();
        assert!((0.99..=1.0).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.histogram_quantile_ms("icfl_absent", 0.5), None);
    }

    #[test]
    fn histogram_quantile_aggregates_label_sets_and_clamps_inf() {
        let r = MetricsRegistry::new();
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 100_000);
        r.histogram_observe_nanos("icfl_lat", &[("t", "b")], 100_000);
        r.histogram_observe_nanos("icfl_lat", &[("t", "b")], 99_000_000_000); // +Inf
        let snap = r.snapshot();
        // p50 over {0.1ms, 0.1ms, 99s}: rank 1.5 of 3 → first bucket.
        assert!(snap.histogram_quantile_ms("icfl_lat", 0.5).unwrap() <= 0.25);
        // p99 lands in +Inf and clamps to the top finite bound (10s).
        let p99 = snap.histogram_quantile_ms("icfl_lat", 0.99).unwrap();
        assert_eq!(p99, 10_000.0);
    }

    #[test]
    fn histogram_exposition_is_update_order_invariant() {
        let mk = |order: &[u64]| {
            let r = MetricsRegistry::new();
            for &n in order {
                r.histogram_observe_nanos("icfl_lat", &[], n * 1_000_000);
            }
            r.snapshot().to_prometheus()
        };
        assert_eq!(mk(&[1, 7, 30, 600]), mk(&[600, 30, 7, 1]));
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_a_total", &[("k", "v")], 1);
        r.gauge_max("icfl_b_peak", &[], 2);
        let jsonl = r.snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::parse_value_str(line).expect("each line parses as JSON");
        }
    }
}
