//! The deterministic event journal: counters, high-water gauges, and
//! bucketed latency histograms.
//!
//! Everything in this registry must be a *commutative aggregate* —
//! counters only add, gauges only take maxima, histogram buckets only
//! add — so a snapshot's bytes cannot depend on the order updates
//! arrived in. Counters and gauges must additionally carry only
//! *deterministic per-run values*, making their snapshots byte-identical
//! regardless of worker-thread count or scheduling; quantities that
//! depend on the host (thread counts, wall-clock durations, per-worker
//! task splits) belong in the [`Profiler`](crate::Profiler) side instead.
//! The split is the crate's core contract and is asserted by
//! `tests/obs_determinism.rs`.
//!
//! Histograms are the one deliberate carve-out: they exist for the
//! `icfl-server` network surface, whose ingest-to-verdict latencies are
//! wall-clock by nature but must still be scrapeable from the `/metrics`
//! exposition next to the server's counters. Histogram samples are never
//! part of byte-compared goldens.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Histogram bucket upper bounds in nanoseconds, spanning 250 µs – 10 s
/// (a `+Inf` bucket is implicit). Chosen for request-scale latencies:
/// sub-millisecond loopback ingests land in the low buckets, degraded
/// tail latencies under overload in the top ones.
const HISTOGRAM_BOUNDS_NANOS: [u64; 15] = [
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Renders a bucket bound as a Prometheus `le` label value, in seconds.
fn le_label(bound_nanos: u64) -> String {
    // Bounds are exact multiples of 250 µs, so six decimals are always
    // enough and trailing zeros are trimmed for conventional labels.
    let secs = bound_nanos as f64 / 1e9;
    let mut s = format!("{secs:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// One bucketed latency histogram: cumulative counts per bound plus the
/// running sum and count (Prometheus histogram semantics).
#[derive(Debug, Clone, Default)]
struct Histogram {
    /// Per-bucket (non-cumulative) observation counts; index i counts
    /// observations ≤ `HISTOGRAM_BOUNDS_NANOS[i]`, with one extra slot
    /// for `+Inf`.
    counts: [u64; HISTOGRAM_BOUNDS_NANOS.len() + 1],
    /// Most recent exemplar per bucket (last write wins): an opaque id —
    /// the server attaches `tenant/incident` — plus the observed value.
    exemplars: [Option<(String, u64)>; HISTOGRAM_BOUNDS_NANOS.len() + 1],
    sum_nanos: u64,
    count: u64,
}

impl Histogram {
    fn observe(&mut self, nanos: u64, exemplar: Option<&str>) {
        let idx = HISTOGRAM_BOUNDS_NANOS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(HISTOGRAM_BOUNDS_NANOS.len());
        self.counts[idx] += 1;
        if let Some(id) = exemplar {
            self.exemplars[idx] = Some((id.to_owned(), nanos));
        }
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.count += 1;
    }
}

/// Renders nanoseconds as a seconds literal for exemplar values.
fn format_secs(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

/// A metric identity: name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    labels.sort();
    (name.to_owned(), labels)
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A registry of journal metrics (see the module docs for the determinism
/// contract). All methods are `&self` and internally locked, so any
/// instrumentation point can update it concurrently.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// One exported metric sample.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (Prometheus-compatible: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Aggregated value (sum for counters, max for gauges).
    pub value: u64,
    /// `"counter"` or `"gauge"`, mirroring the Prometheus `# TYPE` line.
    pub kind: String,
    /// OpenMetrics-style exemplar on histogram bucket samples: an opaque
    /// id (the server attaches `tenant/incident`) and the observed
    /// nanoseconds. Absent everywhere else.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub exemplar: Option<(String, u64)>,
}

/// An immutable, deterministically ordered snapshot of the journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Every sample, sorted by (name, labels) with counters and gauges
    /// interleaved in name order.
    pub samples: Vec<MetricSample>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the counter `name{labels}` (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.counters.entry(key(name, labels)).or_insert(0) += v;
    }

    /// Raises the high-water gauge `name{labels}` to at least `v`.
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let slot = inner.gauges.entry(key(name, labels)).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Records one observation of `nanos` in the bucketed latency
    /// histogram `name{labels}`. Unlike counters and gauges, histogram
    /// observations are typically wall-clock measurements (the server
    /// ingest path) and are excluded from byte-compared goldens; bucket
    /// totals are still update-order-invariant.
    pub fn histogram_observe_nanos(&self, name: &str, labels: &[(&str, &str)], nanos: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner
            .histograms
            .entry(key(name, labels))
            .or_default()
            .observe(nanos, None);
    }

    /// Like [`MetricsRegistry::histogram_observe_nanos`], but also
    /// attaches `exemplar` (an opaque id such as `tenant/incident`) to the
    /// bucket the observation lands in, last write wins. The exemplar
    /// rides the exposition as an OpenMetrics `# {incident_id="..."}`
    /// suffix, linking a latency bucket to the incident that produced it.
    pub fn histogram_observe_nanos_exemplar(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        nanos: u64,
        exemplar: &str,
    ) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner
            .histograms
            .entry(key(name, labels))
            .or_default()
            .observe(nanos, Some(exemplar));
    }

    /// Snapshots every metric in deterministic order. Histograms flatten
    /// into Prometheus-convention samples: `<name>_bucket{le="..."}`
    /// cumulative counts with the buckets of each series in ascending
    /// bound order and an explicit `le="+Inf"` bucket last, then
    /// `<name>_count` and `<name>_sum_ns` (nanoseconds, so the snapshot
    /// stays integral). Counters and gauges sort lexicographically;
    /// histogram samples are appended after them, grouped so every
    /// synthetic name (`_bucket`, `_count`, `_sum_ns`) is contiguous for
    /// the `# TYPE`-line renderer.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        let mut samples: Vec<MetricSample> = inner
            .counters
            .iter()
            .map(|((name, labels), &value)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value,
                kind: "counter".to_owned(),
                exemplar: None,
            })
            .chain(
                inner
                    .gauges
                    .iter()
                    .map(|((name, labels), &value)| MetricSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        value,
                        kind: "gauge".to_owned(),
                        exemplar: None,
                    }),
            )
            .collect();
        samples.sort();
        // Histogram families, grouped by base name (BTreeMap order keeps
        // label sets of one name adjacent): all `_bucket` samples of a
        // name first — per series in ascending bound order, `+Inf` last —
        // then its `_count` samples, then its `_sum_ns` samples. The
        // previous global lexicographic sort scrambled bucket order
        // (`le="+Inf"` sorted first, `le="10"` before `le="2.5"`), which
        // promtool-style linting rejects.
        let mut names: Vec<&String> = inner.histograms.keys().map(|(n, _)| n).collect();
        names.dedup();
        for hname in names {
            let series: Vec<(&Key, &Histogram)> = inner
                .histograms
                .iter()
                .filter(|((n, _), _)| n == hname)
                .collect();
            for ((name, labels), h) in &series {
                let mut cumulative = 0u64;
                for (i, &c) in h.counts.iter().enumerate() {
                    cumulative += c;
                    let le = HISTOGRAM_BOUNDS_NANOS
                        .get(i)
                        .map(|&b| le_label(b))
                        .unwrap_or_else(|| "+Inf".to_owned());
                    let mut bucket_labels = labels.clone();
                    bucket_labels.push(("le".to_owned(), le));
                    bucket_labels.sort();
                    samples.push(MetricSample {
                        name: format!("{name}_bucket"),
                        labels: bucket_labels,
                        value: cumulative,
                        kind: "counter".to_owned(),
                        exemplar: h.exemplars[i].clone(),
                    });
                }
            }
            for ((name, labels), h) in &series {
                samples.push(MetricSample {
                    name: format!("{name}_count"),
                    labels: labels.clone(),
                    value: h.count,
                    kind: "counter".to_owned(),
                    exemplar: None,
                });
            }
            for ((name, labels), h) in &series {
                samples.push(MetricSample {
                    name: format!("{name}_sum_ns"),
                    labels: labels.clone(),
                    value: h.sum_nanos,
                    kind: "counter".to_owned(),
                    exemplar: None,
                });
            }
        }
        MetricsSnapshot { samples }
    }
}

impl MetricsSnapshot {
    /// The summed value of every sample named `name` across its label
    /// sets, or `None` if the metric was never touched.
    pub fn total(&self, name: &str) -> Option<u64> {
        let mut seen = false;
        let mut sum = 0u64;
        for s in self.samples.iter().filter(|s| s.name == name) {
            seen = true;
            sum += s.value;
        }
        seen.then_some(sum)
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) of the histogram `name` in
    /// milliseconds, aggregated across all of its label sets, by linear
    /// interpolation inside the covering bucket (the classic
    /// `histogram_quantile` estimate). Observations that overflowed into
    /// `+Inf` clamp to the largest finite bound. Returns `None` if the
    /// histogram is absent or empty.
    pub fn histogram_quantile_ms(&self, name: &str, q: f64) -> Option<f64> {
        let bucket_name = format!("{name}_bucket");
        // (upper bound in secs, summed cumulative count) per `le` value.
        let mut buckets: BTreeMap<String, u64> = BTreeMap::new();
        for s in self.samples.iter().filter(|s| s.name == bucket_name) {
            let le = s.labels.iter().find(|(k, _)| k == "le")?;
            *buckets.entry(le.1.clone()).or_insert(0) += s.value;
        }
        let mut bounds: Vec<(f64, u64)> = buckets
            .into_iter()
            .map(|(le, c)| {
                let secs = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().unwrap_or(f64::INFINITY)
                };
                (secs, c)
            })
            .collect();
        bounds.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total = bounds.last().map(|&(_, c)| c)?;
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut prev_bound = 0.0f64;
        let mut prev_cum = 0u64;
        for &(bound, cum) in &bounds {
            if (cum as f64) >= rank {
                if bound.is_infinite() || cum == prev_cum {
                    // +Inf has no upper edge to interpolate against;
                    // clamp to the largest finite lower edge.
                    return Some(prev_bound * 1e3);
                }
                let in_bucket = (cum - prev_cum) as f64;
                let frac = ((rank - prev_cum as f64) / in_bucket).clamp(0.0, 1.0);
                return Some((prev_bound + (bound - prev_bound) * frac) * 1e3);
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        Some(prev_bound * 1e3)
    }

    /// Renders the snapshot as a Prometheus text exposition: one `# TYPE`
    /// line per metric name followed by its samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            if last_name != Some(s.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&s.name);
                out.push(' ');
                out.push_str(&s.kind);
                out.push('\n');
                last_name = Some(s.name.as_str());
            }
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    // Prometheus label values escape backslash, quote, \n.
                    for c in v.chars() {
                        match c {
                            '\\' => out.push_str("\\\\"),
                            '"' => out.push_str("\\\""),
                            '\n' => out.push_str("\\n"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&s.value.to_string());
            if let Some((id, nanos)) = &s.exemplar {
                // OpenMetrics exemplar syntax: `# {labels} value` after
                // the sample value. The id is escaped like a label value.
                out.push_str(" # {incident_id=\"");
                for c in id.chars() {
                    match c {
                        '\\' => out.push_str("\\\\"),
                        '"' => out.push_str("\\\""),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push_str("\"} ");
                out.push_str(&format_secs(*nanos));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the snapshot as JSONL: one JSON object per sample, in the
    /// snapshot's deterministic order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&serde_json::to_string(s).expect("metric samples serialize"));
            out.push('\n');
        }
        out
    }
}

/// A promtool-style lint of a Prometheus text exposition: every line must
/// be a well-formed comment or sample, every sample must sit under exactly
/// one preceding `# TYPE` line for its name, and histogram `_bucket`
/// series must list their buckets in strictly increasing `le` order with
/// non-decreasing cumulative counts and an explicit `+Inf` bucket last
/// whose value equals the series `_count`. Exemplar suffixes
/// (`... # {labels} value`) are validated where present.
///
/// # Errors
///
/// Returns every violation found, one human-readable message each.
pub fn lint_exposition(text: &str) -> std::result::Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut current: Option<String> = None;
    // (base name, labels minus `le`) → (le bound, cumulative count) in
    // file order, plus the matching `_count` values.
    let mut buckets: BTreeMap<(String, String), Vec<(f64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let parts: Vec<&str> = rest.split(' ').collect();
            match parts.as_slice() {
                [name, kind]
                    if is_metric_name(name)
                        && matches!(*kind, "counter" | "gauge" | "histogram") =>
                {
                    if typed
                        .insert((*name).to_owned(), (*kind).to_owned())
                        .is_some()
                    {
                        errs.push(format!("line {lineno}: duplicate # TYPE for {name}"));
                    }
                    current = Some((*name).to_owned());
                }
                _ => errs.push(format!("line {lineno}: malformed # TYPE line: {line}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal
        }
        let (name, labels, value) = match parse_sample_line(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                errs.push(format!("line {lineno}: {e}"));
                continue;
            }
        };
        if !typed.contains_key(&name) {
            errs.push(format!("line {lineno}: sample {name} has no # TYPE line"));
        } else if current.as_deref() != Some(name.as_str()) {
            errs.push(format!(
                "line {lineno}: sample {name} outside its # TYPE group"
            ));
        }
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = labels.iter().find(|(k, _)| k == "le");
            let others: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            match le {
                None => errs.push(format!("line {lineno}: {name} sample without an le label")),
                Some((_, le)) => {
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        match le.parse::<f64>() {
                            Ok(b) => b,
                            Err(_) => {
                                errs.push(format!("line {lineno}: unparseable le=\"{le}\""));
                                continue;
                            }
                        }
                    };
                    buckets
                        .entry((base.to_owned(), others.join(",")))
                        .or_default()
                        .push((bound, value));
                }
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            let labels: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            counts.insert((base.to_owned(), labels.join(",")), value);
        }
    }
    for ((base, labels), series) in &buckets {
        let what = format!("histogram {base}{{{labels}}}");
        for pair in series.windows(2) {
            if pair[1].0 <= pair[0].0 {
                errs.push(format!("{what}: le bounds not strictly increasing"));
            }
            if pair[1].1 < pair[0].1 {
                errs.push(format!("{what}: cumulative bucket counts decrease"));
            }
        }
        match series.last() {
            Some(&(bound, cum)) if bound.is_infinite() => {
                if let Some(&count) = counts.get(&(base.clone(), labels.clone())) {
                    if cum != count {
                        errs.push(format!(
                            "{what}: +Inf bucket {cum} disagrees with _count {count}"
                        ));
                    }
                } else {
                    errs.push(format!("{what}: no matching _count sample"));
                }
            }
            _ => errs.push(format!("{what}: last bucket is not le=\"+Inf\"")),
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Prometheus metric-name syntax: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Prometheus label-name syntax: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed exposition sample: (metric name, labels, value).
type ParsedSample = (String, Vec<(String, String)>, u64);

/// Parses one exposition sample line into (name, labels, value),
/// validating the optional exemplar suffix.
fn parse_sample_line(line: &str) -> std::result::Result<ParsedSample, String> {
    let (name, rest) = match line.find(['{', ' ']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(format!("no value on sample line: {line}")),
    };
    if !is_metric_name(name) {
        return Err(format!("invalid metric name: {name}"));
    }
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let close = body
            .find('}')
            .ok_or_else(|| format!("unclosed label braces: {line}"))?;
        (parse_labels(&body[..close])?, &body[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("missing space before value: {line}"))?;
    let (value_str, exemplar) = match rest.split_once(" # ") {
        Some((v, e)) => (v, Some(e)),
        None => (rest, None),
    };
    let value = value_str
        .parse::<u64>()
        .map_err(|_| format!("unparseable sample value {value_str:?}"))?;
    if let Some(e) = exemplar {
        let body = e
            .strip_prefix('{')
            .ok_or_else(|| format!("exemplar must start with '{{': {e}"))?;
        let close = body
            .find('}')
            .ok_or_else(|| format!("unclosed exemplar braces: {e}"))?;
        parse_labels(&body[..close])?;
        let v = body[close + 1..].trim_start();
        if v.parse::<f64>().map(f64::is_finite) != Ok(true) {
            return Err(format!("unparseable exemplar value {v:?}"));
        }
    }
    Ok((name.to_owned(), labels, value))
}

/// Parses `k1="v1",k2="v2"` label bodies (quotes escape `\\`, `\"`, `\n`).
fn parse_labels(body: &str) -> std::result::Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find("=\"")
            .ok_or_else(|| format!("label without =\"...\": {rest}"))?;
        let k = &rest[..eq];
        if !is_label_name(k) {
            return Err(format!("invalid label name: {k}"));
        }
        let mut v = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => v.push('\n'),
                    Some((_, c @ ('\\' | '"'))) => v.push(c),
                    other => return Err(format!("bad escape {other:?} in label value")),
                },
                '"' => {
                    end = Some(eq + 2 + i + 1);
                    break;
                }
                c => v.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {rest}"))?;
        out.push((k.to_owned(), v));
        rest = &rest[end..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels: {rest}"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_jobs_total", &[], 3);
        r.counter_add("icfl_jobs_total", &[], 4);
        r.gauge_max("icfl_depth_peak", &[], 2);
        r.gauge_max("icfl_depth_peak", &[], 7);
        r.gauge_max("icfl_depth_peak", &[], 5);
        let snap = r.snapshot();
        assert_eq!(snap.total("icfl_jobs_total"), Some(7));
        assert_eq!(snap.total("icfl_depth_peak"), Some(7));
        assert_eq!(snap.total("icfl_absent"), None);
    }

    #[test]
    fn labels_are_sorted_into_one_identity() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_x_total", &[("b", "2"), ("a", "1")], 1);
        r.counter_add("icfl_x_total", &[("a", "1"), ("b", "2")], 1);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.samples[0].value, 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_b_total", &[("app", "demo")], 2);
        r.counter_add("icfl_a_total", &[], 1);
        r.gauge_max("icfl_a_peak", &[], 9);
        let text = r.snapshot().to_prometheus();
        let expected = "# TYPE icfl_a_peak gauge\n\
                        icfl_a_peak 9\n\
                        # TYPE icfl_a_total counter\n\
                        icfl_a_total 1\n\
                        # TYPE icfl_b_total counter\n\
                        icfl_b_total{app=\"demo\"} 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn snapshot_bytes_are_update_order_invariant() {
        let mk = |order: &[usize]| {
            let r = MetricsRegistry::new();
            for &i in order {
                r.counter_add("icfl_n_total", &[("i", &(i % 2).to_string())], i as u64);
                r.gauge_max("icfl_n_peak", &[], i as u64);
            }
            (r.snapshot().to_prometheus(), r.snapshot().to_jsonl())
        };
        assert_eq!(mk(&[1, 2, 3, 4]), mk(&[4, 3, 2, 1]));
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let r = MetricsRegistry::new();
        let ms = 1_000_000u64;
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], ms / 10); // 0.1ms
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 3 * ms); // 3ms
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 20_000 * ms); // > 10s
        let snap = r.snapshot();
        assert_eq!(snap.total("icfl_lat_count"), Some(3));
        assert_eq!(
            snap.total("icfl_lat_sum_ns"),
            Some(ms / 10 + 3 * ms + 20_000 * ms)
        );
        let le = |v: &str| {
            snap.samples
                .iter()
                .find(|s| {
                    s.name == "icfl_lat_bucket" && s.labels.contains(&("le".into(), v.into()))
                })
                .map(|s| s.value)
        };
        // Cumulative: 0.1ms lands <= 0.25ms, 3ms <= 5ms, 20s only in +Inf.
        assert_eq!(le("0.00025"), Some(1));
        assert_eq!(le("0.0025"), Some(1));
        assert_eq!(le("0.005"), Some(2));
        assert_eq!(le("10"), Some(2));
        assert_eq!(le("+Inf"), Some(3));
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let r = MetricsRegistry::new();
        // 100 observations spread evenly through the (0.5ms, 1ms] bucket.
        for i in 0..100u64 {
            r.histogram_observe_nanos("icfl_lat", &[], 500_001 + i * 4_000);
        }
        let snap = r.snapshot();
        // All mass is in one bucket, so quantiles interpolate linearly
        // between the 0.5ms and 1ms edges.
        let p50 = snap.histogram_quantile_ms("icfl_lat", 0.5).unwrap();
        assert!((p50 - 0.75).abs() < 0.01, "p50 = {p50}");
        let p99 = snap.histogram_quantile_ms("icfl_lat", 0.99).unwrap();
        assert!((0.99..=1.0).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.histogram_quantile_ms("icfl_absent", 0.5), None);
    }

    #[test]
    fn histogram_quantile_aggregates_label_sets_and_clamps_inf() {
        let r = MetricsRegistry::new();
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 100_000);
        r.histogram_observe_nanos("icfl_lat", &[("t", "b")], 100_000);
        r.histogram_observe_nanos("icfl_lat", &[("t", "b")], 99_000_000_000); // +Inf
        let snap = r.snapshot();
        // p50 over {0.1ms, 0.1ms, 99s}: rank 1.5 of 3 → first bucket.
        assert!(snap.histogram_quantile_ms("icfl_lat", 0.5).unwrap() <= 0.25);
        // p99 lands in +Inf and clamps to the top finite bound (10s).
        let p99 = snap.histogram_quantile_ms("icfl_lat", 0.99).unwrap();
        assert_eq!(p99, 10_000.0);
    }

    #[test]
    fn histogram_exposition_is_update_order_invariant() {
        let mk = |order: &[u64]| {
            let r = MetricsRegistry::new();
            for &n in order {
                r.histogram_observe_nanos("icfl_lat", &[], n * 1_000_000);
            }
            r.snapshot().to_prometheus()
        };
        assert_eq!(mk(&[1, 7, 30, 600]), mk(&[600, 30, 7, 1]));
    }

    #[test]
    fn histogram_buckets_expose_in_bound_order_with_explicit_inf_last() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_z_total", &[], 1); // sorts after icfl_lat lexically
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 3_000_000);
        let text = r.snapshot().to_prometheus();
        // Buckets must appear in ascending bound order — the old global
        // lexicographic sort put +Inf first and le="10" before le="2.5".
        let les: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("icfl_lat_bucket"))
            .map(|l| {
                let start = l.find("le=\"").unwrap() + 4;
                &l[start..start + l[start..].find('"').unwrap()]
            })
            .collect();
        assert_eq!(les.len(), HISTOGRAM_BOUNDS_NANOS.len() + 1);
        assert_eq!(*les.last().unwrap(), "+Inf", "explicit +Inf bucket last");
        let bounds: Vec<f64> = les[..les.len() - 1]
            .iter()
            .map(|le| le.parse().unwrap())
            .collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending: {les:?}");
        lint_exposition(&text).expect("exposition passes the promtool-style lint");
    }

    #[test]
    fn exemplars_ride_bucket_lines_and_pass_lint() {
        let r = MetricsRegistry::new();
        r.histogram_observe_nanos("icfl_lat", &[("t", "a")], 400_000);
        r.histogram_observe_nanos_exemplar("icfl_lat", &[("t", "a")], 3_000_000, "t1/0");
        r.histogram_observe_nanos_exemplar("icfl_lat", &[("t", "a")], 3_100_000, "t1/1");
        let snap = r.snapshot();
        let with_exemplar: Vec<&MetricSample> = snap
            .samples
            .iter()
            .filter(|s| s.exemplar.is_some())
            .collect();
        // Last write wins within the one bucket both observations hit.
        assert_eq!(with_exemplar.len(), 1);
        assert_eq!(
            with_exemplar[0].exemplar,
            Some(("t1/1".to_owned(), 3_100_000))
        );
        let text = snap.to_prometheus();
        assert!(
            text.contains("# {incident_id=\"t1/1\"} 0.0031"),
            "exemplar suffix missing:\n{text}"
        );
        // The un-exemplared bucket lines carry no suffix.
        assert!(
            text.contains("le=\"0.0005\",t=\"a\"} 1\n"),
            "plain line intact:\n{text}"
        );
        lint_exposition(&text).expect("exemplar exposition passes lint");
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        for (bad, why) in [
            ("icfl_x_total 1\n", "sample without a TYPE line"),
            (
                "# TYPE icfl_x_total counter\nicfl_x_total one\n",
                "bad value",
            ),
            (
                "# TYPE icfl_x_total counter\nicfl_x_total{a=1} 1\n",
                "unquoted label",
            ),
            (
                "# TYPE icfl_x_total wibble\nicfl_x_total 1\n",
                "unknown kind",
            ),
            (
                "# TYPE icfl_l_bucket counter\nicfl_l_bucket{le=\"1\"} 1\n",
                "no +Inf bucket or _count",
            ),
            (
                "# TYPE icfl_l_bucket counter\n\
                 icfl_l_bucket{le=\"+Inf\"} 1\nicfl_l_bucket{le=\"1\"} 1\n\
                 # TYPE icfl_l_count counter\nicfl_l_count 1\n",
                "buckets out of order",
            ),
            (
                "# TYPE icfl_l_bucket counter\n\
                 icfl_l_bucket{le=\"1\"} 2\nicfl_l_bucket{le=\"+Inf\"} 1\n\
                 # TYPE icfl_l_count counter\nicfl_l_count 1\n",
                "cumulative counts decrease",
            ),
        ] {
            assert!(lint_exposition(bad).is_err(), "lint accepted {why}: {bad}");
        }
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_a_total", &[("k", "v")], 1);
        r.gauge_max("icfl_b_peak", &[], 2);
        let jsonl = r.snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::parse_value_str(line).expect("each line parses as JSON");
        }
    }
}
