//! The deterministic event journal: counters and high-water gauges.
//!
//! Everything in this registry must be a *commutative aggregate of
//! deterministic per-run values* — counters only add, gauges only take
//! maxima — so a snapshot's bytes cannot depend on worker-thread count or
//! scheduling order. Quantities that do depend on the host (thread
//! counts, wall-clock durations, per-worker task splits) belong in the
//! [`Profiler`](crate::Profiler) side instead; the split is the crate's
//! core contract and is asserted by `tests/obs_determinism.rs`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A metric identity: name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    labels.sort();
    (name.to_owned(), labels)
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
}

/// A registry of journal metrics (see the module docs for the determinism
/// contract). All methods are `&self` and internally locked, so any
/// instrumentation point can update it concurrently.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// One exported metric sample.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (Prometheus-compatible: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Aggregated value (sum for counters, max for gauges).
    pub value: u64,
    /// `"counter"` or `"gauge"`, mirroring the Prometheus `# TYPE` line.
    pub kind: String,
}

/// An immutable, deterministically ordered snapshot of the journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Every sample, sorted by (name, labels) with counters and gauges
    /// interleaved in name order.
    pub samples: Vec<MetricSample>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the counter `name{labels}` (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.counters.entry(key(name, labels)).or_insert(0) += v;
    }

    /// Raises the high-water gauge `name{labels}` to at least `v`.
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let slot = inner.gauges.entry(key(name, labels)).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Snapshots every metric in deterministic order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        let mut samples: Vec<MetricSample> = inner
            .counters
            .iter()
            .map(|((name, labels), &value)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value,
                kind: "counter".to_owned(),
            })
            .chain(
                inner
                    .gauges
                    .iter()
                    .map(|((name, labels), &value)| MetricSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        value,
                        kind: "gauge".to_owned(),
                    }),
            )
            .collect();
        samples.sort();
        MetricsSnapshot { samples }
    }
}

impl MetricsSnapshot {
    /// The summed value of every sample named `name` across its label
    /// sets, or `None` if the metric was never touched.
    pub fn total(&self, name: &str) -> Option<u64> {
        let mut seen = false;
        let mut sum = 0u64;
        for s in self.samples.iter().filter(|s| s.name == name) {
            seen = true;
            sum += s.value;
        }
        seen.then_some(sum)
    }

    /// Renders the snapshot as a Prometheus text exposition: one `# TYPE`
    /// line per metric name followed by its samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            if last_name != Some(s.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&s.name);
                out.push(' ');
                out.push_str(&s.kind);
                out.push('\n');
                last_name = Some(s.name.as_str());
            }
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    // Prometheus label values escape backslash, quote, \n.
                    for c in v.chars() {
                        match c {
                            '\\' => out.push_str("\\\\"),
                            '"' => out.push_str("\\\""),
                            '\n' => out.push_str("\\n"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&s.value.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the snapshot as JSONL: one JSON object per sample, in the
    /// snapshot's deterministic order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&serde_json::to_string(s).expect("metric samples serialize"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_jobs_total", &[], 3);
        r.counter_add("icfl_jobs_total", &[], 4);
        r.gauge_max("icfl_depth_peak", &[], 2);
        r.gauge_max("icfl_depth_peak", &[], 7);
        r.gauge_max("icfl_depth_peak", &[], 5);
        let snap = r.snapshot();
        assert_eq!(snap.total("icfl_jobs_total"), Some(7));
        assert_eq!(snap.total("icfl_depth_peak"), Some(7));
        assert_eq!(snap.total("icfl_absent"), None);
    }

    #[test]
    fn labels_are_sorted_into_one_identity() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_x_total", &[("b", "2"), ("a", "1")], 1);
        r.counter_add("icfl_x_total", &[("a", "1"), ("b", "2")], 1);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.samples[0].value, 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_b_total", &[("app", "demo")], 2);
        r.counter_add("icfl_a_total", &[], 1);
        r.gauge_max("icfl_a_peak", &[], 9);
        let text = r.snapshot().to_prometheus();
        let expected = "# TYPE icfl_a_peak gauge\n\
                        icfl_a_peak 9\n\
                        # TYPE icfl_a_total counter\n\
                        icfl_a_total 1\n\
                        # TYPE icfl_b_total counter\n\
                        icfl_b_total{app=\"demo\"} 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn snapshot_bytes_are_update_order_invariant() {
        let mk = |order: &[usize]| {
            let r = MetricsRegistry::new();
            for &i in order {
                r.counter_add("icfl_n_total", &[("i", &(i % 2).to_string())], i as u64);
                r.gauge_max("icfl_n_peak", &[], i as u64);
            }
            (r.snapshot().to_prometheus(), r.snapshot().to_jsonl())
        };
        assert_eq!(mk(&[1, 2, 3, 4]), mk(&[4, 3, 2, 1]));
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let r = MetricsRegistry::new();
        r.counter_add("icfl_a_total", &[("k", "v")], 1);
        r.gauge_max("icfl_b_peak", &[], 2);
        let jsonl = r.snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::parse_value_str(line).expect("each line parses as JSON");
        }
    }
}
