//! The wall-clock side: structured spans and latency accumulators.
//!
//! Everything here measures the *host machine* — span timestamps, thread
//! ids, per-worker task splits — and is therefore excluded from every
//! byte-compared output. Spans render to the Chrome-trace timeline
//! ([`Profiler::trace_events`]) and aggregate into the per-phase profile
//! table ([`Profiler::aggregate`]); accumulators capture high-frequency
//! latencies (per-scrape ingest, checkpoint encode) where a span per
//! event would dwarf the event itself.

use crate::trace::TraceEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One closed span: a named wall-clock interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name; spans sharing a name aggregate into one profile row.
    pub name: String,
    /// Profiler-assigned thread id (dense, first-use order).
    pub tid: u64,
    /// Start offset from the profiler's epoch, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Free-form annotations (job counts, seeds, per-worker stats).
    pub args: Vec<(String, String)>,
}

/// A latency accumulator: count/total/max of a high-frequency event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StatSummary {
    /// Number of samples.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Largest single sample, microseconds.
    pub max_us: u64,
}

/// One row of the per-phase breakdown: all spans and stat samples sharing
/// a name, folded together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAggregate {
    /// Span/stat name.
    pub name: String,
    /// Number of spans plus stat samples.
    pub calls: u64,
    /// Summed wall-clock seconds across calls (threads overlap, so this
    /// can exceed elapsed time).
    pub total_secs: f64,
    /// Largest single call, seconds.
    pub max_secs: f64,
}

/// The wall-clock profiler: an epoch, a span log, and named accumulators.
#[derive(Debug)]
pub struct Profiler {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    stats: Mutex<BTreeMap<String, StatSummary>>,
}

/// Dense per-thread ids for the trace timeline, assigned on first use.
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Profiler {
    /// A fresh profiler; its epoch (trace time zero) is now.
    pub fn new() -> Profiler {
        Profiler {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            stats: Mutex::new(BTreeMap::new()),
        }
    }

    /// Microseconds since the profiler's epoch.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one closed span.
    pub fn record_span(&self, rec: SpanRecord) {
        self.spans.lock().expect("profiler spans lock").push(rec);
    }

    /// Adds one sample to the named accumulator.
    pub fn stat_add(&self, name: &str, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut stats = self.stats.lock().expect("profiler stats lock");
        let s = stats.entry(name.to_owned()).or_default();
        s.count += 1;
        s.total_us += us;
        s.max_us = s.max_us.max(us);
    }

    /// Every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("profiler spans lock").clone()
    }

    /// Every named accumulator.
    pub fn stats(&self) -> BTreeMap<String, StatSummary> {
        self.stats.lock().expect("profiler stats lock").clone()
    }

    /// The spans as Chrome-trace complete (`"X"`) events, ready for
    /// [`chrome_trace_json`](crate::trace::chrome_trace_json). Nesting is
    /// by time containment per thread lane, which Perfetto renders as a
    /// flame graph.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.spans()
            .into_iter()
            .map(|s| TraceEvent {
                name: s.name,
                cat: "pipeline".to_owned(),
                ph: "X".to_owned(),
                ts: s.ts_us,
                dur: s.dur_us,
                pid: 1,
                tid: s.tid,
                args: s.args,
            })
            .collect()
    }

    /// Folds spans and accumulators into per-name profile rows, sorted by
    /// descending total time.
    pub fn aggregate(&self) -> Vec<PhaseAggregate> {
        let mut by_name: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for s in self.spans.lock().expect("profiler spans lock").iter() {
            let e = by_name.entry(s.name.clone()).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.dur_us;
            e.2 = e.2.max(s.dur_us);
        }
        for (name, s) in self.stats.lock().expect("profiler stats lock").iter() {
            let e = by_name.entry(name.clone()).or_insert((0, 0, 0));
            e.0 += s.count;
            e.1 += s.total_us;
            e.2 = e.2.max(s.max_us);
        }
        let mut rows: Vec<PhaseAggregate> = by_name
            .into_iter()
            .map(|(name, (calls, total_us, max_us))| PhaseAggregate {
                name,
                calls,
                total_secs: total_us as f64 / 1e6,
                max_secs: max_us as f64 / 1e6,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_secs
                .partial_cmp(&a.total_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

/// An open span; records into the owning collector when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Arc<crate::Obs>,
    name: String,
    started: Instant,
    ts_us: u64,
    args: Vec<(String, String)>,
}

impl SpanGuard {
    /// Opens a span named `name` on `obs`, starting now.
    pub fn open(obs: Arc<crate::Obs>, name: &str) -> SpanGuard {
        let ts_us = obs.profiler.now_us();
        SpanGuard {
            obs,
            name: name.to_owned(),
            started: Instant::now(),
            ts_us,
            args: Vec::new(),
        }
    }

    /// Attaches an annotation shown in the trace viewer (not in the
    /// deterministic journal — per-thread values are welcome here).
    pub fn arg(&mut self, key: &str, value: impl Display) {
        self.args.push((key.to_owned(), value.to_string()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        self.obs.profiler.record_span(SpanRecord {
            name: std::mem::take(&mut self.name),
            tid: current_tid(),
            ts_us: self.ts_us,
            dur_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let obs = Arc::new(crate::Obs::new());
        {
            let mut outer = SpanGuard::open(Arc::clone(&obs), "outer");
            outer.arg("k", 1);
            {
                let _inner = SpanGuard::open(Arc::clone(&obs), "inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let spans = obs.profiler.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first; outer contains it in time.
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.tid, outer.tid);
        assert!(outer.ts_us <= inner.ts_us);
        assert!(outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us);
        assert_eq!(outer.args, vec![("k".to_owned(), "1".to_owned())]);

        let agg = obs.profiler.aggregate();
        assert_eq!(agg.len(), 2);
        assert!(agg.iter().all(|r| r.calls == 1));
    }

    #[test]
    fn stats_accumulate_count_total_max() {
        let p = Profiler::new();
        p.stat_add("scrape", Duration::from_micros(10));
        p.stat_add("scrape", Duration::from_micros(30));
        let s = p.stats()["scrape"];
        assert_eq!(s.count, 2);
        assert_eq!(s.total_us, 40);
        assert_eq!(s.max_us, 30);
        // Stats fold into the aggregate next to spans.
        let agg = p.aggregate();
        assert_eq!(agg[0].name, "scrape");
        assert_eq!(agg[0].calls, 2);
    }

    #[test]
    fn trace_events_mirror_spans() {
        let obs = Arc::new(crate::Obs::new());
        drop(SpanGuard::open(Arc::clone(&obs), "phase"));
        let events = obs.profiler.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "phase");
        assert_eq!(events[0].ph, "X");
        assert_eq!(events[0].pid, 1);
    }

    #[test]
    fn distinct_threads_get_distinct_tids() {
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
        assert_eq!(a, current_tid());
    }
}
